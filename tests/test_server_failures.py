"""Edge-server failure paths: bad snapshots, crashing handlers, recovery."""

import pytest

from repro.core import protocol
from repro.core.client import ClientAgent, OffloadError
from repro.core.server import EdgeServer
from repro.core.snapshot import CaptureOptions
from repro.core.snapshot.capture import Snapshot
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import Channel, NetemProfile
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.web.app import WebApp, make_inference_app
from repro.web.values import TypedArray


@pytest.fixture
def world():
    sim = Simulator()
    channel = Channel(sim, "client", "edge", NetemProfile.wifi_30mbps())
    server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge")
    server.serve(channel.end_b)
    client = ClientAgent(
        sim,
        Device(sim, odroid_xu4_client()),
        channel.end_a,
        capture_options=CaptureOptions(include_canvas_pixels=True),
    )
    return sim, channel, server, client


def send_snapshot(sim, channel, snapshot, request_id=9):
    reply_box = []

    def probe():
        channel.end_a.send(
            protocol.SNAPSHOT,
            protocol.SnapshotPayload(snapshot=snapshot, request_id=request_id),
        )
        message = yield channel.end_a.recv()
        reply_box.append(message)

    sim.spawn(probe())
    sim.run()
    return reply_box[0]


class TestServerFailurePaths:
    def test_corrupt_program_gets_error_reply(self, world):
        sim, channel, server, _client = world
        broken = Snapshot(app_name="x", kind="full", program="RT.bogus(")
        reply = send_snapshot(sim, channel, broken)
        assert reply.kind == protocol.ERROR
        assert "restore failed" in reply.payload.reason

    def test_crashing_handler_gets_error_reply(self, world):
        sim, channel, server, _client = world
        from repro.core.snapshot import capture_snapshot
        from repro.web.events import Event
        from repro.web.runtime import WebRuntime

        app = WebApp(
            name="crasher",
            body_spec=[{"tag": "button", "id": "b"}, {"tag": "div", "id": "result"}],
            script="def boom(ctx):\n    raise RuntimeError('kaput')\n",
            listeners=[("b", "click", "boom")],
        )
        runtime = WebRuntime()
        runtime.load_app(app)
        snapshot = capture_snapshot(runtime, Event("click", "b"))
        reply = send_snapshot(sim, channel, snapshot)
        assert reply.kind == protocol.ERROR
        assert "handler failed" in reply.payload.reason

    def test_server_loop_survives_bad_request(self, world):
        sim, channel, server, client = world
        broken = Snapshot(app_name="x", kind="full", program="RT.bogus(")
        send_snapshot(sim, channel, broken)
        # The same server must still serve a good request afterwards.
        model = smallnet()
        client.start_app(make_inference_app(model), presend=True)
        client.runtime.globals["pending_pixels"] = TypedArray(
            SeededRng(0, "px").uniform_array((3, 32, 32), 0, 255)
        )
        client.runtime.dispatch("click", "load_btn")
        client.mark_offload_point("click", "infer_btn")
        sim.run()
        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        process = sim.spawn(
            client.offload(event, server_costs=network_costs(model.network))
        )
        sim.run()
        assert process.ok
        assert server.served_requests == 1

    def test_delta_without_session_gets_error(self, world):
        sim, channel, server, _client = world
        orphan_delta = Snapshot(
            app_name="ghost-app", kind="delta", program="RT.expect_app('ghost-app')\n"
        )
        reply = send_snapshot(sim, channel, orphan_delta)
        assert reply.kind == protocol.ERROR
        assert "no cached session" in reply.payload.reason

    def test_unknown_message_kind_gets_error(self, world):
        sim, channel, server, _client = world
        replies = []

        def probe():
            channel.end_a.send("FROBNICATE", None)
            message = yield channel.end_a.recv()
            replies.append(message)

        sim.spawn(probe())
        sim.run()
        assert replies[0].kind == protocol.ERROR
        assert "unknown message kind" in replies[0].payload.reason

    def test_errors_recorded_on_server(self, world):
        sim, channel, server, _client = world
        broken = Snapshot(app_name="x", kind="full", program="RT.bogus(")
        send_snapshot(sim, channel, broken)
        assert any("restore failed" in error for error in server.errors)
