"""Tests for the Neurosurgeon-style latency predictor."""

import pytest

from repro.devices import Device, LatencyPredictor, ProfiledSample, odroid_xu4_client
from repro.devices.predictor import fit_predictor_for, prediction_error, profile_device
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator


@pytest.fixture
def costs():
    return network_costs(smallnet().network)


class TestFitting:
    def test_fit_recovers_linear_model_exactly(self):
        samples = [
            ProfiledSample("conv", flops, 2.0 * flops / 1e9 + 0.01)
            for flops in (1e8, 5e8, 1e9, 2e9)
        ]
        predictor = LatencyPredictor().fit(samples)
        assert predictor.predict_layer("conv", 3e9) == pytest.approx(6.01, rel=1e-6)

    def test_fit_on_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            LatencyPredictor().fit([])

    def test_single_sample_degenerate_fit(self):
        predictor = LatencyPredictor().fit([ProfiledSample("conv", 1e9, 2.0)])
        assert predictor.predict_layer("conv", 2e9) == pytest.approx(4.0)

    def test_unknown_kind_uses_fallback(self):
        predictor = LatencyPredictor().fit(
            [
                ProfiledSample("conv", 1e9, 1.0),
                ProfiledSample("conv", 2e9, 2.0),
            ]
        )
        assert predictor.predict_layer("never_seen", 1e9) == pytest.approx(1.0, abs=0.1)

    def test_unfitted_predictor_raises(self):
        with pytest.raises(RuntimeError):
            LatencyPredictor().predict_layer("conv", 1e9)

    def test_predictions_never_negative(self):
        samples = [
            ProfiledSample("pool", 1e9, 0.1),
            ProfiledSample("pool", 2e9, 0.05),  # noisy downward slope
        ]
        predictor = LatencyPredictor().fit(samples)
        assert predictor.predict_layer("pool", 1e5) >= 0.0


class TestProfiling:
    def test_profile_device_generates_repetitions(self, costs):
        samples = profile_device(odroid_xu4_client(), costs, repetitions=3, noise=0.0)
        assert len(samples) == 3 * len(costs)

    def test_noiseless_profiling_gives_near_exact_predictor(self, costs):
        sim = Simulator()
        device = Device(sim, odroid_xu4_client())
        predictor = fit_predictor_for(
            odroid_xu4_client(), costs, repetitions=1, noise=0.0
        )
        assert prediction_error(predictor, device, costs) < 0.05

    def test_noisy_profiling_stays_reasonable(self, costs):
        sim = Simulator()
        device = Device(sim, odroid_xu4_client())
        predictor = fit_predictor_for(
            odroid_xu4_client(),
            costs,
            repetitions=5,
            noise=0.05,
            rng=SeededRng(7, "test"),
        )
        # Neurosurgeon-grade accuracy: well under 25% mean relative error.
        assert prediction_error(predictor, device, costs) < 0.25

    def test_forward_prediction_close_to_ground_truth(self, costs):
        sim = Simulator()
        device = Device(sim, odroid_xu4_client())
        predictor = fit_predictor_for(
            odroid_xu4_client(), costs, repetitions=3, noise=0.02
        )
        truth = device.forward_seconds(costs)
        predicted = predictor.predict_forward(costs)
        assert predicted == pytest.approx(truth, rel=0.2)

    def test_kinds_reported(self, costs):
        predictor = fit_predictor_for(odroid_xu4_client(), costs, noise=0.0)
        assert "conv" in predictor.kinds
        assert "pool" in predictor.kinds
