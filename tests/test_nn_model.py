"""Tests for model files, splitting, save/load and the server model store."""

import numpy as np
import pytest

from repro.nn.model import Model, network_from_description
from repro.nn.modelstore import ModelStore, ModelStoreError
from repro.nn.zoo import smallnet, tinynet
from repro.sim import SeededRng


@pytest.fixture
def model():
    return smallnet()


class TestModelFiles:
    def test_manifest_has_description_and_blobs(self, model):
        files = model.files()
        kinds = [file.kind for file in files]
        assert kinds.count("description") == 1
        # conv1, conv2, fc3, fc4 carry parameters
        assert kinds.count("parameters") == 4

    def test_sizes_reflect_param_bytes(self, model):
        param_files = [f for f in model.files() if f.kind == "parameters"]
        total_param_bytes = sum(f.size_bytes for f in param_files)
        # 4 bytes per parameter plus per-file headers
        assert total_param_bytes >= model.network.param_count * 4
        assert total_param_bytes < model.network.param_count * 4 + 4 * 1024

    def test_model_id_stable(self, model):
        assert model.model_id == smallnet().model_id

    def test_model_id_differs_across_seeds(self):
        assert smallnet(seed=1).model_id != smallnet(seed=2).model_id

    def test_total_bytes_and_mib(self, model):
        assert model.total_bytes == sum(f.size_bytes for f in model.files())
        assert model.size_mib == pytest.approx(model.total_bytes / 2**20)

    def test_unbuilt_network_rejected(self):
        from repro.nn.zoo.smallnet import smallnet_network

        with pytest.raises(ValueError):
            Model("bad", smallnet_network())


class TestModelSplit:
    def test_split_models_have_disjoint_param_files(self, model):
        point = model.network.point_by_label("1st_pool")
        front, rear = model.split(point.index)
        front_layers = {f.layer_name for f in front.files() if f.layer_name}
        rear_layers = {f.layer_name for f in rear.files() if f.layer_name}
        assert front_layers.isdisjoint(rear_layers)

    def test_split_inference_equals_full(self, model):
        x = SeededRng(6, "img").uniform_array((3, 32, 32), 0, 255)
        point = model.network.point_by_label("2nd_conv")
        front, rear = model.split(point.index)
        feature = front.inference(x)
        assert np.allclose(rear.inference(feature), model.inference(x), atol=1e-5)

    def test_rear_model_smaller_than_full(self, model):
        point = model.network.point_by_label("1st_conv")
        _, rear = model.split(point.index)
        assert rear.total_bytes < model.total_bytes


class TestSaveLoad:
    def test_roundtrip_preserves_inference(self, tmp_path, model):
        model.save(str(tmp_path))
        loaded = Model.load(str(tmp_path), "smallnet")
        x = SeededRng(7, "img").uniform_array((3, 32, 32), 0, 255)
        assert np.allclose(loaded.inference(x), model.inference(x), atol=1e-6)

    def test_roundtrip_preserves_manifest(self, tmp_path, model):
        model.save(str(tmp_path))
        loaded = Model.load(str(tmp_path), "smallnet")
        assert loaded.model_id == model.model_id

    def test_description_rebuilds_architecture(self, model):
        import json

        description = json.loads(model.description_json())
        rebuilt = network_from_description(description)
        assert [l.kind for l in rebuilt.layers] == [
            l.kind for l in model.network.layers
        ]
        assert rebuilt.output_shape == model.network.output_shape

    def test_inception_description_roundtrip(self):
        import json

        from repro.nn.layers import (
            ConvLayer,
            InceptionModule,
            InputLayer,
            PoolLayer,
            ReLULayer,
            SoftmaxLayer,
            FCLayer,
        )
        from repro.nn.network import Network

        net = Network(
            "mini-inception",
            [
                InputLayer((3, 8, 8)),
                InceptionModule(
                    "inc",
                    branches=[
                        [ConvLayer("a", 2, kernel=1), ReLULayer("ra")],
                        [PoolLayer("p", kernel=3, stride=1, pad=1)],
                    ],
                ),
                FCLayer("fc", 4),
                SoftmaxLayer("prob"),
            ],
        ).build(SeededRng(0, "mini"))
        model = Model("mini-inception", net)
        description = json.loads(model.description_json())
        rebuilt = network_from_description(description)
        assert rebuilt.layers[1].out_shape == net.layers[1].out_shape

    def test_inception_save_load_preserves_params(self, tmp_path):
        import numpy as np

        from repro.nn.layers import (
            ConvLayer,
            FCLayer,
            InceptionModule,
            InputLayer,
            PoolLayer,
            ReLULayer,
            SoftmaxLayer,
        )
        from repro.nn.network import Network

        net = Network(
            "inc-net",
            [
                InputLayer((3, 8, 8)),
                InceptionModule(
                    "inc",
                    branches=[
                        [ConvLayer("a", 2, kernel=1), ReLULayer("ra")],
                        [PoolLayer("p", kernel=3, stride=1, pad=1)],
                    ],
                ),
                FCLayer("fc", 4),
                SoftmaxLayer("prob"),
            ],
        ).build(SeededRng(3, "incnet"))
        model = Model("inc-net", net)
        model.save(str(tmp_path))
        loaded = Model.load(str(tmp_path), "inc-net")
        x = SeededRng(8, "x").normal_array((3, 8, 8))
        assert np.allclose(loaded.inference(x), model.inference(x), atol=1e-6)


class TestModelStore:
    def test_upload_lifecycle(self, model):
        store = ModelStore()
        entry = store.begin_upload(model.model_id, model.files())
        assert not entry.complete
        for file in model.files():
            store.receive_file(model.model_id, file)
        assert entry.complete
        assert entry.missing == []
        store.attach_model(model.model_id, model)
        assert store.get_model(model.model_id) is model

    def test_partial_upload_not_complete(self, model):
        store = ModelStore()
        store.begin_upload(model.model_id, model.files())
        store.receive_file(model.model_id, model.files()[0])
        assert not store.has_complete(model.model_id)
        with pytest.raises(ModelStoreError):
            store.attach_model(model.model_id, model)

    def test_checksum_mismatch_rejected(self, model):
        from dataclasses import replace

        store = ModelStore()
        store.begin_upload(model.model_id, model.files())
        corrupted = replace(model.files()[0], checksum="deadbeefdeadbeef")
        with pytest.raises(ModelStoreError):
            store.receive_file(model.model_id, corrupted)

    def test_unknown_file_rejected(self, model):
        from dataclasses import replace

        store = ModelStore()
        store.begin_upload(model.model_id, model.files())
        alien = replace(model.files()[0], name="not-in-manifest.bin")
        with pytest.raises(ModelStoreError):
            store.receive_file(model.model_id, alien)

    def test_receive_without_upload_rejected(self, model):
        store = ModelStore()
        with pytest.raises(ModelStoreError):
            store.receive_file(model.model_id, model.files()[0])

    def test_begin_upload_idempotent(self, model):
        store = ModelStore()
        first = store.begin_upload(model.model_id, model.files())
        second = store.begin_upload(model.model_id, model.files())
        assert first is second

    def test_evict(self, model):
        store = ModelStore()
        store.begin_upload(model.model_id, model.files())
        store.evict(model.model_id)
        assert store.stored_ids() == []

    def test_received_bytes_tracks_progress(self, model):
        store = ModelStore()
        entry = store.begin_upload(model.model_id, model.files())
        first = model.files()[0]
        store.receive_file(model.model_id, first)
        assert entry.received_bytes == first.size_bytes

    def test_rear_model_upload_keeps_front_absent(self, model):
        # Privacy: pre-send only the rear part; the store must not know the
        # front model at all.
        point = model.network.point_by_label("1st_pool")
        front, rear = model.split(point.index)
        store = ModelStore()
        store.begin_upload(rear.model_id, rear.files())
        for file in rear.files():
            store.receive_file(rear.model_id, file)
        store.attach_model(rear.model_id, rear)
        assert store.has_complete(rear.model_id)
        assert not store.has_complete(front.model_id)
