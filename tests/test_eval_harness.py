"""Integration tests for the experiment harness (paper-scale shape checks).

These run the actual figure/table generators — restricted to the cheaper
models where full sweeps would be slow — and assert the paper's shape
claims via the ``check_*_shape`` validators the benchmarks also use.
"""

import pytest

from repro.eval.fig1 import format_fig1, run_fig1
from repro.eval.fig6 import check_fig6_shape, format_fig6, run_fig6_model
from repro.eval.fig7 import check_fig7_shape, format_fig7, run_fig7
from repro.eval.fig8 import check_fig8_shape, format_fig8, run_fig8_model, sweep_labels
from repro.eval.reporting import format_series, format_stacked_bars, format_table
from repro.eval.table1 import check_table1_shape, format_table1, run_table1_model


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.50" in text
        assert "22.25" in text

    def test_format_stacked_bars_percentages(self):
        text = format_stacked_bars({"bar": {"x": 1.0, "y": 3.0}})
        assert "75.0%" in text

    def test_format_series(self):
        text = format_series(["p1", "p2"], {"s": [1.0, 2.0]})
        assert "p1" in text and "2.00" in text

    def test_zero_segments_skipped(self):
        text = format_stacked_bars({"bar": {"x": 1.0, "zero": 0.0}})
        assert "zero" not in text


class TestFig1:
    def test_googlenet_walk_with_numeric_verification(self):
        rows = run_fig1("googlenet", verify_numerically=True)
        by_name = {row.name: row for row in rows}
        assert by_name["pool1_3x3_s2"].output_shape == (64, 56, 56)
        assert by_name["prob"].output_shape == (1000,)

    def test_format_contains_checkpoints(self):
        text = format_fig1(run_fig1("googlenet"))
        assert "64x56x56" in text
        assert "inception_5b" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def agenet_row(self):
        return run_fig6_model("agenet")

    def test_agenet_shape(self, agenet_row):
        assert check_fig6_shape([agenet_row]) == []

    def test_agenet_before_ack_slower_than_client(self, agenet_row):
        assert agenet_row.seconds("offload_before_ack") > agenet_row.seconds("client")

    def test_format(self, agenet_row):
        text = format_fig6([agenet_row])
        assert "agenet" in text
        assert "offload_after_ack" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def bars(self):
        return run_fig7(models=("agenet",))

    def test_shape(self, bars):
        assert check_fig7_shape(bars) == []

    def test_two_bars_per_model(self, bars):
        assert len(bars) == 2
        assert {bar.configuration for bar in bars} == {
            "offload_after_ack",
            "offload_partial",
        }

    def test_snapshot_overhead_negligible(self, bars):
        for bar in bars:
            assert bar.snapshot_overhead() < 0.25 * bar.total

    def test_format(self, bars):
        text = format_fig7(bars)
        assert "server_exec" in text


class TestFig8:
    @pytest.fixture(scope="class")
    def agenet_points(self):
        return run_fig8_model("agenet")

    def test_shape(self, agenet_points):
        assert check_fig8_shape({"agenet": agenet_points}) == []

    def test_sweep_labels_in_spine_order(self):
        labels = sweep_labels("agenet")
        assert labels[0] == "input"
        assert labels.index("1st_conv") < labels.index("1st_pool")

    def test_conv_surge_pool_dip(self, agenet_points):
        by_label = {point.label: point for point in agenet_points}
        assert by_label["1st_conv"].feature_mb > 2 * by_label["1st_pool"].feature_mb
        assert (
            by_label["1st_pool"].measured_seconds
            < by_label["1st_conv"].measured_seconds
        )

    def test_predictions_track_measurements(self, agenet_points):
        for point in agenet_points:
            assert point.predicted_seconds == pytest.approx(
                point.measured_seconds, rel=0.25
            )

    def test_all_points_correct(self, agenet_points):
        assert all(point.result.correct for point in agenet_points)

    def test_format(self, agenet_points):
        text = format_fig8({"agenet": agenet_points})
        assert "1st_pool" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def row(self):
        return run_table1_model("agenet")

    def test_shape(self, row):
        assert check_table1_shape([row]) == []

    def test_overlay_near_82mb(self, row):
        assert row.overlay_mb == pytest.approx(82.0, rel=0.05)

    def test_migration_ordering(self, row):
        assert (
            row.presend_migration_seconds
            < row.nopresend_migration_seconds
            < row.synthesis_seconds
        )

    def test_format(self, row):
        text = format_table1([row])
        assert "VM synthesis" in text
