"""Tests for snapshot code generation: identity, cycles, tensors, DOM."""

import numpy as np
import pytest

from repro.core.snapshot.codegen import (
    CodegenError,
    HeapCodegen,
    canonical_dom_entries,
    canonical_value_code,
    dom_node_key,
    parse_tensor_text,
    render_tensor_text,
    serialize_dom,
    serialize_globals,
)
from repro.web.dom import Document
from repro.web.values import UNDEFINED, ImageData, JSArray, JSObject, TypedArray


def exec_heap(lines, root_exprs, attachments=None):
    """Execute generated heap code and return the named roots."""
    from repro.web.values import ImageData as IMG_cls

    namespace = {
        "__builtins__": {},
        "JSObject": JSObject,
        "JSArray": JSArray,
        "TA": lambda text, shape: TypedArray(parse_tensor_text(text, shape)),
        "NP": lambda text, shape: parse_tensor_text(text, shape),
        "IMG": lambda data, shape, enc: IMG_cls(
            np.array(data, copy=True).reshape(shape), encoded_bytes=enc
        ),
        "ATTACH": attachments or {},
        "UNDEFINED": UNDEFINED,
        "G": {},
    }
    exec("\n".join(lines + [f"G['{n}'] = {e}" for n, e in root_exprs.items()]), namespace)
    return namespace["G"]


class TestTensorText:
    def test_roundtrip_exact_float32(self):
        values = np.array([1.5, -2.25, 3.3333333, 1e-20, 7e8], dtype=np.float32)
        text = render_tensor_text(values)
        back = parse_tensor_text(text, (5,))
        assert np.array_equal(values, back)

    def test_empty(self):
        assert parse_tensor_text("", (0,)).size == 0

    def test_text_size_near_analytic_model(self):
        from repro.nn.tensor import TEXT_BYTES_PER_VALUE

        values = np.random.default_rng(0).normal(0, 1, 1000).astype(np.float32)
        text = render_tensor_text(values)
        per_value = len(text) / 1000
        assert per_value == pytest.approx(TEXT_BYTES_PER_VALUE, rel=0.15)


class TestHeapCodegen:
    def _roundtrip(self, value):
        codegen = HeapCodegen()
        expr = codegen.root_expression(value)
        return exec_heap(codegen.lines, {"root": expr}, codegen.attachments)["root"]

    def test_scalars(self):
        codegen = HeapCodegen()
        assert codegen.root_expression(None) == "None"
        assert codegen.root_expression(True) == "True"
        assert codegen.root_expression(3) == "3"
        assert codegen.root_expression("s") == "'s'"
        assert codegen.root_expression(UNDEFINED) == "UNDEFINED"

    def test_object_roundtrip(self):
        obj = JSObject(x=1, y="two", z=None)
        restored = self._roundtrip(obj)
        assert restored["x"] == 1
        assert restored["y"] == "two"
        assert restored["z"] is None

    def test_aliasing_preserved(self):
        shared = JSArray([1, 2])
        root = JSObject(a=shared, b=shared)
        restored = self._roundtrip(root)
        assert restored["a"] is restored["b"]

    def test_cycle_preserved(self):
        obj = JSObject()
        obj["self"] = obj
        restored = self._roundtrip(obj)
        assert restored["self"] is restored

    def test_mutual_cycle(self):
        a = JSObject()
        b = JSObject()
        a["peer"] = b
        b["peer"] = a
        restored = self._roundtrip(a)
        assert restored["peer"]["peer"] is restored

    def test_typed_array_values_exact(self):
        ta = TypedArray(np.array([[1.5, -2.5], [0.1, 1e7]], dtype=np.float32))
        restored = self._roundtrip(ta)
        assert restored.equals(ta)

    def test_image_data_becomes_attachment(self):
        img = ImageData(np.ones((3, 2, 2), dtype=np.float32), encoded_bytes=999)
        codegen = HeapCodegen()
        expr = codegen.root_expression(img)
        assert len(codegen.attachments) == 1
        assert codegen.attachment_bytes == 999
        restored = exec_heap(codegen.lines, {"r": expr}, codegen.attachments)["r"]
        assert restored.equals(img)
        assert restored.encoded_bytes == 999
        # restored pixels are a copy, not an alias of the attachment
        assert restored.data is not img.data

    def test_plain_dict_and_list(self):
        value = {"k": [1, 2, {"nested": True}]}
        restored = self._roundtrip(value)
        assert restored == value

    def test_raw_ndarray(self):
        arr = np.arange(6, dtype=np.float32).reshape(2, 3)
        restored = self._roundtrip(arr)
        assert isinstance(restored, np.ndarray)
        assert np.array_equal(restored, arr)

    def test_unserializable_rejected(self):
        with pytest.raises(CodegenError):
            HeapCodegen().root_expression(object())

    def test_non_scalar_dict_key_rejected(self):
        with pytest.raises(CodegenError):
            HeapCodegen().root_expression({(1, 2): "tuple key"})

    def test_tensor_text_bytes_counted(self):
        ta = TypedArray(np.ones(100, dtype=np.float32))
        codegen = HeapCodegen()
        codegen.root_expression(ta)
        assert codegen.tensor_text_bytes > 100 * 10


class TestSerializeGlobals:
    def test_keep_filter(self):
        lines, codegen = serialize_globals(
            {"a": 1, "b": 2}, keep={"a"}
        )
        joined = "\n".join(lines)
        assert "G['a'] = 1" in joined
        assert "'b'" not in joined

    def test_deterministic_order(self):
        lines1, _ = serialize_globals({"b": 2, "a": 1})
        lines2, _ = serialize_globals({"a": 1, "b": 2})
        assert lines1 == lines2


class TestCanonicalValueCode:
    def test_same_structure_same_code(self):
        a = JSObject(x=JSArray([1, 2]))
        b = JSObject(x=JSArray([1, 2]))
        assert canonical_value_code(a) == canonical_value_code(b)

    def test_different_values_differ(self):
        assert canonical_value_code(JSObject(x=1)) != canonical_value_code(
            JSObject(x=2)
        )


class TestDomCodegen:
    def _doc(self):
        doc = Document()
        div = doc.create_element("div", element_id="box", **{"class": "big"})
        doc.body.append_child(div)
        div.append_text("hello")
        span = doc.create_element("span")
        div.append_child(span)
        return doc

    def test_dom_node_key_uses_ids(self):
        doc = self._doc()
        assert dom_node_key(doc.get("box")) == "box"

    def test_dom_node_key_path_fallback(self):
        doc = self._doc()
        span = doc.get("box").children[1]
        assert "span[0]" in dom_node_key(span)

    def test_serialize_dom_lines(self):
        doc = self._doc()
        codegen = HeapCodegen()
        lines = serialize_dom(doc, codegen)
        joined = "\n".join(lines)
        assert "RT.create('div', 'box'" in joined
        assert "RT.append_text" in joined

    def test_canvas_pixels_skipped_by_default(self):
        doc = Document()
        canvas = doc.create_element("canvas", element_id="cv")
        doc.body.append_child(canvas)
        canvas.draw_image(np.ones((1, 2, 2), dtype=np.float32))
        codegen = HeapCodegen()
        lines = serialize_dom(doc, codegen)
        assert not any("RT.draw" in line for line in lines)
        lines_with = serialize_dom(doc, HeapCodegen(), include_canvas_pixels=True)
        assert any("RT.draw" in line for line in lines_with)

    def test_canonical_dom_entries_change_detection(self):
        doc = self._doc()
        before = canonical_dom_entries(doc)
        # Mutate the text node in place so the tree structure is unchanged.
        doc.get("box").children[0].text = "changed"
        after = canonical_dom_entries(doc)
        assert before["box"] != after["box"]
        assert set(before) == set(after)
