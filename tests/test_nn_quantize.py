"""Tests for feature quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.quantize import (
    QUANT_HEADER_BYTES,
    measure_quantization_impact,
    quantization_error,
    quantize_linear,
)
from repro.nn.zoo import smallnet
from repro.sim import SeededRng


class TestQuantizeLinear:
    def test_roundtrip_within_one_step(self):
        array = SeededRng(0, "q").normal_array((100,), 10.0)
        quantized = quantize_linear(array, bits=8)
        restored = quantized.dequantize()
        assert np.abs(restored - array).max() <= quantized.scale + 1e-6

    def test_shape_preserved(self):
        array = SeededRng(1, "q").normal_array((4, 5, 6))
        assert quantize_linear(array, 8).dequantize().shape == (4, 5, 6)

    def test_constant_tensor(self):
        array = np.full((10,), 3.5, dtype=np.float32)
        restored = quantize_linear(array, 8).dequantize()
        assert np.allclose(restored, 3.5)

    def test_size_bytes_packing(self):
        array = np.zeros(1000, dtype=np.float32)
        assert quantize_linear(array, 8).size_bytes == 1000 + QUANT_HEADER_BYTES
        assert quantize_linear(array, 4).size_bytes == 500 + QUANT_HEADER_BYTES
        assert quantize_linear(array, 1).size_bytes == 125 + QUANT_HEADER_BYTES

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_linear(np.zeros(4), bits=0)
        with pytest.raises(ValueError):
            quantize_linear(np.zeros(4), bits=32)

    def test_more_bits_less_error(self):
        array = SeededRng(2, "q").normal_array((2000,), 5.0)
        errors = [quantization_error(array, bits) for bits in (2, 4, 8, 12)]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 0.001

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
            min_size=1,
            max_size=50,
        ),
        bits=st.integers(2, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_error_bounded_by_step(self, values, bits):
        array = np.array(values, dtype=np.float32)
        quantized = quantize_linear(array, bits)
        restored = quantized.dequantize()
        # Max error is half a step in theory; allow one full step for the
        # float32 rounding at huge magnitudes.
        assert np.abs(restored - array).max() <= quantized.scale * (
            1.0 + 1e-3
        ) + 1e-6


class TestImpactMeasurement:
    def test_smallnet_8bit_agreement(self):
        model = smallnet()
        rng = SeededRng(3, "q")
        inputs = [rng.uniform_array((3, 32, 32), 0, 255) for _ in range(6)]
        impact = measure_quantization_impact(model, "1st_pool", 8, inputs)
        assert impact.agreement == 1.0
        assert impact.quantized_bytes < impact.text_bytes / 10

    def test_fewer_bits_smaller_payload(self):
        model = smallnet()
        rng = SeededRng(4, "q")
        inputs = [rng.uniform_array((3, 32, 32), 0, 255) for _ in range(2)]
        impact8 = measure_quantization_impact(model, "1st_pool", 8, inputs)
        impact2 = measure_quantization_impact(model, "1st_pool", 2, inputs)
        assert impact2.quantized_bytes < impact8.quantized_bytes
