"""Tests for feature quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.quantize import (
    QUANT_HEADER_BYTES,
    QuantizedTensor,
    measure_quantization_impact,
    pack_codes,
    packed_feature_bytes,
    quantization_error,
    quantize_linear,
    unpack_codes,
)
from repro.nn.zoo import smallnet
from repro.sim import SeededRng


class TestQuantizeLinear:
    def test_roundtrip_within_one_step(self):
        array = SeededRng(0, "q").normal_array((100,), 10.0)
        quantized = quantize_linear(array, bits=8)
        restored = quantized.dequantize()
        assert np.abs(restored - array).max() <= quantized.scale + 1e-6

    def test_shape_preserved(self):
        array = SeededRng(1, "q").normal_array((4, 5, 6))
        assert quantize_linear(array, 8).dequantize().shape == (4, 5, 6)

    def test_constant_tensor(self):
        array = np.full((10,), 3.5, dtype=np.float32)
        restored = quantize_linear(array, 8).dequantize()
        assert np.allclose(restored, 3.5)

    def test_size_bytes_packing(self):
        array = np.zeros(1000, dtype=np.float32)
        assert quantize_linear(array, 8).size_bytes == 1000 + QUANT_HEADER_BYTES
        assert quantize_linear(array, 4).size_bytes == 500 + QUANT_HEADER_BYTES
        assert quantize_linear(array, 1).size_bytes == 125 + QUANT_HEADER_BYTES

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_linear(np.zeros(4), bits=0)
        with pytest.raises(ValueError):
            quantize_linear(np.zeros(4), bits=32)

    def test_more_bits_less_error(self):
        array = SeededRng(2, "q").normal_array((2000,), 5.0)
        errors = [quantization_error(array, bits) for bits in (2, 4, 8, 12)]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 0.001

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
            min_size=1,
            max_size=50,
        ),
        bits=st.integers(2, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_error_bounded_by_step(self, values, bits):
        array = np.array(values, dtype=np.float32)
        quantized = quantize_linear(array, bits)
        restored = quantized.dequantize()
        # Max error is half a step in theory; allow one full step for the
        # float32 rounding at huge magnitudes.
        assert np.abs(restored - array).max() <= quantized.scale * (
            1.0 + 1e-3
        ) + 1e-6


class TestPackCodes:
    """size_bytes honesty: the packed wire form really is that small."""

    @pytest.mark.parametrize("bits", list(range(1, 17)))
    def test_roundtrip_every_width(self, bits):
        rng = np.random.default_rng(bits)
        codes = rng.integers(0, 1 << bits, size=101, dtype=np.uint16)
        packed = pack_codes(codes, bits)
        assert packed.dtype == np.uint8
        assert packed.size == (codes.size * bits + 7) // 8
        assert np.array_equal(unpack_codes(packed, bits, codes.size), codes)

    def test_size_bytes_matches_packed_length(self):
        for bits in (1, 3, 5, 7, 8, 11, 13, 16):
            tensor = quantize_linear(
                SeededRng(bits, "q").normal_array((7, 9)), bits
            )
            assert tensor.size_bytes == len(tensor.pack()) + QUANT_HEADER_BYTES

    def test_from_packed_restores_tensor(self):
        array = SeededRng(5, "q").normal_array((3, 4, 5), 2.0)
        tensor = quantize_linear(array, 5)
        restored = QuantizedTensor.from_packed(
            tensor.pack(), tensor.scale, tensor.zero_point, 5, tensor.shape
        )
        assert np.array_equal(restored.codes, tensor.codes)
        assert np.array_equal(restored.dequantize(), tensor.dequantize())

    def test_codes_exceeding_width_rejected(self):
        with pytest.raises(ValueError):
            pack_codes(np.array([8], dtype=np.uint16), 3)

    def test_empty_codes(self):
        packed = pack_codes(np.array([], dtype=np.uint16), 7)
        assert packed.size == 0
        assert unpack_codes(packed, 7, 0).size == 0

    def test_packed_feature_bytes_accounting(self):
        assert packed_feature_bytes(1000, 8) == 1000 + QUANT_HEADER_BYTES
        assert packed_feature_bytes((10, 10, 10), 3) == 375 + QUANT_HEADER_BYTES
        assert packed_feature_bytes(3, 3) == 2 + QUANT_HEADER_BYTES

    @given(
        count=st.integers(0, 64),
        bits=st.integers(1, 16),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, count, bits, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 1 << bits, size=count, dtype=np.uint16)
        assert np.array_equal(
            unpack_codes(pack_codes(codes, bits), bits, count), codes
        )


class TestImpactMeasurement:
    def test_smallnet_8bit_agreement(self):
        model = smallnet()
        rng = SeededRng(3, "q")
        inputs = [rng.uniform_array((3, 32, 32), 0, 255) for _ in range(6)]
        impact = measure_quantization_impact(model, "1st_pool", 8, inputs)
        assert impact.agreement == 1.0
        assert impact.quantized_bytes < impact.text_bytes / 10

    def test_fewer_bits_smaller_payload(self):
        model = smallnet()
        rng = SeededRng(4, "q")
        inputs = [rng.uniform_array((3, 32, 32), 0, 255) for _ in range(2)]
        impact8 = measure_quantization_impact(model, "1st_pool", 8, inputs)
        impact2 = measure_quantization_impact(model, "1st_pool", 2, inputs)
        assert impact2.quantized_bytes < impact8.quantized_bytes
