"""Tests for the wire protocol, pre-sending and the server/client agents."""

import pytest

from repro.core import protocol
from repro.core.client import ClientAgent, OffloadError
from repro.core.presend import PresendManager
from repro.core.server import EdgeServer
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import Channel, NetemProfile
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.web.app import make_inference_app
from repro.web.values import TypedArray


@pytest.fixture
def world():
    """A wired-up client/server pair over a fast LAN."""
    sim = Simulator()
    channel = Channel(
        sim, "client", "edge", NetemProfile(bandwidth_bps=30e6, latency_s=0.001)
    )
    server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge")
    server.serve(channel.end_b)
    client = ClientAgent(sim, Device(sim, odroid_xu4_client()), channel.end_a)
    return sim, client, server, channel


@pytest.fixture
def model():
    return smallnet()


def pixels():
    return TypedArray(SeededRng(11, "px").uniform_array((3, 32, 32), 0, 255))


class TestPayloadSizes:
    def test_manifest_small(self, model):
        payload = protocol.ManifestPayload(model.model_id, model.files())
        assert payload.size_bytes < 2048

    def test_model_file_payload_sized_by_file(self, model):
        file = model.files()[1]
        payload = protocol.ModelFilePayload(model.model_id, file)
        assert payload.size_bytes == file.size_bytes

    def test_snapshot_payload_includes_deliveries(self, model):
        class FakeSnapshot:
            size_bytes = 1000

        delivery = protocol.ModelDelivery(model=model, files=model.files())
        payload = protocol.SnapshotPayload(FakeSnapshot(), [delivery])
        assert payload.size_bytes == 1000 + model.total_bytes
        assert payload.delivery_bytes == model.total_bytes


class TestPresend:
    def test_upload_completes_and_acks(self, world, model):
        sim, client, server, channel = world
        manager = PresendManager(sim, channel.end_a, [model])
        manager.start()
        sim.run()
        assert manager.is_acked(model.model_id)
        assert server.store.has_complete(model.model_id)
        assert server.store.get_model(model.model_id) is model

    def test_ack_time_matches_transfer_time(self, world, model):
        sim, _client, _server, channel = world
        manager = PresendManager(sim, channel.end_a, [model])
        manager.start()
        ack = manager.ack_event(model.model_id)
        sim.run()
        # ~142 KB at 30 Mbps plus framing/latency: tens of milliseconds.
        expected = model.total_bytes * 8 / 30e6
        assert ack.value == pytest.approx(expected, rel=0.5)

    def test_cancel_stops_remaining_files(self, world, model):
        sim, _client, _server, channel = world
        manager = PresendManager(sim, channel.end_a, [model])
        manager.start()
        sim.run(until=0.001)  # only the manifest got out
        manager.cancel()
        sim.run()
        assert not manager.is_acked(model.model_id)
        assert manager.missing_files(model)

    def test_pending_deliveries_before_start(self, world, model):
        sim, _client, _server, channel = world
        manager = PresendManager(sim, channel.end_a, [model])
        deliveries = manager.pending_deliveries()
        assert len(deliveries) == 1
        assert deliveries[0].size_bytes == model.total_bytes

    def test_no_deliveries_after_ack(self, world, model):
        sim, _client, _server, channel = world
        manager = PresendManager(sim, channel.end_a, [model])
        manager.start()
        sim.run()
        assert manager.pending_deliveries() == []

    def test_double_start_rejected(self, world, model):
        sim, _client, _server, channel = world
        manager = PresendManager(sim, channel.end_a, [model])
        manager.start()
        with pytest.raises(RuntimeError):
            manager.start()

    def test_mark_delivered_excludes_from_missing(self, world, model):
        sim, _client, _server, channel = world
        manager = PresendManager(sim, channel.end_a, [model])
        files = model.files()
        manager.mark_delivered(model, files[:2])
        missing = manager.missing_files(model)
        assert len(missing) == len(files) - 2


class TestOffloadRoundTrip:
    def _start(self, world, model):
        from repro.core.snapshot import CaptureOptions

        sim, client, server, _channel = world
        client.capture_options = CaptureOptions(include_canvas_pixels=True)
        app = make_inference_app(model)
        client.start_app(app, presend=True)
        client.runtime.globals["pending_pixels"] = pixels()
        client.runtime.dispatch("click", "load_btn")
        client.mark_offload_point("click", "infer_btn")
        return sim, client, server

    def test_offload_after_ack(self, world, model):
        sim, client, server = self._start(world, model)
        sim.run()  # let pre-sending finish
        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        costs = network_costs(model.network)
        process = sim.spawn(client.offload(event, server_costs=costs))
        sim.run()
        assert process.ok
        outcome = process.value
        assert outcome.delivery_bytes == 0
        assert outcome.server_timings["exec"] > 0
        assert "label" in client.runtime.document.get("result").text_content
        assert server.served_requests == 1

    def test_offload_before_ack_attaches_model(self, world, model):
        sim, client, server = self._start(world, model)
        # Click immediately: upload has not finished.
        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        process = sim.spawn(
            client.offload(event, server_costs=network_costs(model.network))
        )
        sim.run()
        assert process.ok
        assert process.value.delivery_bytes > 0
        assert server.store.has_complete(model.model_id)
        assert "label" in client.runtime.document.get("result").text_content

    def test_bytes_never_sent_twice(self, world, model):
        sim, client, server = self._start(world, model)
        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        process = sim.spawn(
            client.offload(event, server_costs=network_costs(model.network))
        )
        sim.run()
        total_sent = (
            world[3].link_ab.bytes_sent
        )  # client -> server direction
        # Everything sent once: model + snapshot + manifests, well under 2x.
        assert total_sent < 1.5 * (model.total_bytes + process.value.snapshot.size_bytes)

    def test_server_without_system_refuses(self, model):
        sim = Simulator()
        channel = Channel(sim, "client", "edge", NetemProfile.wifi_30mbps())
        server = EdgeServer(
            sim, Device(sim, edge_server_x86()), name="edge", installed=False
        )
        server.serve(channel.end_b)
        client = ClientAgent(sim, Device(sim, odroid_xu4_client()), channel.end_a)
        app = make_inference_app(model)
        client.start_app(app, presend=False)
        client.runtime.globals["pending_pixels"] = pixels()
        client.runtime.dispatch("click", "load_btn")
        client.mark_offload_point("click", "infer_btn")
        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        process = sim.spawn(client.offload(event))
        sim.run()
        assert process.ok is False
        assert isinstance(process.value, OffloadError)

    def test_capability_probe(self, world, model):
        sim, client, server, channel = world
        replies = []

        def probe():
            channel.end_a.send(protocol.PING, None)
            reply = yield channel.end_a.recv_kind(protocol.PONG)
            replies.append(reply.payload)

        sim.spawn(probe())
        sim.run()
        assert replies[0].has_offloading_system is True
        assert replies[0].server_name == "edge"

    def test_two_sequential_offloads_second_is_fast(self, world, model):
        sim, client, server = self._start(world, model)
        sim.run()
        costs = network_costs(model.network)
        times = []
        for _ in range(2):
            client.runtime.dispatch("click", "infer_btn")
            event = client.take_intercepted()
            process = sim.spawn(client.offload(event, server_costs=costs))
            sim.run()
            assert process.ok
            times.append(process.value.total_seconds)
        # The model is already at the server both times; round trips match.
        assert times[1] == pytest.approx(times[0], rel=0.5)
        assert server.served_requests == 2
