"""Property-based invariants of the multi-tenant model store.

Random interleavings of begin/receive/corrupt/attach/evict over a pool of
synthetic models whose manifests share content-addressed blobs, checked
against a shadow refcount model after every operation:

* **budget** — whenever resident bytes exceed the budget, every entry the
  LRU sweep was allowed to demote (complete, not the protected uploader)
  is already cold: eviction never under-delivers;
* **dedup** — ``missing_from_manifest`` is exactly the manifest files
  whose checksum has no resident segment — it never skips a file the
  server lacks and never requests one it holds;
* **integrity** — a corrupted file (wrong checksum) always rejects and
  leaves the store state untouched;
* **closure** — uploading exactly the reply's missing set completes the
  model (segment-status replies are sufficient as well as necessary).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.nn.model import ModelFile
from repro.nn.modelstore import ModelStore, ModelStoreError

#: the content-addressed blob universe: checksum -> size (fixed, so equal
#: checksums always mean equal bytes, as sha1 addressing guarantees)
BLOBS = {f"blob{i:02d}": (i + 1) * 37 for i in range(8)}
MODEL_IDS = ["m0", "m1", "m2", "m3"]


class FakeModel:
    """Just enough model to attach: a stable fingerprint."""

    def __init__(self, model_id):
        self.model_id = model_id

    def fingerprint(self):
        return f"fp:{self.model_id}"


def manifest_for(model_id, blob_indices):
    return [
        ModelFile(
            name=f"{model_id}.f{i}",
            kind="parameters",
            size_bytes=BLOBS[f"blob{i:02d}"],
            checksum=f"blob{i:02d}",
        )
        for i in sorted(blob_indices)
    ]


manifests = st.fixed_dictionaries(
    {
        mid: st.sets(
            st.integers(min_value=0, max_value=len(BLOBS) - 1),
            min_size=1,
            max_size=len(BLOBS),
        )
        for mid in MODEL_IDS
    }
)

operations = st.lists(
    st.tuples(
        st.sampled_from(["begin", "recv", "corrupt", "attach", "evict"]),
        st.sampled_from(MODEL_IDS),
        st.integers(min_value=0, max_value=len(BLOBS) - 1),
    ),
    max_size=80,
)

budgets = st.one_of(st.none(), st.integers(min_value=40, max_value=1500))


def shadow_segments(store, catalog):
    """Ground-truth segments from the entries' received sets."""
    held = {}
    for mid, files in catalog.items():
        entry = store.entry(mid)
        if entry is None:
            continue
        by_name = {f.name: f for f in files}
        for name in entry.received:
            held[by_name[name].checksum] = by_name[name].size_bytes
    return held


def check_invariants(store, catalog, budget, protect):
    held = shadow_segments(store, catalog)
    # resident bytes are exactly the unique received segment bytes
    assert store.resident_bytes == sum(held.values())
    for checksum in BLOBS:
        assert store.has_segment(checksum) == (checksum in held)
    # dedup answers: exactly the files whose checksum is not resident
    for mid, files in catalog.items():
        missing = store.missing_from_manifest(files)
        assert missing == [f.name for f in files if f.checksum not in held]
    # budget: an overrun is only ever carried by entries the sweep must
    # not touch — the protected uploader and in-flight (incomplete)
    # uploads; every other entry with bytes must already be demoted,
    # unless it alone exceeds the budget (documented oversize admission)
    if budget is not None and store.resident_bytes > budget:
        for mid in store.stored_ids():
            entry = store.entry(mid)
            if mid == protect or entry is None:
                continue
            if entry.received and entry.complete:
                assert entry.total_bytes > budget or mid == protect


@settings(max_examples=120, deadline=None, derandomize=True)
@given(shapes=manifests, script=operations, budget=budgets)
def test_random_interleavings_hold_invariants(shapes, script, budget):
    catalog = {
        mid: manifest_for(mid, indices) for mid, indices in shapes.items()
    }
    store = ModelStore(budget)
    last_uploader = None
    for op, mid, blob_index in script:
        files = catalog[mid]
        entry = store.entry(mid)
        if op == "begin":
            store.begin_upload(mid, files)
        elif op == "recv" and entry is not None:
            file = files[blob_index % len(files)]
            store.receive_file(mid, file)
            last_uploader = mid
        elif op == "corrupt" and entry is not None:
            file = files[blob_index % len(files)]
            bad = ModelFile(
                name=file.name,
                kind=file.kind,
                size_bytes=file.size_bytes,
                checksum="0" * 16,
            )
            before = set(store.entry(mid).received)
            with pytest.raises(ModelStoreError):
                store.receive_file(mid, bad)
            assert set(store.entry(mid).received) == before
        elif op == "attach" and entry is not None:
            if store.entry(mid).complete:
                store.attach_model(mid, FakeModel(mid))
                assert store.matches_fingerprint(mid, f"fp:{mid}")
            else:
                with pytest.raises(ModelStoreError):
                    store.attach_model(mid, FakeModel(mid))
        elif op == "evict":
            store.evict(mid)
        check_invariants(store, catalog, budget, last_uploader)


@settings(max_examples=120, deadline=None, derandomize=True)
@given(shapes=manifests, budget=budgets)
def test_missing_reply_is_sufficient_to_complete(shapes, budget):
    """Uploading exactly the reported missing set completes the model."""
    catalog = {
        mid: manifest_for(mid, indices) for mid, indices in shapes.items()
    }
    store = ModelStore(budget)
    for mid, files in catalog.items():
        missing = set(store.missing_from_manifest(files))
        entry = store.begin_upload(mid, files)
        # begin_upload claimed everything already resident; what is left
        # to send is a subset of the reply
        assert set(entry.missing) <= missing
        for file in files:
            if file.name in entry.missing:
                store.receive_file(mid, file)
        assert store.entry(mid).complete
        store.attach_model(mid, FakeModel(mid))
        assert store.matches_fingerprint(mid, f"fp:{mid}")


@settings(max_examples=80, deadline=None, derandomize=True)
@given(shapes=manifests)
def test_demotion_roundtrip_restores_the_model(shapes):
    """Evict-demote-reupload cycles always converge back to complete."""
    catalog = {
        mid: manifest_for(mid, indices) for mid, indices in shapes.items()
    }
    # budget that fits any single model but not necessarily the union
    largest = max(
        sum(f.size_bytes for f in files) for files in catalog.values()
    )
    store = ModelStore(largest)
    for mid, files in catalog.items():
        store.begin_upload(mid, files)
        for file in files:
            if file.name in store.entry(mid).missing:
                store.receive_file(mid, file)
        store.attach_model(mid, FakeModel(mid))
    # whatever got demoted along the way can be brought back with only
    # its missing segments
    for mid, files in catalog.items():
        entry = store.entry(mid)
        if entry.model is not None:
            continue
        store.begin_upload(mid, files)
        for file in files:
            if file.name in store.entry(mid).missing:
                store.receive_file(mid, file)
        store.attach_model(mid, FakeModel(mid))
        assert store.get_model(mid).model_id == mid
