"""Tests for events, scripts and the web runtime."""

import pytest

from repro.nn.zoo import smallnet, tinynet
from repro.sim import SeededRng
from repro.web import WebRuntime
from repro.web.app import WebApp, make_inference_app, make_partial_inference_app
from repro.web.events import Event, EventSystem
from repro.web.runtime import MissingModelError
from repro.web.scripts import (
    ScriptError,
    compile_functions,
    referenced_names,
    split_functions,
)
from repro.web.values import TypedArray


class TestEventSystem:
    def test_add_and_find_listeners(self):
        events = EventSystem()
        events.add_listener("btn", "click", "handler")
        assert events.handlers_for("btn", "click") == ["handler"]
        assert events.handlers_for("btn", "hover") == []

    def test_duplicate_listener_ignored(self):
        events = EventSystem()
        events.add_listener("btn", "click", "handler")
        events.add_listener("btn", "click", "handler")
        assert events.handlers_for("btn", "click") == ["handler"]

    def test_remove_listener(self):
        events = EventSystem()
        events.add_listener("btn", "click", "h")
        events.remove_listener("btn", "click", "h")
        assert events.handlers_for("btn", "click") == []

    def test_restore_listeners_roundtrip(self):
        events = EventSystem()
        events.add_listener("a", "click", "h1")
        events.add_listener("b", "custom", "h2")
        table = events.all_listeners()
        fresh = EventSystem()
        fresh.restore_listeners(table)
        assert fresh.all_listeners() == table

    def test_interception_by_type_and_target(self):
        events = EventSystem()
        events.set_interceptor(lambda event: None)
        events.mark_offload_event("click", "infer")
        assert events.should_intercept(Event("click", "infer"))
        assert not events.should_intercept(Event("click", "load"))

    def test_interception_any_target(self):
        events = EventSystem()
        events.set_interceptor(lambda event: None)
        events.mark_offload_event("front_complete")
        assert events.should_intercept(Event("front_complete", "whatever"))

    def test_no_interceptor_means_no_interception(self):
        events = EventSystem()
        events.mark_offload_event("click")
        assert not events.should_intercept(Event("click", "x"))

    def test_unmark(self):
        events = EventSystem()
        events.set_interceptor(lambda event: None)
        events.mark_offload_event("click", "b")
        events.unmark_offload_event("click", "b")
        assert not events.should_intercept(Event("click", "b"))


class TestScripts:
    def test_compile_functions_finds_handlers(self):
        fns = compile_functions("def a(ctx):\n    return 1\n\ndef b(ctx):\n    return 2\n")
        assert set(fns) >= {"a", "b"}
        assert fns["a"](None) == 1

    def test_syntax_error_raises(self):
        with pytest.raises(ScriptError):
            compile_functions("def broken(:\n")

    def test_no_dangerous_builtins(self):
        fns = compile_functions(
            "def evil(ctx):\n    return open('/etc/passwd')\n"
        )
        with pytest.raises(Exception):
            fns["evil"](None)

    def test_no_import(self):
        fns = compile_functions("def evil(ctx):\n    import os\n    return os\n")
        with pytest.raises(Exception):
            fns["evil"](None)

    def test_split_functions(self):
        source = "def a(ctx):\n    return 1\n\ndef b(ctx):\n    return 2\n"
        segments = split_functions(source)
        assert set(segments) == {"a", "b"}
        assert "return 1" in segments["a"]
        assert "return 2" not in segments["a"]

    def test_referenced_names_includes_string_literals(self):
        names = referenced_names(
            'def f(ctx):\n    ctx.dispatch_event("front_complete", "btn")\n'
        )
        assert "front_complete" in names
        assert "ctx" in names


class TestWebRuntime:
    def test_load_app_builds_dom_and_listeners(self):
        runtime = WebRuntime()
        runtime.load_app(make_inference_app(tinynet()))
        assert runtime.document.get("infer_btn").tag == "button"
        assert runtime.events.handlers_for("infer_btn", "click") == ["on_inference"]

    def test_listener_with_unknown_handler_rejected(self):
        runtime = WebRuntime()
        runtime.load_app(make_inference_app(tinynet()))
        with pytest.raises(ScriptError):
            runtime.add_listener("infer_btn", "click", "ghost_handler")

    def test_dispatch_runs_handlers(self):
        model = tinynet()
        runtime = WebRuntime()
        runtime.load_app(make_inference_app(model))
        runtime.globals["pending_pixels"] = TypedArray(
            SeededRng(1, "x").uniform_array((1, 8, 8), 0, 255)
        )
        runtime.dispatch("click", "load_btn")
        runtime.dispatch("click", "infer_btn")
        assert "label" in runtime.document.get("result").text_content
        assert runtime.handler_log == ["load_image", "on_inference"]

    def test_missing_model_raises(self):
        model = tinynet()
        runtime = WebRuntime()
        runtime.load_app(make_inference_app(model))
        # Simulate a runtime that has the refs but not the model (a fresh
        # edge server before pre-sending completes).
        runtime.installed_models.clear()
        runtime.globals["pending_pixels"] = TypedArray(
            SeededRng(1, "x").uniform_array((1, 8, 8), 0, 255)
        )
        runtime.dispatch("click", "load_btn")
        with pytest.raises(MissingModelError):
            runtime.dispatch("click", "infer_btn")

    def test_undeclared_model_name_is_key_error(self):
        runtime = WebRuntime()
        runtime.load_app(make_inference_app(tinynet()))
        context_models = runtime.app_models
        with pytest.raises(KeyError):
            context_models["nonexistent"]

    def test_onload_handler_runs(self):
        app = WebApp(
            name="onload-app",
            body_spec=[{"tag": "div", "id": "result"}],
            script="def main(ctx):\n    ctx.globals['ready'] = True\n",
            onload="main",
        )
        runtime = WebRuntime()
        runtime.load_app(app)
        assert runtime.globals["ready"] is True

    def test_unknown_handler_raises(self):
        runtime = WebRuntime()
        runtime.load_app(make_inference_app(tinynet()))
        with pytest.raises(ScriptError):
            runtime.run_handler("ghost")

    def test_current_event_transient(self):
        app = WebApp(
            name="event-app",
            body_spec=[{"tag": "button", "id": "b"}, {"tag": "div", "id": "result"}],
            script=(
                "def h(ctx):\n"
                "    ctx.globals['seen'] = ctx.event.event_type\n"
            ),
            listeners=[("b", "click", "h")],
        )
        runtime = WebRuntime()
        runtime.load_app(app)
        runtime.dispatch("click", "b")
        assert runtime.globals["seen"] == "click"
        assert runtime.current_event is None

    def test_partial_app_event_chain(self):
        model = smallnet()
        point = model.network.point_by_label("1st_pool")
        front, rear = model.split(point.index)
        app = make_partial_inference_app(front, rear)
        assert app.presend_models() == [rear]
        runtime = WebRuntime()
        runtime.load_app(app)
        runtime.globals["pending_pixels"] = TypedArray(
            SeededRng(2, "x").uniform_array((3, 32, 32), 0, 255)
        )
        runtime.dispatch("click", "load_btn")
        runtime.dispatch("click", "infer_btn")
        # front dispatched front_complete which ran rear synchronously
        assert runtime.handler_log == ["load_image", "front", "rear"]
        assert "label" in runtime.document.get("result").text_content

    def test_nested_dom_spec(self):
        app = WebApp(
            name="nested",
            body_spec=[
                {
                    "tag": "div",
                    "id": "outer",
                    "children": [{"tag": "span", "id": "inner", "text": "hi"}],
                },
                {"tag": "div", "id": "result"},
            ],
            script="",
        )
        runtime = WebRuntime()
        runtime.load_app(app)
        assert runtime.document.get("inner").text_content == "hi"
        assert runtime.document.get("inner").parent.element_id == "outer"
