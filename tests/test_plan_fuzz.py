"""Differential fuzzing for the DAG plan compiler.

Hypothesis generates random branch-and-join layer graphs — nested
inception/residual composites, shared branch inputs, mixed
conv/pool/fc/ReLU/LRN units, with and without BatchNorm chains — and every
generated network is run both ways: the reference layer walk versus the
compiled :class:`~repro.nn.plan.ExecutionPlan`.  The contract under test:

* graphs without BatchNorm/Scale are **bitwise identical** to the
  reference walk (``np.array_equal``), whole-network and at every spine
  split, including splits whose ranges cross a branch-and-join stage;
* graphs with BN chains stay within the folding tolerance (1e-6);
* ``forward_traced`` never reports an arena step whose output buffer
  aliases one of its inputs or clobbers a value still live — the
  interval-coloring safety invariant;
* compiled graphs contain zero opaque composite steps: every inception /
  residual lowers to inlined branch steps plus one concat/eltwise join.

All strategies are derandomized so CI failures reproduce exactly; the
heavier nested-graph cases carry the ``fuzz`` marker.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.nn.layers.activation import ReLULayer
from repro.nn.layers.batchnorm import BatchNormLayer, ScaleLayer
from repro.nn.layers.composite import InceptionModule, ResidualBlock
from repro.nn.layers.conv import ConvLayer
from repro.nn.layers.dense import FCLayer
from repro.nn.layers.io import InputLayer
from repro.nn.layers.normalization import LRNLayer
from repro.nn.layers.pool import PoolLayer
from repro.nn.network import Network
from repro.sim import SeededRng

#: folding re-associates BN affine chains in float64; see test_nn_plan.py
FOLD_TOLERANCE = dict(rtol=1e-5, atol=1e-6)

FUZZ_SETTINGS = dict(
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class _GraphSpec:
    """A generated network plus what the generator put into it."""

    def __init__(self, layers, composites, has_bn):
        self.layers = layers
        self.composites = composites  # total composite count, nested included
        self.has_bn = has_bn

    def build(self):
        network = Network("fuzz", self.layers)
        network.build(SeededRng(11, "fuzz/net"))
        return network


class _Namer:
    def __init__(self):
        self.count = 0

    def __call__(self, kind):
        self.count += 1
        return f"{kind}{self.count}"


@st.composite
def _conv_unit(draw, channels, namer, allow_bn):
    """Spatial-preserving conv, optionally + BN/Scale chain, optionally + ReLU."""
    filters = draw(st.integers(1, 4))
    kernel = draw(st.sampled_from([1, 3]))
    layers = [
        ConvLayer(namer("conv"), filters, kernel, stride=1, pad=kernel // 2)
    ]
    has_bn = False
    if allow_bn and draw(st.booleans()):
        has_bn = True
        layers.append(BatchNormLayer(namer("bn")))
        if draw(st.booleans()):
            layers.append(
                ScaleLayer(namer("scale"), bias=draw(st.booleans()))
            )
    if draw(st.booleans()):
        layers.append(ReLULayer(namer("relu")))
    return layers, filters, has_bn


@st.composite
def _branch_sequence(draw, channels, namer, allow_bn, depth):
    """A composite branch: 1-3 spatial-preserving units; returns
    (layers, out_channels, has_bn, composites)."""
    layers = []
    has_bn = False
    composites = 0
    for _ in range(draw(st.integers(1, 3))):
        choice = draw(
            st.sampled_from(
                ["conv", "relu", "lrn"] + (["composite"] * (2 if depth else 0))
            )
        )
        if choice == "conv":
            unit, channels, unit_bn = draw(
                _conv_unit(channels=channels, namer=namer, allow_bn=allow_bn)
            )
            layers.extend(unit)
            has_bn = has_bn or unit_bn
        elif choice == "relu":
            layers.append(ReLULayer(namer("relu")))
        elif choice == "lrn":
            layers.append(LRNLayer(namer("lrn"), local_size=3))
        else:
            composite, channels, unit_bn, inner = draw(
                _composite_unit(
                    channels=channels,
                    namer=namer,
                    allow_bn=allow_bn,
                    depth=depth - 1,
                )
            )
            layers.append(composite)
            has_bn = has_bn or unit_bn
            composites += 1 + inner
    return layers, channels, has_bn, composites


@st.composite
def _composite_unit(draw, channels, namer, allow_bn, depth):
    """An inception or residual composite; spatial-preserving by
    construction so it can nest anywhere; returns
    (layer, out_channels, has_bn, nested_composite_count)."""
    if draw(st.booleans()):
        # Inception: 2-3 branches sharing the input, channel concat.
        branches = []
        total = 0
        has_bn = False
        nested = 0
        for _ in range(draw(st.integers(2, 3))):
            layers, out_channels, branch_bn, inner = draw(
                _branch_sequence(
                    channels=channels, namer=namer, allow_bn=allow_bn,
                    depth=depth,
                )
            )
            if not layers:  # inception branches must be non-empty
                layers = [ReLULayer(namer("relu"))]
            branches.append(layers)
            total += out_channels
            has_bn = has_bn or branch_bn
            nested += inner
        return InceptionModule(namer("incept"), branches), total, has_bn, nested
    # Residual: body + identity-or-projection shortcut, eltwise add.
    body, out_channels, has_bn, nested = draw(
        _branch_sequence(
            channels=channels, namer=namer, allow_bn=allow_bn, depth=depth
        )
    )
    if out_channels == channels and draw(st.booleans()):
        shortcut = None  # identity edge: the join reads the shared input
    else:
        shortcut = [
            ConvLayer(namer("proj"), out_channels, 1, stride=1, pad=0)
        ]
    if not body:
        body = [ReLULayer(namer("relu"))]
    block = ResidualBlock(namer("res"), body, shortcut)
    return block, out_channels, has_bn, nested


@st.composite
def graph_specs(draw, allow_bn, depth=1, min_composites=1):
    """A whole random network: input, mixed spine units (including pools
    and composites), optional FC tail."""
    namer = _Namer()
    channels = draw(st.integers(1, 3))
    side = draw(st.sampled_from([4, 6, 8]))
    layers = [InputLayer((channels, side, side))]
    has_bn = False
    composites = 0
    for _ in range(draw(st.integers(1, 4))):
        options = ["conv", "relu", "lrn", "composite"]
        if side >= 4:
            options.append("pool")
        choice = draw(st.sampled_from(options))
        if choice == "conv":
            unit, channels, unit_bn = draw(
                _conv_unit(channels=channels, namer=namer, allow_bn=allow_bn)
            )
            layers.extend(unit)
            has_bn = has_bn or unit_bn
        elif choice == "relu":
            layers.append(ReLULayer(namer("relu")))
        elif choice == "lrn":
            layers.append(LRNLayer(namer("lrn"), local_size=3))
        elif choice == "pool":
            mode = draw(st.sampled_from(["max", "avg"]))
            layers.append(PoolLayer(namer("pool"), 2, 2, mode=mode))
            side //= 2
        else:
            composite, channels, unit_bn, nested = draw(
                _composite_unit(
                    channels=channels, namer=namer, allow_bn=allow_bn,
                    depth=depth,
                )
            )
            layers.append(composite)
            has_bn = has_bn or unit_bn
            composites += 1 + nested
    while composites < min_composites:
        composite, channels, unit_bn, nested = draw(
            _composite_unit(
                channels=channels, namer=namer, allow_bn=allow_bn, depth=depth
            )
        )
        layers.append(composite)
        has_bn = has_bn or unit_bn
        composites += 1 + nested
    if draw(st.booleans()):
        layers.append(FCLayer(namer("fc"), draw(st.integers(2, 6))))
        if draw(st.booleans()):
            layers.append(ReLULayer(namer("relu")))
    return _GraphSpec(layers, composites, has_bn)


def _input_for(network, seed=3):
    return SeededRng(seed, "fuzz/input").uniform_array(
        tuple(network.input_shape), -1.0, 1.0
    )


def _assert_flat_dag(plan, expected_joins):
    opaque = [s for s in plan.steps if s.kind in ("inception", "residual")]
    assert opaque == [], f"opaque composite steps survived: {opaque}"
    assert plan.stats.joins == expected_joins
    assert plan.stats.branches >= expected_joins  # every join has branches


def _assert_no_aliasing(trace):
    for entry in trace:
        assert not entry["output_aliases_input"], entry
        assert not entry["output_clobbers_live"], entry


class TestGeneratedGraphs:
    @settings(max_examples=100, **FUZZ_SETTINGS)
    @given(spec=graph_specs(allow_bn=False))
    def test_plan_bitwise_identical_without_bn(self, spec):
        network = spec.build()
        x = _input_for(network)
        reference = network.forward(x, optimize=False)
        plan = network.plan_for()
        _assert_flat_dag(plan, spec.composites)
        assert np.array_equal(plan.forward(x), reference)
        traced, trace = plan.forward_traced(x)
        assert np.array_equal(traced, reference)
        _assert_no_aliasing(trace)

    @settings(max_examples=60, **FUZZ_SETTINGS)
    @given(spec=graph_specs(allow_bn=True))
    def test_plan_within_tolerance_with_bn(self, spec):
        network = spec.build()
        x = _input_for(network)
        reference = network.forward(x, optimize=False)
        plan = network.plan_for()
        _assert_flat_dag(plan, spec.composites)
        result, trace = plan.forward_traced(x)
        _assert_no_aliasing(trace)
        if spec.has_bn:
            np.testing.assert_allclose(result, reference, **FOLD_TOLERANCE)
        else:
            assert np.array_equal(result, reference)

    @settings(max_examples=40, **FUZZ_SETTINGS)
    @given(
        spec=graph_specs(allow_bn=False),
        data=st.data(),
    )
    def test_split_ranges_bitwise_across_joins(self, spec, data):
        """Front/rear plans around a random spine split compose bitwise —
        including splits whose ranges cross branch-and-join stages."""
        network = spec.build()
        last = len(network.layers) - 1
        split = data.draw(st.integers(0, last - 1), label="split")
        x = _input_for(network)
        reference = network.forward(x, optimize=False)
        front = network.forward_range(x, 0, split, optimize=True)
        rear = network.forward_range(front, split + 1, last, optimize=True)
        assert np.array_equal(rear, reference)


@pytest.mark.fuzz
class TestNestedGraphsSlow:
    """Heavier cases: guaranteed nesting and more composites per graph."""

    @settings(max_examples=60, **FUZZ_SETTINGS)
    @given(spec=graph_specs(allow_bn=False, depth=2, min_composites=2))
    def test_nested_branch_graphs_bitwise(self, spec):
        network = spec.build()
        x = _input_for(network)
        reference = network.forward(x, optimize=False)
        plan = network.plan_for()
        _assert_flat_dag(plan, spec.composites)
        result, trace = plan.forward_traced(x)
        assert np.array_equal(result, reference)
        _assert_no_aliasing(trace)

    @settings(max_examples=30, **FUZZ_SETTINGS)
    @given(spec=graph_specs(allow_bn=True, depth=2, min_composites=2))
    def test_nested_bn_graphs_within_tolerance(self, spec):
        network = spec.build()
        x = _input_for(network)
        reference = network.forward(x, optimize=False)
        result = network.plan_for().forward(x)
        if spec.has_bn:
            np.testing.assert_allclose(result, reference, **FOLD_TOLERANCE)
        else:
            assert np.array_equal(result, reference)
