"""Hypothesis property tests for the observability layer.

Two families of invariants:

* pure histogram algebra — merging registries must behave like
  concatenating the underlying sample lists, and nearest-rank quantiles
  must be order statistics;
* end-to-end accounting — for ANY (mode, seed, downlink-loss)
  combination, the per-phase histograms and the session-phase spans must
  sum exactly to the session wall time, and the server must execute each
  request at most once no matter how many retransmissions the loss
  forces.

``derandomize=True`` keeps every run byte-for-byte deterministic: the
example stream depends only on the strategy definitions, never on wall
clock or global RNG state.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.client import ClientAgent
from repro.core.server import EdgeServer
from repro.core.session import OffloadingSession, expected_label_for
from repro.core.snapshot import CaptureOptions
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import Channel, NetemProfile
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.obs import MetricsRegistry
from repro.sim import SeededRng, Simulator
from repro.web.app import make_inference_app
from repro.web.values import TypedArray

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples = st.lists(finite_floats, min_size=1, max_size=50)


class TestHistogramAlgebra:
    @settings(derandomize=True, deadline=None)
    @given(values=samples)
    def test_quantile_endpoints_are_order_statistics(self, values):
        hist = MetricsRegistry().histogram("h")
        for value in values:
            hist.observe(value)
        assert hist.count == len(values)
        assert hist.sum == pytest.approx(sum(values))
        assert hist.quantile(0.0) == min(values)
        assert hist.quantile(1.0) == max(values)
        assert min(values) <= hist.quantile(0.5) <= max(values)

    @settings(derandomize=True, deadline=None)
    @given(values=samples, qs=st.lists(st.floats(0, 1), min_size=2, max_size=6))
    def test_quantile_monotone_in_q(self, values, qs):
        hist = MetricsRegistry().histogram("h")
        for value in values:
            hist.observe(value)
        ordered = sorted(qs)
        results = [hist.quantile(q) for q in ordered]
        assert results == sorted(results)

    @settings(derandomize=True, deadline=None)
    @given(left=samples, right=samples)
    def test_merge_is_concatenation(self, left, right):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in left:
            a.histogram("h", shard="x").observe(value)
        for value in right:
            b.histogram("h", shard="x").observe(value)
        merged = MetricsRegistry.merged([a, b])
        hist = merged.get("h", shard="x")
        assert hist.count == len(left) + len(right)
        assert hist.sum == pytest.approx(sum(left) + sum(right))
        assert hist.quantile(0.0) == min(left + right)
        assert hist.quantile(1.0) == max(left + right)
        assert sorted(hist.observations) == sorted(left + right)

    @settings(derandomize=True, deadline=None)
    @given(values=samples, edges=st.lists(finite_floats, min_size=1, max_size=8))
    def test_bucket_counts_cumulative_and_end_at_count(self, values, edges):
        hist = MetricsRegistry().histogram("h")
        for value in values:
            hist.observe(value)
        bounds = sorted(set(edges))
        counts = hist.bucket_counts(bounds)
        assert counts == sorted(counts)
        assert all(c <= hist.count for c in counts)
        for bound, count in zip(bounds, counts):
            assert count == sum(1 for v in values if v <= bound)

    @settings(derandomize=True, deadline=None)
    @given(increments=st.lists(st.floats(0, 1e6, allow_nan=False), max_size=20))
    def test_counter_equals_sum_of_increments(self, increments):
        registry = MetricsRegistry()
        counter = registry.counter("n_total")
        for delta in increments:
            counter.inc(delta)
        assert registry.value("n_total") == pytest.approx(sum(increments))


def run_session(mode, seed, loss_down=0.0, reply_timeout=None, retries=0):
    """One complete session in a fresh world; returns (sim, server, result)."""
    sim = Simulator()
    channel = Channel(
        sim,
        "client",
        "edge",
        NetemProfile(bandwidth_bps=30e6, latency_s=0.001),
        profile_back=NetemProfile(
            bandwidth_bps=30e6, latency_s=0.001, loss=loss_down
        ),
    )
    server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge")
    server.serve(channel.end_b)
    client = ClientAgent(
        sim,
        Device(sim, odroid_xu4_client()),
        channel.end_a,
        capture_options=CaptureOptions(include_canvas_pixels=True),
    )
    model = smallnet(seed=seed)
    image = TypedArray(SeededRng(seed, "px").uniform_array((3, 32, 32), 0, 255))
    session = OffloadingSession(
        sim,
        client,
        make_inference_app(model),
        "smallnet",
        image,
        full_costs=network_costs(model.network),
        expected_label=expected_label_for(model, image),
        reply_timeout=reply_timeout,
        retries=retries,
    )
    if mode == "client":
        process = sim.spawn(session.run_client_only())
    else:
        process = sim.spawn(
            session.run_offload(wait_for_ack=(mode == "offload-after-ack"))
        )
    sim.run()
    assert process.ok, process.value
    return sim, server, process.value


class TestSessionAccounting:
    """Spans and phase histograms must tile the session exactly."""

    @settings(
        derandomize=True,
        deadline=None,
        max_examples=8,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        mode=st.sampled_from(["client", "offload-after-ack", "offload-before-ack"]),
        seed=st.integers(min_value=0, max_value=7),
    )
    def test_phase_spans_tile_wall_time(self, mode, seed):
        sim, server, result = run_session(mode, seed)
        spans = sim.spans.by_category("session-phase")
        assert spans
        assert sum(s.duration for s in spans) == pytest.approx(
            result.total_seconds, abs=1e-9
        )
        assert min(s.start for s in spans) == pytest.approx(result.started_at)
        assert max(s.end for s in spans) == pytest.approx(result.finished_at)
        # phase histograms carry exactly the PhaseBreakdown totals
        for phase, seconds in result.phases.as_dict().items():
            hist = sim.metrics.get(
                "session_phase_seconds", phase=phase, mode=result.mode
            )
            assert hist.sum == pytest.approx(seconds, abs=1e-9)

    @settings(
        derandomize=True,
        deadline=None,
        max_examples=6,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=5),
        loss_down=st.floats(min_value=0.0, max_value=0.3),
    )
    def test_lossy_downlink_preserves_accounting_and_at_most_once(
        self, seed, loss_down
    ):
        # Replies may be dropped; the client retransmits.  However the
        # protocol churns, the span accounting must still tile the wall
        # time and the server must never run the DNN twice.
        sim, server, result = run_session(
            "offload-before-ack",
            seed,
            loss_down=loss_down,
            reply_timeout=1.0,
            retries=30,
        )
        assert result.correct
        assert server.executions == 1
        spans = sim.spans.by_category("session-phase")
        assert sum(s.duration for s in spans) == pytest.approx(
            result.total_seconds, abs=1e-9
        )
        retransmissions = sim.metrics.value(
            "client_retransmissions_total", client="client"
        )
        cached_replies = sim.metrics.value(
            "server_replies_from_cache_total", server="edge"
        )
        requests_received = sim.metrics.value(
            "server_requests_total", server="edge"
        )
        # The uplink is lossless, so every send arrives; each received
        # request was either the one execution or a cached reply.
        assert requests_received == retransmissions + 1
        assert requests_received == server.executions + cached_replies
