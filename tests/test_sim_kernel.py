"""Unit tests for the discrete-event kernel (clock, queue, loop)."""

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.clock import Clock, ClockError
from repro.sim.events import EventQueue


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            Clock(-1.0)

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(3.5)
        assert clock.now == 3.5

    def test_advance_to_same_time_allowed(self):
        clock = Clock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_backwards_rejected(self):
        clock = Clock(2.0)
        with pytest.raises(ClockError):
            clock.advance_to(1.0)

    def test_advance_by(self):
        clock = Clock(1.0)
        clock.advance_by(0.5)
        assert clock.now == 1.5

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ClockError):
            Clock().advance_by(-0.1)


class TestEventQueue:
    def test_pop_order_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, order.append, ("b",))
        queue.push(1.0, order.append, ("a",))
        queue.push(3.0, order.append, ("c",))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.fire()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        for name in "abc":
            queue.push(1.0, order.append, (name,))
        while queue:
            queue.pop().fire()
        assert order == ["a", "b", "c"]

    def test_priority_beats_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, order.append, ("normal",), priority=1)
        queue.push(1.0, order.append, ("urgent",), priority=0)
        while queue:
            queue.pop().fire()
        assert order == ["urgent", "normal"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, fired.append, ("x",))
        event.cancel()
        assert queue.pop() is None
        assert fired == []

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(4.0, lambda: None)
        first = queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0
        first.cancel()
        assert queue.peek_time() == 4.0


class TestSimulator:
    def test_schedule_and_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.schedule(2.5, lambda: seen.append(sim.now))
        end = sim.run()
        assert seen == [1.0, 2.5]
        assert end == 2.5

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start=10.0)
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator(start=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(9.0, lambda: None)

    def test_run_until_time_limit(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("early"))
        sim.schedule(5.0, lambda: seen.append("late"))
        sim.run(until=3.0)
        assert seen == ["early"]
        assert sim.now == 3.0
        sim.run()
        assert seen == ["early", "late"]

    def test_run_with_until_advances_idle_clock(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule(1.0, lambda: seen.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [("second", 2.0)]

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_condition(self):
        sim = Simulator()
        counter = []
        for i in range(5):
            sim.schedule(float(i), lambda: counter.append(1))
        sim.run_until(lambda: len(counter) >= 3)
        assert len(counter) == 3
        assert sim.now == 2.0

    def test_run_until_condition_idle_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False)

    def test_tracing(self):
        sim = Simulator()
        sim.trace("ignored before enable")
        sim.enable_tracing()
        sim.schedule(1.0, lambda: sim.trace("hello"))
        sim.run()
        assert sim.trace_log == [(1.0, "hello")]
