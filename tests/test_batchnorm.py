"""Tests for BatchNorm/Scale layers and the batch-normalized resnet."""

import numpy as np
import pytest

from repro.nn.layers import BatchNormLayer, ScaleLayer
from repro.nn.layers.base import LayerShapeError
from repro.nn.prototxt import network_from_prototxt, network_to_prototxt
from repro.nn.zoo.resnetlike import resnet_mini, resnet_mini_bn
from repro.sim import SeededRng


class TestBatchNorm:
    def test_whitens_with_stored_statistics(self):
        layer = BatchNormLayer("bn")
        layer.build((2, 3, 3), SeededRng(0, "bn"))
        x = SeededRng(1, "x").normal_array((2, 3, 3), 5.0)
        out = layer.forward(x)
        mean = layer.params["mean"][:, None, None]
        variance = layer.params["variance"][:, None, None]
        expected = (x - mean) / np.sqrt(variance + layer.eps)
        assert np.allclose(out, expected, atol=1e-5)

    def test_stats_ship_as_parameters(self):
        layer = BatchNormLayer("bn")
        layer.build((8, 4, 4), SeededRng(2, "bn"))
        assert layer.param_count == 16  # mean + variance per channel

    def test_bad_eps_rejected(self):
        with pytest.raises(LayerShapeError):
            BatchNormLayer("bn", eps=0.0)

    def test_needs_chw_input(self):
        layer = BatchNormLayer("bn")
        with pytest.raises(LayerShapeError):
            layer.build((10,), SeededRng(3, "bn"))


class TestScale:
    def test_affine(self):
        layer = ScaleLayer("s")
        layer.build((2, 2, 2), SeededRng(4, "s"))
        x = SeededRng(5, "x").normal_array((2, 2, 2))
        out = layer.forward(x)
        expected = (
            x * layer.params["gamma"][:, None, None]
            + layer.params["beta"][:, None, None]
        )
        assert np.allclose(out, expected, atol=1e-6)

    def test_without_bias(self):
        layer = ScaleLayer("s", bias=False)
        layer.build((2, 2, 2), SeededRng(6, "s"))
        assert "beta" not in layer.params
        x = np.ones((2, 2, 2), dtype=np.float32)
        assert np.allclose(
            layer.forward(x), layer.params["gamma"][:, None, None] * x
        )


class TestBnResnet:
    @pytest.fixture(scope="class")
    def model(self):
        return resnet_mini_bn()

    def test_forward(self, model):
        x = SeededRng(7, "x").uniform_array((3, 32, 32), 0, 255)
        probs = model.inference(x)
        assert probs.sum() == pytest.approx(1.0, rel=1e-4)

    def test_bn_adds_parameters(self, model):
        plain = resnet_mini()
        assert model.network.param_count > plain.network.param_count

    def test_split_consistent(self, model):
        x = SeededRng(8, "x").uniform_array((3, 32, 32), 0, 255)
        full = model.inference(x)
        halves = model.network.split(7)
        assert np.allclose(halves.forward(x), full, atol=1e-4)

    def test_prototxt_roundtrip_with_bn(self, model):
        text = network_to_prototxt(model.network)
        assert 'type: "BatchNorm"' in text
        assert 'type: "Scale"' in text
        rebuilt = network_from_prototxt(text)
        assert rebuilt.param_count == model.network.param_count
        inner_kinds = {
            cost.kind
            for cost in __import__(
                "repro.nn.cost", fromlist=["network_costs"]
            ).network_costs(rebuilt)
        }
        assert {"batchnorm", "scale", "eltwise"} <= inner_kinds

    def test_description_roundtrip(self, model):
        import json

        from repro.nn.model import network_from_description

        rebuilt = network_from_description(json.loads(model.description_json()))
        x = SeededRng(9, "x").uniform_array((3, 32, 32), 0, 255)
        # Fresh random params differ, but architecture must agree.
        assert rebuilt.output_shape == model.network.output_shape
        assert rebuilt.param_count == model.network.param_count

    def test_save_load_exact(self, tmp_path, model):
        from repro.nn.model import Model

        model.save(str(tmp_path))
        loaded = Model.load(str(tmp_path), "resnet-mini-bn")
        x = SeededRng(10, "x").uniform_array((3, 32, 32), 0, 255)
        assert np.allclose(loaded.inference(x), model.inference(x), atol=1e-6)
