"""Failure injection: lossy links, retransmission, at-most-once execution."""

import pytest

from repro.core.client import ClientAgent, OffloadError
from repro.core.server import EdgeServer
from repro.core.snapshot import CaptureOptions
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import Channel, NetemProfile
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.web.app import make_inference_app
from repro.web.values import TypedArray


def make_world(loss_up=0.0, loss_down=0.0):
    sim = Simulator()
    channel = Channel(
        sim,
        "client",
        "edge",
        NetemProfile(bandwidth_bps=30e6, latency_s=0.001, loss=loss_up),
        profile_back=NetemProfile(bandwidth_bps=30e6, latency_s=0.001, loss=loss_down),
    )
    server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge")
    server.serve(channel.end_b)
    client = ClientAgent(
        sim,
        Device(sim, odroid_xu4_client()),
        channel.end_a,
        capture_options=CaptureOptions(include_canvas_pixels=True),
    )
    model = smallnet()
    client.start_app(make_inference_app(model), presend=False)
    client.runtime.globals["pending_pixels"] = TypedArray(
        SeededRng(0, "px").uniform_array((3, 32, 32), 0, 255)
    )
    client.runtime.dispatch("click", "load_btn")
    client.mark_offload_point("click", "infer_btn")
    # Without pre-send, install the model at the server directly (keeps the
    # lossy-link tests focused on the snapshot exchange).
    server.store.begin_upload(model.model_id, model.files())
    for file in model.files():
        server.store.receive_file(model.model_id, file)
    server.store.attach_model(model.model_id, model)
    return sim, client, server, channel, model


def offload(sim, client, model, **kwargs):
    client.runtime.dispatch("click", "infer_btn")
    event = client.take_intercepted()
    process = sim.spawn(
        client.offload(event, server_costs=network_costs(model.network), **kwargs)
    )
    sim.run()
    return process


class TestRetransmission:
    def test_reliable_link_no_retries_needed(self):
        sim, client, server, channel, model = make_world()
        process = offload(sim, client, model, reply_timeout=5.0, retries=3)
        assert process.ok
        assert server.served_requests == 1

    def test_lost_snapshot_recovered_by_retry(self):
        # Uplink drops everything until we flip it off: first attempt dies.
        sim, client, server, channel, model = make_world()
        channel.link_ab.profile = channel.link_ab.profile.__class__(
            bandwidth_bps=30e6, latency_s=0.001, loss=0.999999
        )
        sim.schedule(1.0, lambda: channel.link_ab.set_profile(
            NetemProfile(bandwidth_bps=30e6, latency_s=0.001)
        ))
        process = offload(sim, client, model, reply_timeout=2.0, retries=3)
        assert process.ok
        assert "label" in client.runtime.document.get("result").text_content

    def test_lost_reply_not_reexecuted(self):
        # Downlink drops the first reply; the retransmitted request must be
        # answered from the reply cache without running the DNN again.
        sim, client, server, channel, model = make_world()
        channel.link_ba.set_profile(
            NetemProfile(bandwidth_bps=30e6, latency_s=0.001, loss=0.999999)
        )
        sim.schedule(1.0, lambda: channel.link_ba.set_profile(
            NetemProfile(bandwidth_bps=30e6, latency_s=0.001)
        ))
        process = offload(sim, client, model, reply_timeout=2.0, retries=5)
        assert process.ok
        assert server.served_requests == 1  # executed exactly once

    def test_exhausted_retries_raise(self):
        sim, client, server, channel, model = make_world()
        channel.go_down()
        process = offload(sim, client, model, reply_timeout=0.5, retries=2)
        assert process.ok is False
        assert isinstance(process.value, OffloadError)
        assert "after 3 attempt" in str(process.value)

    def test_no_timeout_means_wait_forever(self):
        sim, client, server, channel, model = make_world()
        process = offload(sim, client, model)  # default: no timeout
        assert process.ok

    def test_slow_reply_stale_result_discarded(self):
        # The first reply is merely SLOW (server busy), not lost: the
        # client times out, retransmits, then receives TWO results.  The
        # second offload must not be confused by the leftover.
        sim, client, server, channel, model = make_world()
        server.device.execute(3.0, label="busy-with-something")  # head-of-line
        process = offload(sim, client, model, reply_timeout=1.0, retries=5)
        assert process.ok
        assert process.value.request_id == 1
        # A follow-up offload still works and matches its own request.
        process2 = offload(sim, client, model, reply_timeout=5.0, retries=1)
        assert process2.ok
        assert process2.value.request_id > 1

    def test_duplicate_execution_never_happens_under_heavy_retry(self):
        sim, client, server, channel, model = make_world()
        server.device.execute(2.5, label="busy")  # force several timeouts
        process = offload(sim, client, model, reply_timeout=0.5, retries=10)
        assert process.ok
        assert server.served_requests == 1


class TestReliabilityTelemetry:
    """Counter-backed versions of the failure stories: the registry must
    tell the same story the protocol state does."""

    def test_lossy_downlink_executes_at_most_once(self):
        sim, client, server, channel, model = make_world()
        channel.link_ba.set_profile(
            NetemProfile(bandwidth_bps=30e6, latency_s=0.001, loss=0.999999)
        )
        sim.schedule(1.0, lambda: channel.link_ba.set_profile(
            NetemProfile(bandwidth_bps=30e6, latency_s=0.001)
        ))
        process = offload(sim, client, model, reply_timeout=2.0, retries=5)
        assert process.ok
        assert server.executions == 1
        cached = sim.metrics.value("server_replies_from_cache_total", server="edge")
        retransmissions = sim.metrics.value(
            "client_retransmissions_total", client="client"
        )
        timeouts = sim.metrics.value("client_reply_timeouts_total", client="client")
        assert cached >= 1
        assert retransmissions == cached  # lossless uplink: all arrive
        assert timeouts == retransmissions
        assert sim.metrics.value("net_messages_sent_total", endpoint="client") >= 2

    def test_restart_between_offloads_falls_back_and_reexecutes(self):
        sim, client, server, channel, model = make_world()
        first = offload(sim, client, model)
        assert first.ok and first.value.snapshot.kind == "full"
        server.restart()
        second = offload(sim, client, model)
        assert second.ok
        # The client tried a delta, was told the session is gone, and
        # transparently re-sent a full snapshot; both requests executed.
        assert second.value.snapshot.kind == "full"
        assert server.executions == 2
        assert sim.metrics.value("server_restarts_total", server="edge") == 1
        assert sim.metrics.value(
            "client_session_fallbacks_total", client="client"
        ) == 1

    def test_restart_mid_session_reexecutes_after_reply_loss(self):
        # The reply to the first execution is lost AND the server restarts
        # before the retransmission lands: the reply cache is gone, so the
        # at-most-once guarantee degrades (by design) to a re-execution —
        # the client still converges on a correct answer.
        sim, client, server, channel, model = make_world()
        channel.link_ba.set_profile(
            NetemProfile(bandwidth_bps=30e6, latency_s=0.001, loss=0.999999)
        )
        sim.schedule(1.0, lambda: channel.link_ba.set_profile(
            NetemProfile(bandwidth_bps=30e6, latency_s=0.001)
        ))
        sim.schedule(1.5, server.restart)
        process = offload(sim, client, model, reply_timeout=2.0, retries=5)
        assert process.ok
        assert server.executions == 2
        assert sim.metrics.value(
            "server_replies_from_cache_total", server="edge"
        ) == 0
        assert "label" in client.runtime.document.get("result").text_content

    def test_exhausted_retries_count_failures(self):
        sim, client, server, channel, model = make_world()
        channel.go_down()
        process = offload(sim, client, model, reply_timeout=0.5, retries=2)
        assert process.ok is False
        assert sim.metrics.value(
            "client_offload_failures_total", client="client"
        ) == 1
        assert sim.metrics.value(
            "client_reply_timeouts_total", client="client"
        ) == 3
        assert server.executions == 0
