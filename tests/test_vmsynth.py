"""Tests for the VM-synthesis substrate and on-demand installation."""

import pytest

from repro.core import protocol
from repro.core.client import ClientAgent, OffloadError
from repro.core.server import EdgeServer
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import Channel, NetemProfile
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.vmsynth import (
    DiskImage,
    SoftwareComponent,
    apply_delta,
    build_overlay,
    delta_chunks,
    estimate_installation,
    model_component,
    offloading_stack,
)
from repro.vmsynth.image import ImageMismatchError
from repro.vmsynth.synthesis import deliver_overlay


class TestComponents:
    def test_paper_component_sizes(self):
        stack = offloading_stack()
        by_name = {component.name: component for component in stack}
        assert by_name["webkit-browser"].raw_bytes == 45_000_000
        assert by_name["support-libraries"].raw_bytes == 54_000_000
        assert by_name["offloading-server"].raw_bytes == 1_000_000

    def test_binaries_compress_models_do_not(self):
        stack = offloading_stack()
        model = model_component(smallnet())
        for component in stack:
            assert component.compressed_bytes < 0.5 * component.raw_bytes
        assert model.compressed_bytes > 0.9 * model.raw_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftwareComponent("bad", 0, 0.5)
        with pytest.raises(ValueError):
            SoftwareComponent("bad", 100, 0.0)


class TestDiskImage:
    def test_synthetic_deterministic(self):
        a = DiskImage.synthetic("img", 5_000_000, seed="s")
        b = DiskImage.synthetic("img", 5_000_000, seed="s")
        assert a.chunks == b.chunks
        assert a.fingerprint() == b.fingerprint()

    def test_install_appends_chunks(self):
        base = DiskImage.ubuntu_base(10_000_000)
        custom = base.with_installed(offloading_stack())
        assert len(custom.chunks) > len(base.chunks)
        # base content untouched
        assert all(custom.chunks[i] == c for i, c in base.chunks.items())

    def test_delta_and_apply_roundtrip(self):
        base = DiskImage.ubuntu_base(10_000_000)
        custom = base.with_installed(offloading_stack())
        delta = delta_chunks(base, custom)
        rebuilt = apply_delta(base, delta, expected_fingerprint=custom.fingerprint())
        assert rebuilt.chunks == custom.chunks

    def test_apply_to_wrong_base_detected(self):
        base = DiskImage.ubuntu_base(10_000_000)
        other = DiskImage.synthetic("debian", 10_000_000, seed="other")
        custom = base.with_installed(offloading_stack())
        delta = delta_chunks(base, custom)
        with pytest.raises(ImageMismatchError):
            apply_delta(other, delta, expected_fingerprint=custom.fingerprint())

    def test_delta_only_contains_changes(self):
        base = DiskImage.ubuntu_base(10_000_000)
        custom = base.with_installed([offloading_stack()[2]])  # 1 MB program
        delta = delta_chunks(base, custom)
        assert 1 <= len(delta) <= 2


class TestOverlay:
    def test_paper_overlay_sizes(self):
        """The headline Table 1 numbers: 65 MB and 82 MB overlays."""
        from repro.eval.scenarios import build_paper_model

        base = DiskImage.ubuntu_base()
        googlenet_overlay = build_overlay(base, [build_paper_model("googlenet")])
        agenet_overlay = build_overlay(base, [build_paper_model("agenet")])
        assert googlenet_overlay.size_mb == pytest.approx(65.0, rel=0.05)
        assert agenet_overlay.size_mb == pytest.approx(82.0, rel=0.05)

    def test_synthesis_time_in_paper_band(self):
        from repro.eval.calibration import paper_link
        from repro.eval.scenarios import build_paper_model

        base = DiskImage.ubuntu_base()
        overlay = build_overlay(base, [build_paper_model("googlenet")])
        estimate = estimate_installation(overlay, paper_link())
        assert 17.0 < estimate.total_seconds < 22.0
        overlay_big = build_overlay(base, [build_paper_model("agenet")])
        estimate_big = estimate_installation(overlay_big, paper_link())
        assert 22.0 < estimate_big.total_seconds < 27.0

    def test_overlay_without_models(self):
        base = DiskImage.ubuntu_base()
        overlay = build_overlay(base, [])
        assert overlay.bundled_models == []
        assert overlay.size_mb == pytest.approx(100 * 0.374, rel=0.02)

    def test_overlay_delta_matches_target(self):
        base = DiskImage.ubuntu_base()
        overlay = build_overlay(base, [smallnet()])
        rebuilt = apply_delta(
            base, overlay.delta, expected_fingerprint=overlay.target_fingerprint
        )
        assert rebuilt.fingerprint() == overlay.target_fingerprint


class TestOnDemandInstallation:
    """Paper §III.B.3: install the offloading system at runtime, then offload."""

    def _world(self):
        sim = Simulator()
        channel = Channel(sim, "client", "edge", NetemProfile.wifi_30mbps())
        server = EdgeServer(
            sim, Device(sim, edge_server_x86()), name="edge", installed=False
        )
        server.serve(channel.end_b)
        client = ClientAgent(sim, Device(sim, odroid_xu4_client()), channel.end_a)
        return sim, channel, server, client

    def test_overlay_installs_system(self):
        sim, channel, server, _client = self._world()
        base = DiskImage.ubuntu_base()
        overlay = build_overlay(base, [smallnet()])
        process = sim.spawn(deliver_overlay(channel.end_a, overlay))
        sim.run()
        assert process.ok
        assert server.installed
        assert server.store.has_complete(smallnet().model_id)

    def test_install_time_includes_transfer_and_synthesis(self):
        sim, channel, server, _client = self._world()
        base = DiskImage.ubuntu_base()
        overlay = build_overlay(base, [smallnet()])
        estimate = estimate_installation(overlay, channel.link_ab.profile)
        process = sim.spawn(deliver_overlay(channel.end_a, overlay))
        sim.run()
        ready_at = process.value
        assert ready_at == pytest.approx(estimate.total_seconds, rel=0.05)

    def test_offload_works_after_installation(self):
        from repro.core.snapshot import CaptureOptions
        from repro.nn.cost import network_costs
        from repro.web.app import make_inference_app
        from repro.web.values import TypedArray

        sim, channel, server, client = self._world()
        model = smallnet()
        base = DiskImage.ubuntu_base()
        overlay = build_overlay(base, [model])
        install = sim.spawn(deliver_overlay(channel.end_a, overlay))
        sim.run_until(lambda: install.triggered)

        client.capture_options = CaptureOptions(include_canvas_pixels=True)
        client.start_app(make_inference_app(model), presend=False)
        client.runtime.globals["pending_pixels"] = TypedArray(
            SeededRng(12, "px").uniform_array((3, 32, 32), 0, 255)
        )
        client.runtime.dispatch("click", "load_btn")
        client.mark_offload_point("click", "infer_btn")
        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        offload = sim.spawn(
            client.offload(event, server_costs=network_costs(model.network))
        )
        sim.run()
        assert offload.ok
        # The model came bundled in the overlay: nothing rode along.
        assert offload.value.delivery_bytes == 0
        assert "label" in client.runtime.document.get("result").text_content
