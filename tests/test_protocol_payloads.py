"""Size accounting of protocol payloads, presets and small helpers."""

import pytest

from repro.core import protocol
from repro.core.snapshot import CaptureOptions, capture_snapshot
from repro.core.snapshot.wire import framing_overhead
from repro.devices.profiles import PRESETS, DeviceProfile, register_preset
from repro.netsim.message import payload_size
from repro.netsim.topology import Host
from repro.nn.zoo import smallnet
from repro.sim import SeededRng
from repro.web import WebRuntime
from repro.web.app import make_inference_app
from repro.web.events import Event
from repro.web.values import TypedArray


class TestPayloadSizing:
    def test_model_object_payload_is_control_sized(self):
        model = smallnet()
        payload = protocol.ModelObjectPayload(model.model_id, model)
        # The handle is bookkeeping: its bytes were the MODEL_FILE messages.
        assert payload.size_bytes == protocol.CONTROL_BYTES
        assert payload_size(payload) == protocol.CONTROL_BYTES

    def test_capability_and_ack_are_tiny(self):
        assert protocol.CapabilityPayload(True, "edge").size_bytes <= 128
        assert payload_size(protocol.ack_payload("m:1")) < 64

    def test_error_payload_scales_with_reason(self):
        short = protocol.ErrorPayload("no")
        long = protocol.ErrorPayload("x" * 500)
        assert long.size_bytes - short.size_bytes == 498

    def test_result_payload_includes_fingerprint(self):
        from repro.core.snapshot import fingerprint_runtime

        model = smallnet()
        runtime = WebRuntime()
        runtime.load_app(make_inference_app(model))
        fingerprint = fingerprint_runtime(runtime)

        class StubDelta:
            size_bytes = 100

        with_fp = protocol.ResultPayload(StubDelta(), fingerprint=fingerprint)
        without_fp = protocol.ResultPayload(StubDelta())
        assert with_fp.size_bytes - without_fp.size_bytes == fingerprint.size_bytes
        assert fingerprint.size_bytes > 100


class TestWireOverhead:
    def test_framing_overhead_is_small_and_positive(self):
        model = smallnet()
        runtime = WebRuntime()
        runtime.load_app(make_inference_app(model))
        runtime.globals["pending_pixels"] = TypedArray(
            SeededRng(0, "px").uniform_array((3, 32, 32), 0, 255)
        )
        runtime.dispatch("click", "load_btn")
        snapshot = capture_snapshot(
            runtime,
            Event("click", "infer_btn"),
            CaptureOptions(include_canvas_pixels=True),
        )
        overhead = framing_overhead(snapshot)
        assert 0 < overhead < 2048


class TestProfilesAndHosts:
    def test_paper_presets_registered(self):
        assert "odroid-xu4" in PRESETS
        assert "edge-x86" in PRESETS
        assert "edge-x86-80x" in PRESETS

    def test_register_preset_roundtrip(self):
        profile = DeviceProfile(name="test-box", default_gflops=1.0)
        register_preset(profile)
        assert PRESETS["test-box"] is profile

    def test_host_role_validated(self):
        Host("ok", role="edge")
        with pytest.raises(ValueError):
            Host("bad", role="mainframe")

    def test_host_tags(self):
        host = Host("edge-1", role="edge", tags={"zone": "a"})
        assert host.tags["zone"] == "a"
