"""Closure reconstruction across snapshots (the paper's reference [11])."""

import pytest

from repro.core.snapshot import CaptureOptions, capture_snapshot, restore_snapshot
from repro.web import WebRuntime
from repro.web.app import WebApp
from repro.web.events import Event
from repro.web.scripts import ScriptError
from repro.web.values import JSArray, JSClosure, deep_equal

CLOSURE_APP_SCRIPT = '''
def make_counter(ctx):
    ctx.globals["counter"] = ctx.make_closure("step", count=0, by=1)

def step(ctx, env):
    env["count"] = env["count"] + env["by"]
    return env["count"]

def on_tick(ctx):
    value = ctx.call(ctx.globals["counter"])
    ctx.document.get("result").set_text("count " + str(value))
'''


def make_app():
    return WebApp(
        name="closure-app",
        body_spec=[
            {"tag": "button", "id": "tick"},
            {"tag": "div", "id": "result"},
        ],
        script=CLOSURE_APP_SCRIPT,
        listeners=[("tick", "click", "on_tick")],
        onload="make_counter",
    )


class TestClosureValues:
    def test_closure_requires_function_name(self):
        with pytest.raises(ValueError):
            JSClosure("")

    def test_make_closure_validates_function(self):
        runtime = WebRuntime()
        runtime.load_app(make_app())
        from repro.web.scripts import ScriptContext

        context = ScriptContext(runtime)
        with pytest.raises(ScriptError):
            context.make_closure("ghost_function")

    def test_closure_call_mutates_env(self):
        runtime = WebRuntime()
        runtime.load_app(make_app())
        runtime.dispatch("click", "tick")
        runtime.dispatch("click", "tick")
        assert runtime.globals["counter"].env["count"] == 2
        assert runtime.document.get("result").text_content == "count 2"

    def test_call_unknown_closure_function(self):
        runtime = WebRuntime()
        runtime.load_app(make_app())
        with pytest.raises(ScriptError):
            runtime.call_closure(JSClosure("nowhere"))

    def test_deep_equal_on_closures(self):
        a = JSClosure("f", {"x": 1})
        b = JSClosure("f", {"x": 1})
        c = JSClosure("f", {"x": 2})
        d = JSClosure("g", {"x": 1})
        assert deep_equal(a, b)
        assert not deep_equal(a, c)
        assert not deep_equal(a, d)


class TestClosureSnapshots:
    def test_closure_state_survives_migration(self):
        client = WebRuntime("client")
        client.load_app(make_app())
        client.dispatch("click", "tick")  # count = 1
        snapshot = capture_snapshot(
            client, Event("click", "tick"), CaptureOptions(live_only=False)
        )
        server = WebRuntime("server")
        report = restore_snapshot(snapshot, server)
        # The restored closure continues from the migrated count.
        server.run_event(report.pending_event)
        assert server.globals["counter"].env["count"] == 2
        assert server.document.get("result").text_content == "count 2"

    def test_closure_env_aliasing_preserved(self):
        client = WebRuntime("client")
        client.load_app(make_app())
        shared = JSArray([1, 2])
        client.globals["counter"].env["log"] = shared
        client.globals["shared_log"] = shared
        snapshot = capture_snapshot(client, None, CaptureOptions(live_only=False))
        server = WebRuntime("server")
        restore_snapshot(snapshot, server)
        assert server.globals["counter"].env["log"] is server.globals["shared_log"]

    def test_closure_cycle_through_env(self):
        client = WebRuntime("client")
        client.load_app(make_app())
        closure = client.globals["counter"]
        closure.env["self"] = closure  # closure capturing itself
        snapshot = capture_snapshot(client, None, CaptureOptions(live_only=False))
        server = WebRuntime("server")
        restore_snapshot(snapshot, server)
        restored = server.globals["counter"]
        assert restored.env["self"] is restored

    def test_closure_in_delta_snapshot(self):
        from repro.core.snapshot import capture_delta, fingerprint_runtime

        client = WebRuntime("client")
        client.load_app(make_app())
        baseline = fingerprint_runtime(client)
        client.dispatch("click", "tick")  # env mutated -> closure changed
        delta = capture_delta(client, baseline)
        fresh = WebRuntime("fresh")
        fresh.load_app(make_app())
        restore_snapshot(delta, fresh)
        assert fresh.globals["counter"].env["count"] == 1
