"""Tests for network building, splitting and offload-point enumeration."""

import numpy as np
import pytest

from repro.nn.cost import (
    costs_for_range,
    network_costs,
    spine_costs,
    total_flops,
)
from repro.nn.layers import ConvLayer, FCLayer, InputLayer, PoolLayer, ReLULayer
from repro.nn.network import Network
from repro.nn.zoo import smallnet, tinynet
from repro.nn.zoo.smallnet import smallnet_network
from repro.sim import SeededRng


@pytest.fixture
def net():
    return smallnet().network


@pytest.fixture
def image():
    return SeededRng(5, "img").uniform_array((3, 32, 32), 0, 255)


class TestBuild:
    def test_build_binds_shapes(self, net):
        assert net.built
        assert net.output_shape == (10,)

    def test_unbuilt_network_refuses_forward(self):
        network = smallnet_network()
        with pytest.raises(RuntimeError):
            network.forward(np.zeros((3, 32, 32), dtype=np.float32))

    def test_missing_input_layer_needs_explicit_shape(self):
        network = Network("headless", [ConvLayer("c", 2, kernel=3)])
        with pytest.raises(ValueError):
            network.build()
        network.build(input_shape=(3, 8, 8))
        assert network.output_shape == (2, 6, 6)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            Network("empty", [])

    def test_deterministic_builds_same_seed(self, image):
        a = smallnet(seed=3)
        b = smallnet(seed=3)
        assert np.array_equal(a.inference(image), b.inference(image))

    def test_different_seeds_differ(self, image):
        a = smallnet(seed=1)
        b = smallnet(seed=2)
        assert not np.array_equal(a.inference(image), b.inference(image))


class TestForward:
    def test_forward_range_composes(self, net, image):
        mid = len(net.layers) // 2
        partial = net.forward_range(image, 0, mid)
        rest = net.forward_range(partial, mid + 1, len(net.layers) - 1)
        assert np.allclose(rest, net.forward(image))

    def test_forward_with_activations_matches(self, net, image):
        activations = net.forward_with_activations(image)
        assert len(activations) == len(net.layers)
        assert np.allclose(activations[-1], net.forward(image))

    def test_invalid_range_rejected(self, net, image):
        with pytest.raises(IndexError):
            net.forward_range(image, 3, 2)
        with pytest.raises(IndexError):
            net.forward_range(image, 0, len(net.layers))


class TestSplit:
    def test_split_preserves_inference(self, net, image):
        full = net.forward(image)
        for index in range(len(net.layers) - 1):
            halves = net.split(index)
            assert np.allclose(halves.forward(image), full, atol=1e-5), (
                f"split at {index} changed the result"
            )

    def test_split_shares_parameters(self, net):
        halves = net.split(1)
        assert halves.front.layers[1] is net.layers[1]

    def test_split_index_bounds(self, net):
        with pytest.raises(IndexError):
            net.split(len(net.layers) - 1)  # rear part would be empty
        with pytest.raises(IndexError):
            net.split(-1)

    def test_feature_shape_reported(self, net):
        point = net.point_by_label("1st_pool")
        halves = net.split(point.index)
        assert halves.feature_shape == net.layers[point.index].out_shape

    def test_rear_network_input_shape(self, net):
        halves = net.split(3)
        assert halves.rear.input_shape == net.layers[3].out_shape


class TestOffloadPoints:
    def test_labels_follow_fig8_convention(self, net):
        labels = [point.label for point in net.offload_points()]
        assert labels[0] == "input"
        assert "1st_conv" in labels
        assert "1st_pool" in labels
        assert "2nd_conv" in labels
        assert "2nd_pool" in labels

    def test_last_layer_not_an_offload_point(self, net):
        points = net.offload_points()
        assert points[-1].index == len(net.layers) - 2

    def test_point_by_label_roundtrip(self, net):
        point = net.point_by_label("1st_conv")
        assert net.layers[point.index].kind == "conv"

    def test_unknown_label_raises(self, net):
        with pytest.raises(KeyError):
            net.point_by_label("42nd_conv")

    def test_non_conv_pool_points_use_layer_names(self, net):
        labels = {point.label for point in net.offload_points()}
        assert "norm1" in labels  # the LRN layer is addressable by name


class TestCosts:
    def test_total_flops_positive_and_additive(self, net):
        costs = network_costs(net)
        assert total_flops(net) == pytest.approx(sum(c.flops for c in costs))
        assert total_flops(net) > 0

    def test_spine_costs_align_with_layers(self, net):
        points = spine_costs(net)
        assert len(points) == len(net.layers)
        assert [p.name for p in points] == [layer.name for layer in net.layers]

    def test_costs_for_range_partition(self, net):
        mid = 4
        front = costs_for_range(net, 0, mid)
        rear = costs_for_range(net, mid + 1, len(net.layers) - 1)
        assert sum(c.flops for c in front) + sum(c.flops for c in rear) == (
            pytest.approx(total_flops(net))
        )

    def test_feature_bytes_shrink_after_pool(self, net):
        points = spine_costs(net)
        by_name = {p.name: p for p in points}
        assert by_name["pool1"].feature_text_bytes < by_name["conv1"].feature_text_bytes

    def test_conv_grows_feature_bytes(self, net):
        points = spine_costs(net)
        by_name = {p.name: p for p in points}
        # conv1 has 8 filters over 3 input channels at the same resolution.
        assert by_name["conv1"].feature_text_bytes > by_name["input"].feature_text_bytes

    def test_unbuilt_network_costing_rejected(self):
        with pytest.raises(RuntimeError):
            network_costs(smallnet_network())

    def test_tinynet_costs(self):
        net = tinynet().network
        kinds = {c.kind for c in network_costs(net)}
        assert kinds == {"input", "conv", "relu", "pool", "fc", "softmax"}
