"""Tests for Chrome-trace export."""

import json
from pathlib import Path

import pytest

from repro.eval.scenarios import Testbed
from repro.eval.traces import (
    recorder_to_trace,
    session_to_events,
    sessions_to_trace,
    write_chrome_trace,
    write_span_trace,
)


@pytest.fixture(scope="module")
def result():
    return Testbed().run_offload("smallnet", wait_for_ack=True)


class TestTraceExport:
    def test_events_cover_all_nonzero_phases(self, result):
        events = session_to_events(result)
        spans = [event for event in events if event["ph"] == "X"]
        phase_seconds = {
            key: value for key, value in result.phases.as_dict().items() if value > 0
        }
        assert {span["cat"] for span in spans} == set(phase_seconds)

    def test_span_durations_match_breakdown(self, result):
        spans = [e for e in session_to_events(result) if e["ph"] == "X"]
        total_us = sum(span["dur"] for span in spans)
        assert total_us == pytest.approx(result.total_seconds * 1e6, rel=1e-3)

    def test_spans_sequential_non_overlapping(self, result):
        spans = sorted(
            (e for e in session_to_events(result) if e["ph"] == "X"),
            key=lambda e: e["ts"],
        )
        for earlier, later in zip(spans, spans[1:]):
            assert later["ts"] >= earlier["ts"] + earlier["dur"] - 1e-3

    def test_metadata_names_tracks(self, result):
        events = session_to_events(result)
        thread_names = {
            event["args"]["name"]
            for event in events
            if event["name"] == "thread_name"
        }
        assert thread_names == {"client", "network", "server"}

    def test_multi_session_document(self, result):
        other = Testbed().run_offload_partial("smallnet", "1st_pool")
        document = sessions_to_trace([result, other])
        pids = {event["pid"] for event in document["traceEvents"]}
        assert pids == {1, 2}

    def test_write_valid_json(self, tmp_path, result):
        path = write_chrome_trace(str(tmp_path / "trace.json"), [result])
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert "traceEvents" in document
        assert any(event["ph"] == "X" for event in document["traceEvents"])


class TestGoldenTrace:
    """The exporter's exact output is locked by a checked-in fixture.

    Any change to span naming, track assignment, timestamp math or JSON
    layout shows up as a diff against
    ``tests/fixtures/chrome_trace_smallnet_offload.json`` — regenerate it
    deliberately with ``write_chrome_trace`` if the change is intended.
    """

    FIXTURE = Path(__file__).parent / "fixtures" / "chrome_trace_smallnet_offload.json"

    def test_trace_matches_checked_in_fixture(self, result):
        with open(self.FIXTURE, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert sessions_to_trace([result]) == golden

    def test_fixture_is_well_formed(self):
        with open(self.FIXTURE, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert golden["displayTimeUnit"] == "ms"
        spans = [e for e in golden["traceEvents"] if e["ph"] == "X"]
        assert spans == sorted(spans, key=lambda e: e["ts"])
        tids = {e["tid"] for e in spans}
        named = {e["tid"] for e in golden["traceEvents"] if e["name"] == "thread_name"}
        assert tids <= named

    def test_recorder_trace_agrees_with_session_trace(self):
        testbed = Testbed()
        result = testbed.run_offload("smallnet", wait_for_ack=True)
        document = recorder_to_trace(testbed.sim.spans)
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        phase_spans = [e for e in spans if e["cat"] == "session-phase"]
        total_us = sum(e["dur"] for e in phase_spans)
        assert total_us == pytest.approx(result.total_seconds * 1e6, rel=1e-3)

    def test_write_span_trace_round_trips(self, tmp_path):
        testbed = Testbed()
        testbed.run_offload("smallnet", wait_for_ack=True)
        path = write_span_trace(str(tmp_path / "spans.json"), testbed.sim.spans)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert any(e["ph"] == "X" for e in document["traceEvents"])
