"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9000"])

    def test_fig6_model_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--models", "resnet"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.bandwidth == 30.0
        assert "googlenet" in args.models


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "64x56x56" in out

    def test_fig6_smallnet_runs(self, capsys):
        # smallnet violates the paper's DNN-scale shape claims (offloading
        # a tiny net does not pay), so the CLI must report violations.
        code = main(["fig6", "--models", "smallnet"])
        out = capsys.readouterr()
        assert "smallnet" in out.out
        assert code == 1
        assert "SHAPE VIOLATIONS" in out.err

    def test_fig6_agenet_holds(self, capsys):
        assert main(["fig6", "--models", "agenet"]) == 0
        assert "all shape claims hold" in capsys.readouterr().out

    def test_fig8_with_max_points(self, capsys):
        # input / 1st_conv / 1st_pool suffice for all Fig. 8 claims.
        assert main(["fig8", "--models", "agenet", "--max-points", "3"]) == 0
        out = capsys.readouterr().out
        assert "1st_conv" in out
        assert "2nd_conv" not in out

    def test_table1_agenet(self, capsys):
        assert main(["table1", "--models", "agenet"]) == 0
        assert "VM synthesis" in capsys.readouterr().out

    def test_ablation_partition(self, capsys):
        assert main(["ablation", "partition"]) == 0
        assert "1st_pool" in capsys.readouterr().out

    def test_ablation_contention(self, capsys):
        assert main(["ablation", "contention"]) == 0
        assert "clients" in capsys.readouterr().out

    def test_ablation_quantization(self, capsys):
        assert main(["ablation", "quantization"]) == 0
        assert "agreement" in capsys.readouterr().out

    def test_ablation_placement(self, capsys):
        assert main(["ablation", "placement"]) == 0
        out = capsys.readouterr().out
        assert "edge" in out and "cloud" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "correct: True" in out
