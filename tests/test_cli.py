"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure9000"])

    def test_fig6_model_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--models", "resnet"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.bandwidth == 30.0
        assert "googlenet" in args.models


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "64x56x56" in out

    def test_fig6_smallnet_runs(self, capsys):
        # smallnet violates the paper's DNN-scale shape claims (offloading
        # a tiny net does not pay), so the CLI must report violations.
        code = main(["fig6", "--models", "smallnet"])
        out = capsys.readouterr()
        assert "smallnet" in out.out
        assert code == 1
        assert "SHAPE VIOLATIONS" in out.err

    def test_fig6_agenet_holds(self, capsys):
        assert main(["fig6", "--models", "agenet"]) == 0
        assert "all shape claims hold" in capsys.readouterr().out

    def test_fig8_with_max_points(self, capsys):
        # input / 1st_conv / 1st_pool suffice for all Fig. 8 claims.
        assert main(["fig8", "--models", "agenet", "--max-points", "3"]) == 0
        out = capsys.readouterr().out
        assert "1st_conv" in out
        assert "2nd_conv" not in out

    def test_table1_agenet(self, capsys):
        assert main(["table1", "--models", "agenet"]) == 0
        assert "VM synthesis" in capsys.readouterr().out

    def test_ablation_partition(self, capsys):
        assert main(["ablation", "partition"]) == 0
        assert "1st_pool" in capsys.readouterr().out

    def test_ablation_contention(self, capsys):
        assert main(["ablation", "contention"]) == 0
        assert "clients" in capsys.readouterr().out

    def test_ablation_quantization(self, capsys):
        assert main(["ablation", "quantization"]) == 0
        assert "agreement" in capsys.readouterr().out

    def test_ablation_placement(self, capsys):
        assert main(["ablation", "placement"]) == 0
        out = capsys.readouterr().out
        assert "edge" in out and "cloud" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "correct: True" in out


class TestMetricsCli:
    def test_metrics_prometheus_output_parses(self, capsys):
        from repro.obs import parse_prometheus_text

        assert main(["metrics"]) == 0
        parsed = parse_prometheus_text(capsys.readouterr().out)
        assert parsed["types"]["server_executions_total"] == "counter"
        key = ("server_executions_total", (("server", "edge-1"),))
        assert parsed["samples"][key] == 1

    def test_metrics_json_format(self, capsys):
        import json

        assert main(["metrics", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["metrics"]["server_executions_total"]["kind"] == "counter"

    def test_metrics_trace_out(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        assert main(["metrics", "--trace-out", str(trace)]) == 0
        with open(trace, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_metrics_out_writes_prometheus_file(self, tmp_path, capsys):
        from repro.obs import parse_prometheus_text

        out_file = tmp_path / "telemetry.prom"
        assert main(["fig6", "--models", "agenet", "--metrics-out", str(out_file)]) == 0
        parsed = parse_prometheus_text(out_file.read_text(encoding="utf-8"))
        assert any(
            name == "sessions_total" for name, _ in parsed["samples"]
        )
        assert "metrics written to" in capsys.readouterr().out

    def test_metrics_out_json_extension(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "telemetry.json"
        assert main(["demo", "--metrics-out", str(out_file)]) == 0
        document = json.loads(out_file.read_text(encoding="utf-8"))
        assert "sim_events_dispatched_total" in document["metrics"]
