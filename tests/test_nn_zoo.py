"""Tests pinning the zoo architectures to the paper's reported numbers.

These are the reproduction's anchor facts: Fig. 1's feature dimensions, the
27 / 44 / 44 MB model sizes in Table 1, and the conv-surge / pool-dip
feature sizes behind Fig. 8.
"""

import numpy as np
import pytest

from repro.nn.cost import spine_costs, total_flops
from repro.nn.zoo import agenet, build_model, gendernet, googlenet
from repro.sim import SeededRng


@pytest.fixture(scope="module")
def gnet():
    return googlenet()


@pytest.fixture(scope="module")
def anet():
    return agenet()


class TestGoogLeNetArchitecture:
    def test_fig1_spine_shapes(self, gnet):
        by_name = {p.name: p for p in spine_costs(gnet.network)}
        assert by_name["input"].output_shape == (3, 224, 224)
        assert by_name["conv1_7x7_s2"].output_shape == (64, 112, 112)
        # Fig. 1's "56x56x64" checkpoint.
        assert by_name["pool1_3x3_s2"].output_shape == (64, 56, 56)
        assert by_name["pool2_3x3_s2"].output_shape == (192, 28, 28)
        assert by_name["inception_3a"].output_shape == (256, 28, 28)
        assert by_name["inception_3b"].output_shape == (480, 28, 28)
        assert by_name["pool4_3x3_s2"].output_shape == (832, 7, 7)
        assert by_name["inception_5b"].output_shape == (1024, 7, 7)
        assert by_name["pool5_7x7_s1"].output_shape == (1024, 1, 1)

    def test_classifies_to_1000_labels(self, gnet):
        assert gnet.network.output_shape == (1000,)

    def test_param_count_matches_27mb_model(self, gnet):
        # bvlc GoogLeNet deploy model: ~7.0M params -> ~27 MB file.
        assert gnet.network.param_count == pytest.approx(7.0e6, rel=0.02)
        assert 26.0 < gnet.size_mib < 28.0

    def test_flops_in_known_range(self, gnet):
        # ~1.5 GMACs = ~3 GFLOPs for GoogLeNet inference.
        assert total_flops(gnet.network) == pytest.approx(3.2e9, rel=0.1)

    def test_forward_produces_distribution(self, gnet):
        x = SeededRng(9, "img").uniform_array((3, 224, 224), 0, 255)
        probs = gnet.inference(x)
        assert probs.shape == (1000,)
        assert probs.sum() == pytest.approx(1.0, rel=1e-4)
        assert (probs >= 0).all()

    def test_feature_surge_at_conv_dip_at_pool(self, gnet):
        """The Fig. 8 observation: 14.7 MB at 1st_conv vs 2.9 MB at 1st_pool."""
        by_name = {p.name: p for p in spine_costs(gnet.network)}
        conv_bytes = by_name["conv1_7x7_s2"].feature_text_bytes
        pool_bytes = by_name["pool1_3x3_s2"].feature_text_bytes
        # Absolute sizes within ~25% of the paper's numbers...
        assert conv_bytes / 1e6 == pytest.approx(14.7, rel=0.25)
        assert pool_bytes / 1e6 == pytest.approx(2.9, rel=0.35)
        # ...and the shape claim: pooling shrinks the feature ~4-5x.
        assert 3.5 < conv_bytes / pool_bytes < 5.5

    def test_inception_count(self, gnet):
        inception = [l for l in gnet.network.layers if l.kind == "inception"]
        assert len(inception) == 9


class TestLeviHassnerNets:
    def test_agenet_spine_shapes(self, anet):
        by_name = {p.name: p for p in spine_costs(anet.network)}
        assert by_name["conv1"].output_shape == (96, 56, 56)
        assert by_name["pool1"].output_shape == (96, 28, 28)
        assert by_name["conv2"].output_shape == (256, 28, 28)
        assert by_name["pool2"].output_shape == (256, 14, 14)
        assert by_name["conv3"].output_shape == (384, 14, 14)
        assert by_name["pool3"].output_shape == (384, 7, 7)

    def test_agenet_8_classes_gendernet_2(self, anet):
        assert anet.network.output_shape == (8,)
        assert gendernet().network.output_shape == (2,)

    def test_model_sizes_match_44mb(self, anet):
        # Paper Table 1: AgeNet / GenderNet model = 44 MB.
        assert 42.5 < anet.size_mib < 45.0
        assert 42.5 < gendernet().size_mib < 45.0

    def test_backbones_share_architecture(self, anet):
        gnet = gendernet()
        age_kinds = [l.kind for l in anet.network.layers]
        gender_kinds = [l.kind for l in gnet.network.layers]
        assert age_kinds == gender_kinds

    def test_fc6_dominates_parameters(self, anet):
        fc6 = next(l for l in anet.network.layers if l.name == "fc6")
        assert fc6.param_count > 0.6 * anet.network.param_count

    def test_agenet_forward(self, anet):
        x = SeededRng(10, "img").uniform_array((3, 227, 227), 0, 255)
        probs = anet.inference(x)
        assert probs.sum() == pytest.approx(1.0, rel=1e-4)


class TestBuilders:
    def test_build_model_by_name(self):
        model = build_model("smallnet")
        assert model.name == "smallnet"

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("resnet-9000")

    def test_paper_models_constant(self):
        from repro.nn.zoo import PAPER_MODELS

        assert PAPER_MODELS == ("googlenet", "agenet", "gendernet")

    def test_seeded_builds_reproducible(self):
        a = build_model("tinynet", seed=5)
        b = build_model("tinynet", seed=5)
        x = SeededRng(11, "x").normal_array((1, 8, 8))
        assert np.array_equal(a.inference(x), b.inference(x))
