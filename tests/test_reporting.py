"""Tests for report rendering and calibration constants."""

import pytest

from repro.eval import calibration
from repro.eval.reporting import (
    format_bar_chart,
    format_series,
    format_stacked_bars,
    format_table,
)


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "-" in text

    def test_numeric_right_alignment(self):
        text = format_table(["name", "v"], [["x", 1.0], ["longer", 123.45]])
        lines = text.splitlines()
        assert lines[-1].endswith("123.45")

    def test_title_optional(self):
        with_title = format_table(["a"], [[1]], title="T")
        without = format_table(["a"], [[1]])
        assert with_title.startswith("T\n")
        assert not without.startswith("T")

    def test_mixed_types(self):
        text = format_table(["k", "v"], [["flag", "True"], ["n", 7]])
        assert "flag" in text and "7" in text


class TestBarChart:
    def test_peak_gets_full_width(self):
        text = format_bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert "█" * 10 in lines[0]
        assert "█" * 5 in lines[1]
        assert "█" * 6 not in lines[1]

    def test_values_rendered(self):
        text = format_bar_chart({"x": 2.5})
        assert "2.50s" in text

    def test_custom_unit(self):
        text = format_bar_chart({"x": 1.0}, unit="MB")
        assert "1.00MB" in text

    def test_zero_values_allowed(self):
        text = format_bar_chart({"a": 0.0, "b": 0.0})
        assert "0.00" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart({"a": -1.0})

    def test_title(self):
        assert format_bar_chart({"a": 1.0}, title="T").startswith("T\n")


class TestStackedBarsAndSeries:
    def test_stacked_bars_total(self):
        text = format_stacked_bars({"bar": {"x": 2.0, "y": 2.0}})
        assert "total 4.00s" in text
        assert "50.0%" in text

    def test_stacked_bars_zero_total(self):
        text = format_stacked_bars({"bar": {}})
        assert "total 0.00s" in text

    def test_series_grid(self):
        text = format_series(["p1"], {"a": [1.0], "b": [2.0]})
        assert "p1" in text and "1.00" in text and "2.00" in text


class TestCalibration:
    def test_paper_link_is_30mbps(self):
        link = calibration.paper_link()
        assert link.bandwidth_bps == 30e6
        assert link.latency_s == pytest.approx(0.001)

    def test_partial_point_is_first_pool(self):
        assert calibration.FIG6_PARTIAL_POINT == "1st_pool"

    def test_input_seeds_cover_paper_models(self):
        from repro.nn.zoo import PAPER_MODELS

        assert set(calibration.INPUT_SEEDS) == set(PAPER_MODELS)

    def test_text_bytes_constant_consistent(self):
        from repro.nn.tensor import TEXT_BYTES_PER_VALUE

        assert calibration.FEATURE_TEXT_BYTES_PER_VALUE == TEXT_BYTES_PER_VALUE
