"""Tests for interaction traces and multi-client scenarios."""

import pytest

from repro.eval.workloads import (
    Interaction,
    MultiClientScenario,
    contention_study,
    generate_trace,
)
from repro.sim import SeededRng


class TestTraceGeneration:
    def test_trace_starts_with_image_load(self):
        trace = generate_trace(SeededRng(0, "t"), inferences=4)
        assert trace[0].action == "new_image"

    def test_trace_has_requested_inferences(self):
        trace = generate_trace(SeededRng(1, "t"), inferences=5)
        assert sum(1 for i in trace if i.action == "infer") == 5

    def test_times_monotone(self):
        trace = generate_trace(SeededRng(2, "t"), inferences=6)
        times = [interaction.at_seconds for interaction in trace]
        assert times == sorted(times)

    def test_deterministic_for_seed(self):
        a = generate_trace(SeededRng(3, "t"), inferences=4)
        b = generate_trace(SeededRng(3, "t"), inferences=4)
        assert a == b

    def test_zero_inferences_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(SeededRng(0, "t"), inferences=0)


class TestMultiClient:
    def test_two_clients_all_correct(self):
        report = MultiClientScenario("smallnet", num_clients=2).run()
        assert report.count == 6  # 3 inferences each
        assert report.all_correct

    def test_session_cache_used_after_first_request(self):
        report = MultiClientScenario("smallnet", num_clients=1).run()
        kinds = [record.snapshot_kind for record in report.records]
        assert kinds[0] == "full"
        assert all(kind == "delta" for kind in kinds[1:])

    def test_cache_disabled_all_full(self):
        report = MultiClientScenario(
            "smallnet", num_clients=1, session_cache=False
        ).run()
        assert all(record.snapshot_kind == "full" for record in report.records)

    def test_sessions_isolated_per_client(self):
        scenario = MultiClientScenario("smallnet", num_clients=2)
        scenario.run()
        # One cached browser per (client, app) pair.
        assert len(scenario.server._sessions) == 2

    def test_contention_increases_latency(self):
        reports = contention_study("smallnet", (1, 4))
        assert reports[4].mean_latency > reports[1].mean_latency
        assert reports[4].all_correct

    def test_latency_records_consistent(self):
        report = MultiClientScenario("smallnet", num_clients=2).run()
        for record in report.records:
            assert record.completed_at >= record.issued_at
        assert report.max_latency >= report.mean_latency

    def test_custom_trace_respected(self):
        scenario = MultiClientScenario("smallnet", num_clients=1)
        scenario.set_trace(
            0,
            [
                Interaction(0.0, "new_image"),
                Interaction(1.0, "infer"),
                Interaction(30.0, "infer"),
            ],
        )
        report = scenario.run()
        assert report.count == 2
        assert report.records[1].issued_at == pytest.approx(30.0)
