"""Unit tests for device profiles, the compute model and energy accounting."""

import pytest

from repro.devices import (
    Device,
    DeviceProfile,
    EnergyModel,
    FifoResource,
    edge_server_x86,
    gpu_edge_server,
    odroid_xu4_client,
)
from repro.nn.cost import LayerCost
from repro.sim import Simulator


def make_cost(kind="conv", flops=1e9, name="layer"):
    return LayerCost(
        name=name,
        kind=kind,
        flops=flops,
        params=0,
        output_shape=(1, 1, 1),
        spine_index=0,
    )


@pytest.fixture
def sim():
    return Simulator()


class TestDeviceProfile:
    def test_seconds_for_uses_kind_rate(self):
        profile = DeviceProfile(name="t", gflops_by_kind={"conv": 2.0})
        assert profile.seconds_for("conv", 2e9) == pytest.approx(1.0)

    def test_seconds_for_falls_back_to_default(self):
        profile = DeviceProfile(name="t", default_gflops=0.5)
        assert profile.seconds_for("mystery", 1e9) == pytest.approx(2.0)

    def test_per_layer_overhead_added(self):
        profile = DeviceProfile(
            name="t", gflops_by_kind={"conv": 1.0}, per_layer_overhead_s=0.01
        )
        assert profile.seconds_for("conv", 1e9) == pytest.approx(1.01)

    def test_paper_presets_preserve_client_server_gap(self):
        client = odroid_xu4_client()
        server = edge_server_x86()
        flops = 3.2e9  # ~GoogLeNet
        client_time = client.seconds_for("conv", flops)
        server_time = server.seconds_for("conv", flops)
        assert 5.0 < client_time / server_time < 12.0

    def test_gpu_server_is_80x(self):
        base = edge_server_x86()
        gpu = gpu_edge_server()
        assert gpu.gflops_for("conv") == pytest.approx(80 * base.gflops_for("conv"))


class TestDevice:
    def test_forward_seconds_sums_layers(self, sim):
        device = Device(sim, DeviceProfile(name="t", gflops_by_kind={"conv": 1.0}))
        costs = [make_cost(flops=1e9), make_cost(flops=2e9)]
        assert device.forward_seconds(costs) == pytest.approx(3.0)

    def test_snapshot_costs_scale_with_size(self, sim):
        device = Device(sim, odroid_xu4_client())
        small = device.snapshot_capture_seconds(10_000)
        large = device.snapshot_capture_seconds(10_000_000)
        assert large > small
        # Paper: snapshot overhead for a ~0.1 MB snapshot is negligible.
        assert device.snapshot_capture_seconds(100_000) < 0.05

    def test_execute_occupies_virtual_time(self, sim):
        device = Device(sim, odroid_xu4_client())
        done = device.execute(2.5, label="inference")
        sim.run()
        assert done.ok
        assert sim.now == pytest.approx(2.5)
        assert device.busy_seconds == pytest.approx(2.5)

    def test_execute_serializes_fifo(self, sim):
        device = Device(sim, odroid_xu4_client())
        finish_times = []
        for seconds in (1.0, 2.0):
            device.execute(seconds).add_callback(
                lambda event: finish_times.append(sim.now)
            )
        sim.run()
        assert finish_times == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_negative_work_rejected(self, sim):
        device = Device(sim, odroid_xu4_client())
        with pytest.raises(ValueError):
            device.execute(-1.0)


class TestFifoResource:
    def test_acquire_release_cycle(self, sim):
        resource = FifoResource(sim)
        order = []

        def user(name, hold):
            yield resource.acquire()
            order.append((name, sim.now))
            yield sim.timeout(hold)
            resource.release()

        sim.spawn(user("a", 2.0))
        sim.spawn(user("b", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0)]

    def test_release_idle_raises(self, sim):
        resource = FifoResource(sim)
        with pytest.raises(RuntimeError):
            resource.release()


class TestEnergyModel:
    def test_energy_composition(self):
        model = EnergyModel(compute_w=4.0, radio_w=1.0, idle_w=0.5)
        assert model.energy_joules(compute_s=2.0, radio_s=3.0, idle_s=4.0) == (
            pytest.approx(4.0 * 2 + 1.0 * 3 + 0.5 * 4)
        )

    def test_offloading_can_save_energy(self):
        model = EnergyModel()
        local = model.local_execution_joules(compute_s=20.0)
        offloaded = model.offloaded_joules(
            client_compute_s=0.1, transfer_s=1.0, wait_s=2.5
        )
        assert offloaded < local

    def test_negative_inputs_rejected(self):
        model = EnergyModel()
        with pytest.raises(ValueError):
            model.energy_joules(compute_s=-1.0)
        with pytest.raises(ValueError):
            EnergyModel(compute_w=-1.0)
