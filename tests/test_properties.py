"""Property-based tests (hypothesis) on the core invariants.

The invariants DESIGN.md commits to:

* snapshot heap round-trips preserve structure, aliasing and cycles;
* split inference equals full inference at every split point;
* pooling shrinks features, convolution with many filters grows them;
* the partition optimizer is never worse than any swept candidate;
* overlay delta/apply reconstructs the customized image;
* the DES kernel never runs events out of timestamp order;
* links never deliver messages faster than serialization + latency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.snapshot.codegen import (
    HeapCodegen,
    parse_tensor_text,
    render_tensor_text,
)
from repro.nn.layers import ConvLayer, FCLayer, InputLayer, PoolLayer, ReLULayer, SoftmaxLayer
from repro.nn.network import Network
from repro.sim import SeededRng, Simulator
from repro.web.values import UNDEFINED, JSArray, JSObject, TypedArray, deep_equal


# -- strategies -----------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.just(UNDEFINED),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)


def js_values(depth=3):
    if depth == 0:
        return scalars
    return st.one_of(
        scalars,
        st.lists(js_values(depth - 1), max_size=4).map(JSArray),
        st.dictionaries(
            st.text(min_size=1, max_size=8), js_values(depth - 1), max_size=4
        ).map(lambda d: JSObject(**d)),
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=8
        ).map(lambda vals: TypedArray(np.array(vals, dtype=np.float32))),
    )


def roundtrip(value):
    codegen = HeapCodegen()
    expr = codegen.root_expression(value)
    namespace = {
        "__builtins__": {},
        "JSObject": JSObject,
        "JSArray": JSArray,
        "TA": lambda text, shape: TypedArray(parse_tensor_text(text, shape)),
        "NP": lambda text, shape: parse_tensor_text(text, shape),
        "UNDEFINED": UNDEFINED,
        "ATTACH": codegen.attachments,
    }
    exec("\n".join(codegen.lines + [f"__r__ = {expr}"]), namespace)
    return namespace["__r__"]


class TestSnapshotHeapProperties:
    @given(js_values())
    @settings(max_examples=120, deadline=None)
    def test_codegen_roundtrip_structural_equality(self, value):
        assert deep_equal(roundtrip(value), value)

    @given(js_values(depth=2))
    @settings(max_examples=60, deadline=None)
    def test_aliasing_preserved_for_arbitrary_shared_value(self, shared):
        root = JSObject(a=shared, b=shared)
        restored = roundtrip(root)
        if not (
            restored["a"] is restored["b"]
            or (restored["a"] is None or isinstance(restored["a"], (bool, int, float, str)))
            or restored["a"] is UNDEFINED
        ):
            pytest.fail("shared heap value lost its aliasing")

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_tensor_text_roundtrip_is_exact(self, values):
        arr = np.array(values, dtype=np.float32)
        assert np.array_equal(parse_tensor_text(render_tensor_text(arr), arr.shape), arr)


# -- network properties -------------------------------------------------------------


def random_chain_network(seed: int, depth: int) -> Network:
    """A random but valid conv/pool/relu chain ending in fc+softmax."""
    rng = SeededRng(seed, "propnet")
    layers = [InputLayer((2, 16, 16))]
    size = 16
    for index in range(depth):
        kind = rng.choice(["conv", "pool", "relu"])
        if kind == "conv":
            layers.append(
                ConvLayer(f"conv{index}", rng.randint(1, 6), kernel=3, pad=1)
            )
        elif kind == "pool" and size >= 4:
            layers.append(PoolLayer(f"pool{index}", kernel=2, stride=2))
            size //= 2
        else:
            layers.append(ReLULayer(f"relu{index}"))
    layers.append(FCLayer("fc", 5))
    layers.append(SoftmaxLayer("prob"))
    return Network(f"prop-{seed}", layers).build(SeededRng(seed, "build"))


class TestNetworkProperties:
    @given(seed=st.integers(0, 50), depth=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_split_equals_full_at_every_point(self, seed, depth):
        net = random_chain_network(seed, depth)
        x = SeededRng(seed, "img").uniform_array((2, 16, 16), 0, 255)
        full = net.forward(x)
        for index in range(len(net.layers) - 1):
            halves = net.split(index)
            assert np.allclose(halves.forward(x), full, atol=1e-4)

    @given(
        channels=st.integers(1, 8),
        size=st.integers(4, 16),
        kernel=st.sampled_from([2, 3]),
    )
    @settings(max_examples=40, deadline=None)
    def test_pooling_always_shrinks_elements(self, channels, size, kernel):
        layer = PoolLayer("p", kernel=kernel, stride=kernel)
        layer.build((channels, size, size), SeededRng(0, "p"))
        assert layer.output_elements < channels * size * size

    @given(
        in_channels=st.integers(1, 4),
        filters=st.integers(8, 32),
        size=st.integers(4, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_conv_with_many_filters_grows_elements(self, in_channels, filters, size):
        if filters <= in_channels:
            return
        layer = ConvLayer("c", filters, kernel=3, pad=1)
        layer.build((in_channels, size, size), SeededRng(0, "c"))
        assert layer.output_elements > in_channels * size * size

    @given(seed=st.integers(0, 30), depth=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_flops_partition_sums_to_total(self, seed, depth):
        from repro.nn.cost import costs_for_range, total_flops

        net = random_chain_network(seed, depth)
        mid = len(net.layers) // 2
        front = sum(c.flops for c in costs_for_range(net, 0, mid))
        rear = sum(
            c.flops for c in costs_for_range(net, mid + 1, len(net.layers) - 1)
        )
        assert front + rear == pytest.approx(total_flops(net))


class TestOptimizerProperties:
    @given(
        bandwidth_mbps=st.floats(min_value=0.5, max_value=1000),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=20, deadline=None)
    def test_choice_never_worse_than_candidates(self, bandwidth_mbps, seed):
        from repro.core.partition import PartitionOptimizer
        from repro.devices import edge_server_x86, odroid_xu4_client
        from repro.devices.predictor import fit_predictor_for
        from repro.netsim import NetemProfile
        from repro.nn.cost import network_costs

        net = random_chain_network(seed, 4)
        costs = network_costs(net)
        optimizer = PartitionOptimizer(
            fit_predictor_for(odroid_xu4_client(), costs, noise=0.0),
            fit_predictor_for(edge_server_x86(), costs, noise=0.0),
            odroid_xu4_client(),
            edge_server_x86(),
        )
        link = NetemProfile(bandwidth_bps=bandwidth_mbps * 1e6)
        choice = optimizer.choose(net, link, denature=False)
        for estimate in choice.estimates:
            assert choice.best.total_seconds <= estimate.total_seconds + 1e-9


class TestKernelProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False), min_size=1, max_size=40
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_timestamp_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        sizes=st.lists(st.integers(1, 10_000_000), min_size=1, max_size=10),
        bandwidth=st.floats(min_value=1e5, max_value=1e9),
    )
    @settings(max_examples=40, deadline=None)
    def test_link_fifo_and_minimum_latency(self, sizes, bandwidth):
        from repro.netsim.link import Link, NetemProfile
        from repro.netsim.message import Message

        sim = Simulator()
        profile = NetemProfile(bandwidth_bps=bandwidth, latency_s=0.01)
        link = Link(sim, profile)
        deliveries = []
        for index, size in enumerate(sizes):
            link.transmit(
                Message(kind=f"M{index}", size_bytes=size),
                lambda msg: deliveries.append((msg.kind, sim.now)),
            )
        sim.run()
        # FIFO: delivery order matches send order.
        assert [kind for kind, _ in deliveries] == [f"M{i}" for i in range(len(sizes))]
        # No message beats serialization + latency.
        serialization = 0.0
        for (kind, at), size in zip(deliveries, sizes):
            serialization += size * 8 / bandwidth
            assert at >= serialization + 0.01 - 1e-9


class TestPrototxtProperties:
    @given(seed=st.integers(0, 40), depth=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_emit_parse_roundtrip_any_chain(self, seed, depth):
        from repro.nn.prototxt import network_from_prototxt, network_to_prototxt

        net = random_chain_network(seed, depth)
        rebuilt = network_from_prototxt(network_to_prototxt(net))
        assert [l.kind for l in rebuilt.layers] == [l.kind for l in net.layers]
        assert rebuilt.param_count == net.param_count
        assert rebuilt.output_shape == net.output_shape


class TestVmSynthProperties:
    @given(
        base_mb=st.integers(1, 50),
        component_mb=st.integers(1, 30),
        seed=st.text(min_size=1, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_delta_apply_reconstructs_custom_image(self, base_mb, component_mb, seed):
        from repro.vmsynth import DiskImage, SoftwareComponent, apply_delta, delta_chunks

        base = DiskImage.synthetic("base", base_mb * 1_000_000, seed=seed)
        component = SoftwareComponent("thing", component_mb * 1_000_000, 0.5)
        custom = base.with_installed([component])
        delta = delta_chunks(base, custom)
        rebuilt = apply_delta(base, delta, expected_fingerprint=custom.fingerprint())
        assert rebuilt.chunks == custom.chunks
        # Delta is no larger than the component's chunk footprint.
        assert len(delta) <= component_mb + 1
