"""Tests for the binary wire formats: snapshots and weight blobs."""

import numpy as np
import pytest

from repro.core.snapshot import CaptureOptions, capture_snapshot, restore_snapshot
from repro.core.snapshot.wire import (
    WireFormatError,
    decode_snapshot,
    encode_snapshot,
)
from repro.nn.caffemodel import (
    WeightsFormatError,
    apply_weights,
    decode_weights,
    encode_weights,
    load_model_files,
    save_model_files,
)
from repro.nn.zoo import smallnet
from repro.sim import SeededRng
from repro.web import WebRuntime
from repro.web.app import make_inference_app
from repro.web.events import Event
from repro.web.values import ImageData, TypedArray


def make_snapshot(with_image=True):
    model = smallnet()
    runtime = WebRuntime("client")
    runtime.load_app(make_inference_app(model))
    pixels = SeededRng(0, "px").uniform_array((3, 32, 32), 0, 255)
    runtime.globals["pending_pixels"] = (
        ImageData(pixels, encoded_bytes=2000) if with_image else TypedArray(pixels)
    )
    runtime.dispatch("click", "load_btn")
    return model, capture_snapshot(
        runtime,
        Event("click", "infer_btn"),
        CaptureOptions(include_canvas_pixels=True),
    )


class TestSnapshotWire:
    def test_roundtrip_bit_exact(self):
        _model, snapshot = make_snapshot()
        decoded = decode_snapshot(encode_snapshot(snapshot))
        assert decoded.program == snapshot.program
        assert decoded.app_name == snapshot.app_name
        assert decoded.pending_event == snapshot.pending_event
        assert decoded.model_refs == snapshot.model_refs
        for index, array in snapshot.attachments.items():
            assert np.array_equal(decoded.attachments[index], array)

    def test_decoded_snapshot_still_restores(self):
        model, snapshot = make_snapshot()
        decoded = decode_snapshot(encode_snapshot(snapshot))
        server = WebRuntime("server")
        server.install_model(model)
        report = restore_snapshot(decoded, server)
        server.run_event(report.pending_event)
        assert "label" in server.document.get("result").text_content

    def test_size_accounting_matches_reality(self):
        """The analytic size model must track the real encoding."""
        _model, snapshot = make_snapshot(with_image=False)  # text pixels
        encoded = len(encode_snapshot(snapshot))
        # Text-serialized tensors live in the program, so the container is
        # just header + lengths + CRC on top of size_bytes.
        assert abs(encoded - snapshot.size_bytes) < 1200

    def test_size_preserved_through_roundtrip(self):
        _model, snapshot = make_snapshot()
        decoded = decode_snapshot(encode_snapshot(snapshot))
        assert decoded.size_bytes == snapshot.size_bytes
        assert decoded.feature_bytes == snapshot.feature_bytes

    def test_corruption_detected(self):
        _model, snapshot = make_snapshot()
        data = bytearray(encode_snapshot(snapshot))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(WireFormatError):
            decode_snapshot(bytes(data))

    def test_truncation_detected(self):
        _model, snapshot = make_snapshot()
        data = encode_snapshot(snapshot)
        with pytest.raises(WireFormatError):
            decode_snapshot(data[: len(data) // 2])

    def test_bad_magic_detected(self):
        _model, snapshot = make_snapshot()
        data = bytearray(encode_snapshot(snapshot))
        data[0:8] = b"NOTSNAP!"
        import struct
        import zlib

        body = bytes(data[:-4])
        data[-4:] = struct.pack("<I", zlib.crc32(body))
        with pytest.raises(WireFormatError):
            decode_snapshot(bytes(data))


class TestWeightsBlob:
    def test_roundtrip_bit_exact(self):
        model = smallnet(seed=5)
        blobs = decode_weights(encode_weights(model.network))
        fresh = smallnet(seed=99)  # different params
        apply_weights(fresh.network, blobs)
        x = SeededRng(1, "x").uniform_array((3, 32, 32), 0, 255)
        assert np.array_equal(fresh.inference(x), model.inference(x))

    def test_inception_blobs_roundtrip(self):
        from repro.nn.zoo import googlenet

        model = googlenet()
        blobs = decode_weights(encode_weights(model.network))
        conv1 = next(l for l in model.network.layers if l.name == "conv1_7x7_s2")
        assert np.array_equal(blobs["conv1_7x7_s2::weight"], conv1.params["weight"])
        assert any(name.startswith("inception_3a::") for name in blobs)

    def test_blob_mismatch_rejected(self):
        model = smallnet()
        blobs = decode_weights(encode_weights(model.network))
        del blobs[next(iter(blobs))]
        with pytest.raises(WeightsFormatError):
            apply_weights(model.network, blobs)

    def test_shape_mismatch_rejected(self):
        model = smallnet()
        blobs = decode_weights(encode_weights(model.network))
        key = "conv1::weight"
        blobs[key] = np.zeros((1, 1, 1, 1), dtype=np.float32)
        with pytest.raises(WeightsFormatError):
            apply_weights(model.network, blobs)

    def test_corruption_detected(self):
        data = bytearray(encode_weights(smallnet().network))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(WeightsFormatError):
            decode_weights(bytes(data))

    def test_file_pair_roundtrip(self, tmp_path):
        model = smallnet(seed=7)
        prototxt_path, weights_path = save_model_files(model, str(tmp_path))
        loaded = load_model_files(prototxt_path, weights_path)
        x = SeededRng(2, "x").uniform_array((3, 32, 32), 0, 255)
        assert np.allclose(loaded.inference(x), model.inference(x), atol=1e-6)

    def test_blob_size_matches_param_count(self):
        model = smallnet()
        encoded = encode_weights(model.network)
        # header + params * 4 bytes + crc: header is small.
        assert abs(len(encoded) - model.network.param_count * 4) < 4096


class TestWireProperties:
    """Property tests: arbitrary captured states survive the wire."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-1000, 1000),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=16),
    )

    @given(
        globals_dict=st.dictionaries(
            st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
            scalars,
            max_size=5,
        ),
        texts=st.lists(st.text(max_size=20), max_size=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_state_roundtrips_through_bytes(self, globals_dict, texts):
        from repro.core.snapshot import CaptureOptions, capture_snapshot

        model = smallnet()
        runtime = WebRuntime("client")
        runtime.load_app(make_inference_app(model))
        runtime.globals.update(globals_dict)
        for index, text in enumerate(texts):
            div = runtime.document.create_element("div", element_id=f"extra{index}")
            runtime.document.body.append_child(div)
            div.append_text(text)
        snapshot = capture_snapshot(
            runtime, Event("click", "infer_btn"), CaptureOptions(live_only=False)
        )
        decoded = decode_snapshot(encode_snapshot(snapshot))
        restored = WebRuntime("server")
        restored.install_model(model)
        restore_snapshot(decoded, restored)
        for name, value in globals_dict.items():
            got = restored.globals[name]
            if isinstance(value, float):
                assert got == pytest.approx(value, rel=1e-6)
            else:
                assert got == value
        for index, text in enumerate(texts):
            assert restored.document.get(f"extra{index}").text_content == text
