"""Tests for the offload policy and the privacy toolkit."""

import numpy as np
import pytest

from repro.core.decisions import OffloadPolicy
from repro.core.privacy import (
    denaturing_score,
    hill_climb_invert,
    inversion_study,
    snapshot_exposes_input,
)
from repro.core.snapshot import CaptureOptions, capture_snapshot
from repro.devices import edge_server_x86, odroid_xu4_client
from repro.devices.predictor import fit_predictor_for
from repro.netsim import NetemProfile
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet, tinynet
from repro.sim import SeededRng
from repro.web import WebRuntime
from repro.web.app import make_inference_app, make_partial_inference_app
from repro.web.events import Event
from repro.web.values import TypedArray


@pytest.fixture(scope="module")
def policy():
    costs = network_costs(smallnet().network)
    client_profile = odroid_xu4_client()
    server_profile = edge_server_x86()
    return OffloadPolicy(
        fit_predictor_for(client_profile, costs, noise=0.0),
        fit_predictor_for(server_profile, costs, noise=0.0),
        client_profile,
        server_profile,
    )


def scaled_costs(factor: float):
    """smallnet costs scaled up to DNN-benchmark magnitudes."""
    from dataclasses import replace

    return [
        replace(cost, flops=cost.flops * factor)
        for cost in network_costs(smallnet().network)
    ]


class TestOffloadPolicy:
    def test_small_workload_after_ack_prefers_local(self, policy):
        # smallnet is so cheap that migration overhead dominates: the
        # policy must notice offloading does not pay here.
        costs = network_costs(smallnet().network)
        decision = policy.decide(
            costs,
            NetemProfile.wifi_30mbps(),
            pending_model_bytes=0,
            input_bytes=50_000,
        )
        assert decision.action == "local"

    def test_heavy_workload_after_ack_prefers_offload(self, policy):
        # Scaled to GoogLeNet-like GFLOPs, offloading wins after the ACK.
        decision = policy.decide(
            scaled_costs(1000.0),
            NetemProfile.wifi_30mbps(),
            pending_model_bytes=0,
            input_bytes=2_700_000,
        )
        assert decision.action == "offload"

    def test_huge_pending_model_prefers_local(self, policy):
        costs = network_costs(smallnet().network)
        decision = policy.decide(
            costs,
            NetemProfile.wifi_30mbps(),
            pending_model_bytes=500_000_000,  # 500 MB still to upload
            input_bytes=50_000,
        )
        assert decision.action == "local"

    def test_speedup_reported(self, policy):
        costs = network_costs(smallnet().network)
        decision = policy.decide(
            costs, NetemProfile.wifi_30mbps(), 0, 50_000
        )
        assert decision.speedup >= 1.0

    def test_dead_link_prefers_local(self, policy):
        costs = network_costs(smallnet().network)
        decision = policy.decide(
            costs,
            NetemProfile(bandwidth_bps=1e4),  # 10 kbps
            pending_model_bytes=0,
            input_bytes=50_000,
        )
        assert decision.action == "local"


class TestInputExposure:
    def _snapshot(self, app, pixels, event, options):
        runtime = WebRuntime("c")
        runtime.load_app(app)
        runtime.globals["pending_pixels"] = pixels
        runtime.dispatch("click", "load_btn")
        if event.event_type == "front_complete":
            runtime.events.set_interceptor(lambda ev: None)
            runtime.events.mark_offload_event("front_complete")
            runtime.dispatch("click", "infer_btn")  # runs front()
        return capture_snapshot(runtime, event, options)

    def test_full_offload_exposes_input(self):
        model = smallnet()
        pixels = TypedArray(SeededRng(4, "px").uniform_array((3, 32, 32), 0, 255))
        snapshot = self._snapshot(
            make_inference_app(model),
            pixels,
            Event("click", "infer_btn"),
            CaptureOptions(include_canvas_pixels=True),
        )
        assert snapshot_exposes_input(snapshot, pixels.data)

    def test_partial_offload_hides_input(self):
        model = smallnet()
        point = model.network.point_by_label("1st_pool")
        front, rear = model.split(point.index)
        pixels = TypedArray(SeededRng(4, "px").uniform_array((3, 32, 32), 0, 255))
        snapshot = self._snapshot(
            make_partial_inference_app(front, rear),
            pixels,
            Event("front_complete", "infer_btn"),
            CaptureOptions(),
        )
        assert not snapshot_exposes_input(snapshot, pixels.data)
        # but the feature data IS in the snapshot
        assert snapshot.feature_bytes > 0


class TestInversion:
    @pytest.fixture(scope="class")
    def setup(self):
        model = tinynet()
        point = model.network.point_by_label("1st_conv")
        front, _rear = model.split(point.index)
        surrogate_model = tinynet(seed=99)
        surrogate_front, _ = surrogate_model.split(point.index)
        rng = SeededRng(5, "inv")
        image = rng.uniform_array((1, 8, 8), 0, 255)
        return front, surrogate_front, image

    def test_hill_climbing_reduces_feature_loss(self, setup):
        front, _surrogate, image = setup
        feature = front.inference(image)
        result = hill_climb_invert(
            front, feature, (1, 8, 8), iterations=300, rng=SeededRng(6, "hc"),
            true_input=image,
        )
        assert result.feature_loss < result.initial_feature_loss
        assert result.loss_reduction > 0.3

    def test_withholding_front_model_defeats_attack(self, setup):
        front, surrogate, image = setup
        study = inversion_study(
            front, surrogate, image, iterations=300, rng=SeededRng(7, "study")
        )
        assert study.defense_effective
        assert study.with_front.loss_reduction > study.without_front.loss_reduction


class TestDenaturing:
    def test_identity_feature_not_denatured(self):
        rng = SeededRng(8, "d")
        image = rng.uniform_array((3, 16, 16), 0, 255)
        # "Feature" = the image's own channels: maximally recognizable.
        score = denaturing_score(image, image.mean(axis=0, keepdims=True))
        assert score < 0.2

    def test_conv_feature_is_denatured(self):
        model = smallnet()
        point = model.network.point_by_label("1st_pool")
        front, _ = model.split(point.index)
        rng = SeededRng(9, "d2")
        image = rng.uniform_array((3, 32, 32), 0, 255)
        feature = front.inference(image)
        assert denaturing_score(image, feature) > 0.5

    def test_flat_feature_fully_denatured(self):
        rng = SeededRng(10, "d3")
        image = rng.uniform_array((3, 8, 8), 0, 255)
        assert denaturing_score(image, np.zeros(10, dtype=np.float32)) == 1.0
