"""Tests for the cross-process plan cache.

Covers the serialization contract (a rehydrated plan is bitwise-identical
to a freshly compiled one, including folded operands and branch/join
graphs), the key (params digest + range + options + source fingerprint),
the poisoning rule (corrupt or unbindable entries degrade to a silent
recompile), and true cross-process rehydration under different
``PYTHONHASHSEED`` values.
"""

import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.exec import cache as exec_cache
from repro.nn import plan as plan_module
from repro.nn.plan import (
    PlanCacheError,
    PlanGraphError,
    compile_plan,
    load_or_compile_plan,
    network_params_digest,
    plan_cache_key,
    plan_from_descriptor,
    plan_to_descriptor,
)
from repro.nn.zoo import build_model, smallnet
from repro.nn.zoo.resnetlike import resnet_mini_bn
from repro.sim import SeededRng

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


@pytest.fixture(autouse=True)
def plan_cache_reset():
    """Every test controls the plan cache explicitly; restore defaults."""
    exec_cache.set_plan_cache("")  # disabled unless the test opts in
    exec_cache.reset_plan_cache_stats()
    yield
    exec_cache.set_plan_cache(None)
    exec_cache.reset_plan_cache_stats()


def plan_input(network, seed=7):
    return SeededRng(seed, f"plancache/{network.name}").uniform_array(
        tuple(network.input_shape), 0, 255
    )


def roundtrip(plan, network):
    """Serialize through pickle bytes (the on-disk format) and rebind."""
    descriptor = pickle.loads(pickle.dumps(plan_to_descriptor(plan, network)))
    return plan_from_descriptor(descriptor, network)


class TestRoundtrip:
    @pytest.mark.parametrize("name", ["smallnet", "resnet-mini", "googlenet"])
    def test_bitwise_identical_forward(self, name):
        network = build_model(name).network
        plan = compile_plan(network)
        restored = roundtrip(plan, network)
        x = plan_input(network)
        assert plan.forward(x).tobytes() == restored.forward(x).tobytes()
        assert restored.describe_text() == plan.describe_text()
        assert restored.stats == plan.stats

    def test_folded_operands_stored_verbatim(self):
        network = resnet_mini_bn().network
        plan = compile_plan(network)
        assert plan.stats.folded > 0
        restored = roundtrip(plan, network)
        for step, other in zip(plan.steps, restored.steps):
            if not hasattr(step, "operands"):
                continue
            for (matrix, bias), (matrix2, bias2) in zip(
                step.operands, other.operands
            ):
                assert np.array_equal(matrix, matrix2)
                assert np.array_equal(bias, bias2)
        x = plan_input(network)
        assert plan.forward(x).tobytes() == restored.forward(x).tobytes()

    def test_unfolded_operands_rebind_to_live_cache(self):
        # Without folding the operands are a pure reshape of the live
        # weights; the descriptor stores nothing and rehydration re-reads
        # the layer's operand cache (identity-equal arrays).
        network = smallnet().network
        plan = compile_plan(network)
        restored = roundtrip(plan, network)
        for step, other in zip(plan.steps, restored.steps):
            if type(step).__name__ != "ConvStep":
                continue
            for (matrix, _), (matrix2, _) in zip(step.operands, other.operands):
                assert matrix is matrix2

    def test_restored_plan_passes_arena_trace(self):
        network = build_model("resnet-mini").network
        restored = roundtrip(compile_plan(network), network)
        _, trace = restored.forward_traced(plan_input(network))
        assert not any(
            entry["output_aliases_input"] or entry["output_clobbers_live"]
            for entry in trace
        )

    def test_split_range_plans_roundtrip(self):
        network = smallnet().network
        x = plan_input(network)
        expected = network.forward(x, optimize=False)
        last = len(network.layers) - 1
        for point in network.offload_points():
            front = roundtrip(compile_plan(network, 0, point.index), network)
            rear = roundtrip(compile_plan(network, point.index + 1, last), network)
            assert np.array_equal(rear.forward(front.forward(x)), expected)

    def test_stale_plan_refuses_to_serialize(self):
        network = smallnet().network
        plan = compile_plan(network)
        layer, key, array = plan._witnesses[0]
        layer.params[key] = array.copy()
        with pytest.raises(PlanCacheError):
            plan_to_descriptor(plan, network)

    def test_corrupt_slot_assignment_rejected(self):
        network = build_model("resnet-mini").network
        plan = compile_plan(network)
        descriptor = plan_to_descriptor(plan, network)
        arena_entries = [e for e in descriptor["steps"] if e["slot"] is not None]
        assert len(arena_entries) > 2
        for entry in arena_entries:
            entry["slot"] = 0  # aliases every live value into one slot
        with pytest.raises(PlanGraphError):
            plan_from_descriptor(descriptor, network)


class TestCacheKey:
    def test_stable_for_identical_builds(self):
        a = smallnet().network
        b = smallnet().network
        assert plan_cache_key(a, 0, 3) == plan_cache_key(b, 0, 3)

    def test_changes_with_range_options_and_params(self):
        network = smallnet().network
        base = plan_cache_key(network, 0, 3)
        assert plan_cache_key(network, 0, 2) != base
        assert plan_cache_key(network, 0, 3, fold=False) != base
        assert plan_cache_key(network, 0, 3, fuse=False) != base
        conv = next(l for l in network.layers if l.params)
        key = next(iter(conv.params))
        conv.params[key] = conv.params[key] * 2.0
        assert plan_cache_key(network, 0, 3) != base

    def test_params_digest_memoized_per_network(self):
        network = smallnet().network
        first = network_params_digest(network)
        assert network_params_digest(network) == first
        assert network._plan_digest_memo[1] == first

    def test_split_halves_get_distinct_keys(self):
        network = smallnet().network
        split = network.split(2)
        last_front = len(split.front.layers) - 1
        last_rear = len(split.rear.layers) - 1
        assert plan_cache_key(split.front, 0, last_front) != plan_cache_key(
            split.rear, 0, last_rear
        )


class TestPlanCacheStore:
    def _enable(self, tmp_path):
        exec_cache.set_plan_cache(str(tmp_path))
        exec_cache.reset_plan_cache_stats()
        return exec_cache.plan_cache_stats()

    def test_miss_then_cross_instance_hit(self, tmp_path):
        stats = self._enable(tmp_path)
        a = smallnet().network
        plan = load_or_compile_plan(a)
        assert (stats.misses, stats.hits) == (1, 0)
        assert stats.compile_seconds > 0
        b = smallnet().network  # a "new process" as far as plans go
        restored = load_or_compile_plan(b)
        assert (stats.misses, stats.hits) == (1, 1)
        x = plan_input(a)
        assert plan.forward(x).tobytes() == restored.forward(x).tobytes()

    def test_network_plan_for_consults_cache(self, tmp_path):
        stats = self._enable(tmp_path)
        a = smallnet().network
        a.plan_for()
        a.plan_for()  # in-memory reuse: no second cache consult
        assert (stats.misses, stats.hits) == (1, 0)
        b = smallnet().network
        b.plan_for()
        assert (stats.misses, stats.hits) == (1, 1)

    def test_poisoned_entries_recompile_silently(self, tmp_path):
        self._enable(tmp_path)
        network = smallnet().network
        plan = load_or_compile_plan(network)
        x = plan_input(network)
        expected = plan.forward(x).tobytes()
        key = plan_cache_key(network, 0, len(network.layers) - 1)
        path = tmp_path / key[:2] / f"{key}.plan"
        assert path.exists()
        for poison in (path.read_bytes()[:40], b"garbage, not a pickle"):
            path.write_bytes(poison)
            exec_cache.reset_plan_cache_stats()
            stats = exec_cache.plan_cache_stats()
            recompiled = load_or_compile_plan(smallnet().network)
            assert (stats.misses, stats.hits) == (1, 0)
            assert recompiled.forward(x).tobytes() == expected
            assert path.exists()  # the recompile re-stores a good entry

    def test_unbindable_descriptor_recompiles_silently(self, tmp_path):
        # A well-formed pickle whose steps can't rebind (wrong layer ids)
        # must also fall back — covers the rebind path, not just unpickle.
        self._enable(tmp_path)
        network = smallnet().network
        load_or_compile_plan(network)
        key = plan_cache_key(network, 0, len(network.layers) - 1)
        cache = exec_cache.active_plan_cache()
        descriptor = cache.load(key)
        for entry in descriptor["steps"]:
            if "layer" in entry:
                entry["layer"] = 10_000
        cache.store(key, descriptor)
        exec_cache.reset_plan_cache_stats()
        stats = exec_cache.plan_cache_stats()
        plan = load_or_compile_plan(smallnet().network)
        assert (stats.misses, stats.hits) == (1, 0)
        x = plan_input(network)
        assert np.array_equal(
            plan.forward(x), network.forward(x, optimize=False)
        )

    def test_rehydrated_witnesses_track_replacement(self, tmp_path):
        self._enable(tmp_path)
        load_or_compile_plan(smallnet().network)
        network = smallnet().network
        restored = load_or_compile_plan(network)
        assert restored.is_valid()
        layer = next(l for l in network.layers if l.params)
        key = next(iter(layer.params))
        layer.params[key] = layer.params[key].copy()
        assert not restored.is_valid()

    def test_plan_cache_stats_and_purge(self, tmp_path):
        self._enable(tmp_path)
        load_or_compile_plan(smallnet().network)
        cache = exec_cache.active_plan_cache()
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert cache.purge() == 1
        assert cache.stats()["entries"] == 0


class TestDigestPrimedAtLoad:
    """The params digest is computed once, at model load/store time.

    It used to be computed lazily inside the first ``plan_for()`` — which
    in a fresh process is the *timed request path*, and it made warm
    plan-cache lookups cost as much as cold compiles (the BENCH_perf wart:
    ~identical cold/warm ms on googlenet).
    """

    def test_build_model_primes_params_digest(self):
        model = build_model("smallnet")
        memo = getattr(model.network, "_plan_digest_memo", None)
        assert memo is not None
        assert model.fingerprint() == memo[1]
        assert model.fingerprint() == network_params_digest(model.network)

    def test_store_attach_primes_fingerprint(self):
        from repro.nn.modelstore import ModelStore

        model = build_model("smallnet")
        store = ModelStore()
        store.begin_upload(model.model_id, model.files())
        for file in model.files():
            store.receive_file(model.model_id, file)
        store.attach_model(model.model_id, model)
        assert store.fingerprint_of(model.model_id) == model.fingerprint()
        assert store.matches_fingerprint(model.model_id, model.fingerprint())
        assert not store.matches_fingerprint(model.model_id, "bogus")

    def test_warm_load_recomputes_no_array_digests(self, tmp_path, monkeypatch):
        exec_cache.set_plan_cache(str(tmp_path))
        exec_cache.reset_plan_cache_stats()
        # "Process one": compile and store the plan.
        load_or_compile_plan(build_model("smallnet").network)
        # "Process two": a freshly built model whose digest was primed at
        # load time.  The warm lookup must hash zero weight arrays.
        model = build_model("smallnet")
        calls = []
        real_digest = plan_module._array_digest

        def counting_digest(array):
            calls.append(array.shape)
            return real_digest(array)

        monkeypatch.setattr(plan_module, "_array_digest", counting_digest)
        stats = exec_cache.plan_cache_stats()
        restored = load_or_compile_plan(model.network)
        assert (stats.misses, stats.hits) == (1, 1)
        assert calls == []
        x = plan_input(model.network)
        assert np.array_equal(
            restored.forward(x), model.network.forward(x, optimize=False)
        )

    def test_param_rebinding_still_invalidates_fingerprint(self):
        model = build_model("smallnet")
        before = model.fingerprint()
        layer = next(l for l in model.network.layers if l.params)
        key = next(iter(layer.params))
        layer.params[key] = layer.params[key] * 2.0
        assert model.fingerprint() != before


SUBPROCESS_SCRIPT = """\
import hashlib
import sys

sys.path.insert(0, sys.argv[1])
from repro.exec import cache as exec_cache
from repro.nn.plan import load_or_compile_plan
from repro.nn.zoo import smallnet
from repro.sim import SeededRng

exec_cache.set_plan_cache(sys.argv[2])
network = smallnet().network
plan = load_or_compile_plan(network)
x = SeededRng(7, f"plancache/{network.name}").uniform_array(
    tuple(network.input_shape), 0, 255
)
digest = hashlib.sha256(plan.forward(x).tobytes()).hexdigest()
stats = exec_cache.plan_cache_stats()
print(f"{digest} {stats.hits} {stats.misses}")
"""


class TestCrossProcess:
    def test_rehydration_across_hashseeds(self, tmp_path):
        """Process A compiles and stores; process B — with a different
        string-hash seed — must hit the same key and produce the same
        forward bits."""
        results = []
        for hashseed in ("1", "2"):
            proc = subprocess.run(
                [sys.executable, "-c", SUBPROCESS_SCRIPT, SRC_DIR, str(tmp_path)],
                env={"PYTHONHASHSEED": hashseed, "PATH": "/usr/bin:/bin"},
                capture_output=True,
                text=True,
                check=True,
            )
            results.append(proc.stdout.split())
        (sha_a, hits_a, misses_a), (sha_b, hits_b, misses_b) = results
        assert (hits_a, misses_a) == ("0", "1")
        assert (hits_b, misses_b) == ("1", "0")
        assert sha_a == sha_b
