"""Tests for apps using several DNNs in one interaction."""

import numpy as np
import pytest

from repro.core.client import ClientAgent
from repro.core.server import EdgeServer
from repro.core.snapshot import CaptureOptions
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import Channel, NetemProfile
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.web import WebRuntime
from repro.web.app import make_demographics_app
from repro.web.values import TypedArray


@pytest.fixture
def models():
    age = smallnet(seed=1, num_classes=8)
    age.name = "agenet-mini"
    gender = smallnet(seed=2, num_classes=2)
    gender.name = "gendernet-mini"
    return age, gender


@pytest.fixture
def pixels():
    return TypedArray(SeededRng(3, "px").uniform_array((3, 32, 32), 0, 255))


def expected_labels(models, pixels):
    age, gender = models
    return (
        int(np.argmax(age.inference(pixels.data))),
        int(np.argmax(gender.inference(pixels.data))),
    )


class TestLocalExecution:
    def test_two_models_one_click(self, models, pixels):
        runtime = WebRuntime()
        runtime.load_app(make_demographics_app(*models))
        runtime.globals["pending_pixels"] = pixels
        runtime.dispatch("click", "load_btn")
        runtime.dispatch("click", "infer_btn")
        age, gender = expected_labels(models, pixels)
        assert runtime.globals["age_label"] == age
        assert runtime.globals["gender_label"] == gender
        assert f"age {age} gender {gender}" in runtime.document.get(
            "result"
        ).text_content

    def test_app_declares_both_models(self, models):
        app = make_demographics_app(*models)
        assert len(app.presend_models()) == 2


class TestOffloadedExecution:
    def test_both_models_presend_and_offload(self, models, pixels):
        sim = Simulator()
        channel = Channel(sim, "client", "edge", NetemProfile.wifi_30mbps())
        server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge")
        server.serve(channel.end_b)
        client = ClientAgent(
            sim,
            Device(sim, odroid_xu4_client()),
            channel.end_a,
            capture_options=CaptureOptions(include_canvas_pixels=True),
        )
        age, gender = models
        client.start_app(make_demographics_app(age, gender), presend=True)
        client.runtime.globals["pending_pixels"] = pixels
        client.runtime.dispatch("click", "load_btn")
        client.mark_offload_point("click", "infer_btn")
        sim.run()  # both uploads finish and ACK
        assert server.store.has_complete(age.model_id)
        assert server.store.has_complete(gender.model_id)

        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        costs = network_costs(age.network) + network_costs(gender.network)
        process = sim.spawn(client.offload(event, server_costs=costs))
        sim.run()
        assert process.ok, process.value
        expected_age, expected_gender = expected_labels(models, pixels)
        assert client.runtime.globals["age_label"] == expected_age
        assert client.runtime.globals["gender_label"] == expected_gender
        # The snapshot referenced both models but contained neither.
        snapshot = process.value.snapshot
        assert set(snapshot.model_refs) == {"age", "gender"}
        assert snapshot.size_bytes < (age.total_bytes + gender.total_bytes) / 2

    def test_offload_before_ack_ships_both(self, models, pixels):
        sim = Simulator()
        channel = Channel(
            sim, "client", "edge", NetemProfile(bandwidth_bps=1e6)
        )  # slow: nothing pre-sent yet
        server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge")
        server.serve(channel.end_b)
        client = ClientAgent(
            sim,
            Device(sim, odroid_xu4_client()),
            channel.end_a,
            capture_options=CaptureOptions(include_canvas_pixels=True),
        )
        age, gender = models
        client.start_app(make_demographics_app(age, gender), presend=True)
        client.runtime.globals["pending_pixels"] = pixels
        client.runtime.dispatch("click", "load_btn")
        client.mark_offload_point("click", "infer_btn")
        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        costs = network_costs(age.network) + network_costs(gender.network)
        process = sim.spawn(client.offload(event, server_costs=costs))
        sim.run()
        assert process.ok, process.value
        outcome = process.value
        assert outcome.delivery_bytes > 0.5 * (age.total_bytes + gender.total_bytes)
        expected_age, expected_gender = expected_labels(models, pixels)
        assert client.runtime.globals["age_label"] == expected_age
        assert client.runtime.globals["gender_label"] == expected_gender
