"""Unit tests for links, shaping profiles and message sizing."""

import pytest

from repro.netsim.link import Link, LinkDown, NetemProfile
from repro.netsim.message import FRAME_OVERHEAD_BYTES, Message, payload_size
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestPayloadSize:
    def test_none_is_zero(self):
        assert payload_size(None) == 0

    def test_bytes(self):
        assert payload_size(b"abcd") == 4

    def test_str_utf8(self):
        assert payload_size("héllo") == 6

    def test_numbers(self):
        assert payload_size(3) == 8
        assert payload_size(2.5) == 8
        assert payload_size(True) == 1

    def test_object_with_size_bytes_attribute(self):
        class Blob:
            size_bytes = 1000

        assert payload_size(Blob()) == 1000

    def test_object_with_size_bytes_method(self):
        class Blob:
            def size_bytes(self):
                return 123

        assert payload_size(Blob()) == 123

    def test_containers(self):
        assert payload_size([b"ab", b"c"]) == 3
        assert payload_size({"k": b"vv"}) == 1 + 2

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_size(object())


class TestMessage:
    def test_auto_size_includes_frame_overhead(self):
        message = Message(kind="PING", payload=b"x" * 100)
        assert message.size_bytes == 100 + FRAME_OVERHEAD_BYTES

    def test_explicit_size_wins(self):
        message = Message(kind="BLOB", payload=b"x", size_bytes=5000)
        assert message.size_bytes == 5000

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(kind="BAD", size_bytes=-1)

    def test_ids_are_unique(self):
        first = Message(kind="A")
        second = Message(kind="B")
        assert first.msg_id != second.msg_id


class TestNetemProfile:
    def test_transfer_seconds(self):
        profile = NetemProfile(bandwidth_bps=8e6, latency_s=0.5)
        # 1 MB at 8 Mbps = 1 second serialization + 0.5 latency.
        assert profile.transfer_seconds(1_000_000) == pytest.approx(1.5)

    def test_paper_wifi_preset(self):
        profile = NetemProfile.wifi_30mbps()
        assert profile.bandwidth_bps == 30e6

    def test_validation(self):
        with pytest.raises(ValueError):
            NetemProfile(bandwidth_bps=0)
        with pytest.raises(ValueError):
            NetemProfile(latency_s=-1)
        with pytest.raises(ValueError):
            NetemProfile(loss=1.0)

    def test_with_bandwidth_is_functional(self):
        base = NetemProfile.wifi_30mbps()
        fast = base.with_bandwidth(60e6)
        assert base.bandwidth_bps == 30e6
        assert fast.bandwidth_bps == 60e6
        assert fast.latency_s == base.latency_s


class TestLink:
    def _send(self, sim, link, size_bytes, kind="DATA"):
        delivered = []
        message = Message(kind=kind, size_bytes=size_bytes)
        event = link.transmit(message, delivered.append)
        return event, delivered

    def test_delivery_time_matches_profile(self, sim):
        profile = NetemProfile(bandwidth_bps=8e6, latency_s=0.25)
        link = Link(sim, profile)
        event, delivered = self._send(sim, link, 1_000_000)
        sim.run()
        assert delivered[0].delivered_at == pytest.approx(1.25)
        assert event.ok

    def test_fifo_serialization_queues_second_message(self, sim):
        profile = NetemProfile(bandwidth_bps=8e6, latency_s=0.0)
        link = Link(sim, profile)
        _, delivered_a = self._send(sim, link, 1_000_000, kind="A")
        _, delivered_b = self._send(sim, link, 1_000_000, kind="B")
        sim.run()
        # Second message waits for the first one's serialization to finish.
        assert delivered_a[0].delivered_at == pytest.approx(1.0)
        assert delivered_b[0].delivered_at == pytest.approx(2.0)

    def test_down_link_fails_event(self, sim):
        link = Link(sim, NetemProfile.wifi_30mbps())
        link.go_down()
        event, delivered = self._send(sim, link, 1000)
        sim.run()
        assert event.ok is False
        assert isinstance(event.value, LinkDown)
        assert delivered == []

    def test_link_down_in_flight_drops_message(self, sim):
        profile = NetemProfile(bandwidth_bps=8e6, latency_s=0.0)
        link = Link(sim, profile)
        event, delivered = self._send(sim, link, 1_000_000)  # delivers at 1.0
        sim.schedule(0.5, link.go_down)
        sim.run()
        assert event.ok is False
        assert delivered == []
        assert link.dropped_count == 1

    def test_total_loss_never_delivers(self, sim):
        profile = NetemProfile(bandwidth_bps=8e6, loss=0.999999)
        link = Link(sim, profile)
        failures = 0
        for _ in range(20):
            event, delivered = self._send(sim, link, 1000)
            sim.run()
            if event.ok is False:
                failures += 1
        assert failures >= 19  # overwhelmingly lost

    def test_estimated_transfer_includes_queueing(self, sim):
        profile = NetemProfile(bandwidth_bps=8e6, latency_s=0.0)
        link = Link(sim, profile)
        self._send(sim, link, 1_000_000)  # occupies wire until t=1.0
        estimate = link.estimated_transfer_seconds(1_000_000)
        assert estimate == pytest.approx(2.0)

    def test_set_bandwidth_affects_future_transfers(self, sim):
        profile = NetemProfile(bandwidth_bps=8e6, latency_s=0.0)
        link = Link(sim, profile)
        link.set_bandwidth(16e6)
        _, delivered = self._send(sim, link, 1_000_000)
        sim.run()
        assert delivered[0].delivered_at == pytest.approx(0.5)

    def test_counters(self, sim):
        link = Link(sim, NetemProfile(bandwidth_bps=8e6))
        self._send(sim, link, 500)
        sim.run()
        assert link.delivered_count == 1
        assert link.bytes_sent == 500
