"""Unit tests for the fleet: policies, scheduler, topology, handshake.

The end-to-end failover behaviour lives in ``test_fleet_failover.py`` and
the property-based invariants in ``test_fleet_properties.py``; this module
pins down the building blocks — policy selection math, scheduler
bookkeeping, the multi-client topology extension, and the MODEL_QUERY /
MODEL_STATUS digest handshake — plus one small healthy-fleet run.
"""

import pytest

from repro.core import protocol
from repro.core.server import EdgeServer
from repro.devices import Device, edge_server_x86
from repro.fleet import (
    EdgeSpec,
    FleetScenario,
    FleetScheduler,
    PolicyError,
    compare_policies,
    default_fleet,
    make_policy,
)
from repro.fleet.policies import POLICY_NAMES
from repro.netsim import EdgeDown, Topology
from repro.nn.zoo import build_model
from repro.sim import SeededRng, Simulator


def scheduler(policy="round-robin", names=("a", "b", "c"), **kwargs):
    sim = Simulator()
    return FleetScheduler(sim, names, make_policy(policy), **kwargs)


class TestPolicies:
    def test_registry_builds_every_policy(self):
        for name in POLICY_NAMES:
            assert make_policy(name, SeededRng(0, "t")).name == name
        with pytest.raises(PolicyError):
            make_policy("least-loaded")

    def test_round_robin_cycles_in_registration_order(self):
        sched = scheduler("round-robin")
        picks = [sched.try_pick() for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_random_is_seed_deterministic(self):
        def picks(seed):
            sim = Simulator()
            sched = FleetScheduler(
                sim, ["a", "b", "c"], make_policy("random", SeededRng(seed, "p"))
            )
            return [sched.try_pick() for _ in range(12)]

        assert picks(5) == picks(5)
        assert picks(5) != picks(6)  # astronomically unlikely to collide

    def test_min_response_time_prefers_fastest_window(self):
        sched = scheduler("min-response-time")
        for seconds, name in ((0.5, "a"), (0.1, "b"), (0.3, "c")):
            sched.begin(name)
            sched.complete(name, seconds)
        assert sched.try_pick() == "b"

    def test_min_response_time_probes_unmeasured_edges_first(self):
        sched = scheduler("min-response-time")
        sched.begin("a")
        sched.complete("a", 0.001)  # blazing fast, but "b"/"c" are unknown
        assert sched.try_pick() == "b"
        sched.begin("b")
        sched.complete("b", 0.2)
        assert sched.try_pick() == "c"

    def test_queue_aware_scales_by_outstanding(self):
        sched = scheduler("queue-aware")
        for name, seconds in (("a", 0.1), ("b", 0.3), ("c", 0.35)):
            sched.begin(name)
            sched.complete(name, seconds)
        # "a" is 3x faster, but stack up requests and its expected wait
        # (mean_rt * (outstanding + 1)) passes "b"'s.
        assert sched.try_pick() == "a"
        sched.begin("a")
        assert sched.try_pick() == "a"  # 0.1 * 2 < 0.3
        sched.begin("a")
        assert sched.try_pick() == "b"  # 0.1 * 3 == 0.3: queue breaks the tie


class TestScheduler:
    def test_validation(self):
        with pytest.raises(PolicyError):
            scheduler(names=())
        with pytest.raises(PolicyError):
            scheduler(names=("a", "a"))
        with pytest.raises(PolicyError):
            scheduler(window=0)
        with pytest.raises(PolicyError):
            scheduler(max_outstanding_per_edge=0)

    def test_window_is_sliding(self):
        sched = scheduler(window=2)
        state = sched.edge("a")
        for seconds in (1.0, 2.0, 3.0):
            sched.begin("a")
            sched.complete("a", seconds)
        assert state.window_values() == [2.0, 3.0]
        assert state.mean_response_seconds() == pytest.approx(2.5)

    def test_admission_control_caps_outstanding(self):
        sched = scheduler(names=("a",), max_outstanding_per_edge=2)
        assert sched.try_pick() == "a"
        sched.begin("a")
        sched.begin("a")
        assert sched.try_pick() is None  # full: back off
        assert sched.sim.metrics.value("fleet_admission_waits_total") == 1
        sched.complete("a", 0.1)
        assert sched.try_pick() == "a"

    def test_fail_marks_dead_and_excludes(self):
        sched = scheduler()
        sched.begin("b")
        sched.fail("b")
        assert not sched.edge("b").alive
        assert sched.edge("b").outstanding == 0
        assert "b" not in {sched.try_pick() for _ in range(6)}
        # dead-with-no-candidates is not an admission wait
        sched2 = scheduler(names=("a",))
        sched2.begin("a")
        sched2.fail("a")
        assert sched2.try_pick() is None
        assert sched2.sim.metrics.value("fleet_admission_waits_total") == 0

    def test_exclusion_is_per_request(self):
        sched = scheduler("round-robin")
        assert sched.try_pick(frozenset({"a", "b"})) == "c"
        assert sched.try_pick(frozenset({"a", "b", "c"})) is None

    def test_mark_alive_revives_and_forgets_stale_window(self):
        sched = scheduler()
        sched.begin("a")
        sched.complete("a", 9.0)
        sched.mark_dead("a")
        sched.mark_alive("a")
        assert sched.edge("a").alive
        assert sched.edge("a").window_values() == []
        assert sched.any_alive()


class TestFleetTopology:
    def setup_method(self):
        self.sim = Simulator()
        self.topo = Topology(self.sim)
        self.topo.add_edge_host("e0")
        self.topo.add_edge_host("e1")

    def test_concurrent_connections_are_stable_by_identity(self):
        a0, _ = self.topo.connect("alice", "e0")
        a1, _ = self.topo.connect("alice", "e1")  # concurrent, no teardown
        b0, _ = self.topo.connect("bob", "e0")
        assert a0 is not a1 and a0 is not b0
        again, _ = self.topo.connect("alice", "e0")
        assert again is a0  # same pair -> same channel ends

    def test_fail_edge_drops_channels_and_blocks_connect(self):
        self.topo.connect("alice", "e0")
        self.topo.connect("bob", "e0")
        keep, _ = self.topo.connect("alice", "e1")
        assert self.topo.fail_edge("e0") == 2
        assert not self.topo.edge_is_up("e0")
        with pytest.raises(EdgeDown):
            self.topo.connect("alice", "e0")
        assert self.topo.connection("alice", "e0") is None
        assert self.topo.connection("alice", "e1").end_a is keep

    def test_restore_edge_builds_fresh_channels(self):
        old, _ = self.topo.connect("alice", "e0")
        self.topo.fail_edge("e0")
        self.topo.restore_edge("e0")
        fresh, _ = self.topo.connect("alice", "e0")
        assert fresh is not old  # identity change => handshake redone
        assert [entry[1:] for entry in self.topo.outage_log] == [
            ("e0", "fail"), ("e0", "restore")
        ]


class TestDigestHandshake:
    def _query(self, server, topo, client, fingerprint, model_id):
        client_end, edge_end = topo.connect(client, "e0")
        server.serve(edge_end)
        client_end.send(
            protocol.MODEL_QUERY,
            protocol.ModelQueryPayload(model_id=model_id, fingerprint=fingerprint),
        )
        wait = client_end.recv_kind(protocol.MODEL_STATUS, timeout=5.0)
        topo.sim.run_until(lambda: wait.triggered)
        return wait.value.payload

    def test_status_reflects_store_contents(self):
        sim = Simulator()
        topo = Topology(sim)
        topo.add_edge_host("e0")
        server = EdgeServer(sim, Device(sim, edge_server_x86()), name="e0")
        model = build_model("tinynet")

        miss = self._query(server, topo, "c0", model.fingerprint(), model.model_id)
        assert miss.present is False

        server.store.begin_upload(model.model_id, model.files())
        for file in model.files():
            server.store.receive_file(model.model_id, file)
        server.store.attach_model(model.model_id, model)
        hit = self._query(server, topo, "c1", model.fingerprint(), model.model_id)
        assert hit.present is True
        assert hit.server_name == "e0"

        stale = self._query(server, topo, "c2", "0" * 64, model.model_id)
        assert stale.present is False  # same id, different params digest

    def _query_v2(self, server, topo, client, model):
        """Segment-level query: the manifest rides along."""
        client_end, edge_end = topo.connect(client, "e0")
        server.serve(edge_end)
        client_end.send(
            protocol.MODEL_QUERY,
            protocol.ModelQueryPayload(
                model_id=model.model_id,
                fingerprint=model.fingerprint(),
                files=model.files(),
            ),
        )
        wait = client_end.recv_kind(protocol.MODEL_STATUS, timeout=5.0)
        topo.sim.run_until(lambda: wait.triggered)
        return wait.value.payload

    def test_segment_status_names_exactly_the_missing_files(self):
        sim = Simulator()
        topo = Topology(sim)
        topo.add_edge_host("e0")
        server = EdgeServer(sim, Device(sim, edge_server_x86()), name="e0")
        smallnet = build_model("smallnet")
        _, rear2 = smallnet.split(2)
        _, rear3 = smallnet.split(3)

        # cold store: every file of the manifest is missing
        cold = self._query_v2(server, topo, "c0", rear2)
        assert cold.present is False
        assert cold.missing_files == [f.name for f in rear2.files()]

        # install rear@2; its sibling split shares the parameter blobs,
        # so the v2 answer asks only for the one file actually absent
        server.store.begin_upload(rear2.model_id, rear2.files())
        for file in rear2.files():
            server.store.receive_file(rear2.model_id, file)
        server.store.attach_model(rear2.model_id, rear2)
        sibling = self._query_v2(server, topo, "c1", rear3)
        assert sibling.present is False
        assert sibling.missing_files == [f"{rear3.name}.json"]

        # the installed model itself: present, nothing missing
        warm = self._query_v2(server, topo, "c2", rear2)
        assert warm.present is True
        assert warm.missing_files == []

        # a v1 query (no manifest) still answers whole-model only
        v1 = self._query(
            server, topo, "c3", rear3.fingerprint(), rear3.model_id
        )
        assert v1.present is False
        assert v1.missing_files is None


class TestFleetScenario:
    def test_default_fleet_is_skewed(self):
        specs = default_fleet(3, skew=2.0)
        speeds = [spec.server_speedup for spec in specs]
        assert speeds[0] == 1.0
        assert speeds[-1] == pytest.approx(0.5)
        assert speeds == sorted(speeds, reverse=True)
        with pytest.raises(ValueError):
            default_fleet(0)

    def test_healthy_run_serves_everything_correctly(self):
        scenario = FleetScenario(sessions=6, requests_per_session=2, seed=2)
        report = scenario.run()
        assert report.count == 12
        assert report.all_correct
        assert report.failovers == 0
        # one pre-send per edge that got traffic, handshake hits after
        assert report.handshake_misses <= len(scenario.specs)
        assert sum(row.served for row in report.edges) == 12

    def test_trace_arrivals_and_partial_mode(self):
        scenario = FleetScenario(
            sessions=4,
            requests_per_session=2,
            arrivals="trace",
            mode="offload-partial",
            seed=4,
            edges=[EdgeSpec("only")],
        )
        report = scenario.run()
        assert report.count == 8
        assert report.all_correct

    def test_report_is_deterministic_and_serializable(self):
        import json

        def run():
            scenario = FleetScenario(sessions=5, requests_per_session=2, seed=9)
            scenario.inject_kill("edge-2", 0.5, revive_at_seconds=2.0)
            report = scenario.run()
            return report.render_markdown(), json.dumps(
                report.as_dict(), sort_keys=True
            )

        assert run() == run()

    def test_scenario_runs_once(self):
        scenario = FleetScenario(sessions=1, requests_per_session=1)
        scenario.run()
        with pytest.raises(RuntimeError):
            scenario.run()

    def test_compare_policies_runs_each(self):
        reports = compare_policies(
            policies=("round-robin", "queue-aware"),
            sessions=3,
            requests_per_session=1,
            seed=3,
        )
        assert set(reports) == {"round-robin", "queue-aware"}
        assert all(r.all_correct for r in reports.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetScenario(sessions=0)
        with pytest.raises(ValueError):
            FleetScenario(arrivals="uniform")
        with pytest.raises(ValueError):
            FleetScenario(mode="local")
        scenario = FleetScenario(sessions=1)
        with pytest.raises(KeyError):
            scenario.inject_kill("nope", 1.0)
        with pytest.raises(ValueError):
            scenario.inject_kill("edge-0", 2.0, revive_at_seconds=1.0)


@pytest.mark.fleet
class TestFleetAtScale:
    """Thousands of concurrent sessions (slow; deselect with -m 'not fleet')."""

    def test_two_thousand_sessions_all_served(self):
        scenario = FleetScenario(
            sessions=2000,
            requests_per_session=1,
            arrival_rate_per_s=400.0,
            seed=1,
        )
        report = scenario.run()
        assert report.count == 2000
        assert report.all_correct
        assert report.admission_waits > 0  # 400/s genuinely saturates
        assert {row.name for row in report.edges if row.served} == {
            spec.name for spec in scenario.specs
        }

    def test_kill_at_scale_completes_every_session(self):
        scenario = FleetScenario(
            sessions=1000,
            requests_per_session=2,
            arrival_rate_per_s=150.0,
            seed=2,
            reply_timeout=1.0,
        )
        scenario.inject_kill("edge-1", 2.0, revive_at_seconds=5.0)
        report = scenario.run()
        assert report.count == 2000
        assert report.all_correct
        keys = {(r.session, r.request_index) for r in report.records}
        assert len(keys) == 2000
