"""Tests for the parallel execution engine, task model and result cache."""

import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.exec import (
    ExecutionEngine,
    ResultCache,
    Task,
    TaskError,
    execute_task,
    source_fingerprint,
    task_cache_key,
)
from repro.obs import MetricsRegistry, collect_metrics, to_prometheus_text

PROBE = "repro.exec.tasks.session_probe"

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def probe_task(key="probe", **overrides):
    kwargs = {"model_name": "smallnet", "bandwidth_mbps": 30.0}
    kwargs.update(overrides)
    return Task.make(key, PROBE, kwargs)


class TestTask:
    def test_make_and_resolve(self):
        task = probe_task()
        assert task.resolve().__name__ == "session_probe"
        assert task.kwargs_dict()["model_name"] == "smallnet"

    def test_kwargs_order_canonical(self):
        a = Task.make("k", PROBE, {"x": 1, "y": 2})
        b = Task.make("k", PROBE, {"y": 2, "x": 1})
        assert a == b

    def test_unknown_function_raises(self):
        with pytest.raises(TaskError):
            Task.make("k", "repro.exec.tasks.no_such_fn", {}).resolve()

    def test_execute_collects_registries(self):
        outcome = execute_task(probe_task())
        assert outcome.key == "probe"
        assert outcome.payload.total_seconds > 0
        assert outcome.wall_seconds > 0
        assert not outcome.cached
        assert len(outcome.registries) == 1
        assert len(outcome.registries[0]) > 0

    def test_execute_shields_outer_collectors(self):
        with collect_metrics() as registries:
            execute_task(probe_task())
        assert registries == []


class TestRegistryPickling:
    def test_roundtrip_preserves_series(self):
        outcome = execute_task(probe_task())
        registry = outcome.registries[0]
        clone = pickle.loads(pickle.dumps(registry))
        assert to_prometheus_text(clone) == to_prometheus_text(registry)

    def test_clock_restored(self):
        registry = MetricsRegistry()
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.clock() == 0.0


class TestCacheKey:
    def test_stable_for_equal_tasks(self):
        assert task_cache_key(probe_task()) == task_cache_key(probe_task())

    def test_changes_with_kwargs(self):
        assert task_cache_key(probe_task()) != task_cache_key(
            probe_task(bandwidth_mbps=4.0)
        )

    def test_independent_of_task_key(self):
        # The key names the section; the cache address is content only.
        assert task_cache_key(probe_task(key="a")) == task_cache_key(
            probe_task(key="b")
        )

    def test_source_fingerprint_stable(self):
        assert source_fingerprint() == source_fingerprint()

    def test_set_kwargs_keyed_canonically(self):
        # Two sets with different construction (and so likely different
        # iteration) orders must produce one key.
        a = probe_task(tags={"alpha", "beta", "gamma"})
        b = probe_task(tags={"gamma", "beta", "alpha"})
        assert task_cache_key(a) == task_cache_key(b)
        assert task_cache_key(a) == task_cache_key(
            probe_task(tags=frozenset({"beta", "gamma", "alpha"}))
        )

    def test_unorderable_set_kwargs_rejected(self):
        with pytest.raises(TypeError, match="order-comparable"):
            task_cache_key(probe_task(tags={1, "a"}))


HASHSEED_KEY_SCRIPT = """\
import sys

sys.path.insert(0, sys.argv[1])
from repro.exec import Task, task_cache_key

task = Task.make(
    "k",
    "repro.exec.tasks.session_probe",
    {
        "tags": {"alpha", "beta", "gamma", "delta", "epsilon", "zeta"},
        "names": frozenset({"x", "y", "z", "w"}),
        "nested": ((1, 2), ("a", ("b", "c"))),
    },
)
print(task_cache_key(task))
"""


class TestCacheKeyDeterminism:
    """String hash randomization must never leak into cache keys."""

    @staticmethod
    def _key_under_hashseed(hashseed):
        proc = subprocess.run(
            [sys.executable, "-c", HASHSEED_KEY_SCRIPT, SRC_DIR],
            env={"PYTHONHASHSEED": hashseed, "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            check=True,
        )
        return proc.stdout.strip()

    def test_set_and_nested_tuple_kwargs_stable_across_interpreters(self):
        key_a = self._key_under_hashseed("1")
        key_b = self._key_under_hashseed("2")
        assert key_a == key_b
        assert len(key_a) == 64  # a full sha256 hex digest came back


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        task = probe_task()
        assert cache.load(task) is None
        outcome = execute_task(task)
        cache.store(task, outcome)
        hit = cache.load(task)
        assert hit is not None
        assert hit.cached
        assert hit.payload.total_seconds == outcome.payload.total_seconds
        # Cached outcomes keep the original compute cost.
        assert hit.wall_seconds == outcome.wall_seconds

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        task = probe_task()
        cache.store(task, execute_task(task))
        [path] = [
            os.path.join(root, name)
            for root, _, names in os.walk(tmp_path)
            for name in names
        ]
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.load(task) is None
        assert not os.path.exists(path)  # corrupt entries are dropped

    def test_purge_and_stats(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        task = probe_task()
        cache.store(task, execute_task(task))
        assert cache.stats()["entries"] == 1
        cache.purge()
        assert cache.stats()["entries"] == 0

    def test_stats_excludes_inflight_tmp_files(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        task = probe_task()
        cache.store(task, execute_task(task))
        shard = next(p for p in tmp_path.iterdir() if p.is_dir())
        (shard / ".tmp-abc123.pkl").write_bytes(b"half-written entry")
        stats = cache.stats()
        assert stats["entries"] == 1
        # glob("*.pkl") may also match the planted dotfile (and directory
        # order is arbitrary), so pick the real entry by name
        entry = next(
            p for p in shard.glob("*.pkl") if not p.name.startswith(".")
        )
        assert stats["bytes"] == entry.stat().st_size

    def test_stats_tolerates_concurrently_unlinked_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        task = probe_task()
        cache.store(task, execute_task(task))
        # A dangling symlink is globbed like a real entry but its stat()
        # raises FileNotFoundError — exactly what a concurrent purge or
        # os.replace produces between the glob and the stat.
        (tmp_path / "vanished.pkl").symlink_to(tmp_path / "no-such-file.pkl")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0


class TestEngine:
    def test_duplicate_keys_rejected(self):
        with pytest.raises(TaskError):
            ExecutionEngine().run([probe_task(), probe_task()])

    def test_serial_run(self):
        engine = ExecutionEngine(jobs=1)
        outcomes = engine.run([probe_task("a"), probe_task("b")])
        assert [o.key for o in outcomes] == ["a", "b"]
        assert engine.last_run.cache_misses == 2

    def test_parallel_matches_serial(self):
        tasks = [probe_task("a"), probe_task("b", bandwidth_mbps=4.0)]
        serial = ExecutionEngine(jobs=1).run(tasks)
        parallel = ExecutionEngine(jobs=2).run(
            [probe_task("a"), probe_task("b", bandwidth_mbps=4.0)]
        )
        for left, right in zip(serial, parallel):
            assert left.payload.total_seconds == right.payload.total_seconds
            assert [to_prometheus_text(r) for r in left.registries] == [
                to_prometheus_text(r) for r in right.registries
            ]

    def test_engine_announces_registries_in_task_order(self):
        tasks = [probe_task("a"), probe_task("b", bandwidth_mbps=4.0)]
        with collect_metrics() as registries:
            outcomes = ExecutionEngine(jobs=1).run(tasks)
        expected = [r for o in outcomes for r in o.registries]
        assert [to_prometheus_text(r) for r in registries] == [
            to_prometheus_text(r) for r in expected
        ]

    def test_cached_second_run(self, tmp_path):
        tasks = lambda: [probe_task("a")]  # noqa: E731
        engine = ExecutionEngine(jobs=1, cache=ResultCache(str(tmp_path)))
        first = engine.run(tasks())
        assert engine.last_run.cache_hits == 0
        second = engine.run(tasks())
        assert engine.last_run.cache_hits == 1
        assert second[0].cached
        assert second[0].payload.total_seconds == first[0].payload.total_seconds
        assert second[0].wall_seconds == first[0].wall_seconds

    def test_cached_run_still_announces_registries(self, tmp_path):
        engine = ExecutionEngine(jobs=1, cache=ResultCache(str(tmp_path)))
        engine.run([probe_task("a")])
        with collect_metrics() as registries:
            engine.run([probe_task("a")])
        assert len(registries) == 1

    def test_pool_fails_fast_on_task_error(self, tmp_path):
        """A failing pooled task must abort the run promptly: pending
        futures are cancelled instead of running to completion, so not
        every slow task gets to drop its marker file."""
        sleep_seconds = 0.5
        tasks = [
            Task.make("boom", "repro.exec.tasks.failing_probe", {"message": "kapow"})
        ]
        for index in range(8):
            tasks.append(
                Task.make(
                    f"slow{index}",
                    "repro.exec.tasks.slow_marker",
                    {
                        "marker_dir": str(tmp_path),
                        "name": f"marker{index}",
                        "seconds": sleep_seconds,
                    },
                )
            )
        started = time.perf_counter()
        with pytest.raises(RuntimeError, match="kapow"):
            ExecutionEngine(jobs=2).run(tasks)
        wall = time.perf_counter() - started
        markers = len(list(tmp_path.glob("marker*")))
        # Fail-slow would finish all 8 sleeps (≥ 4 × sleep_seconds at two
        # workers) and write every marker; the cancelled futures never run.
        assert markers < 8, f"all {markers} markers written — engine failed slow"
        assert wall < 8 * sleep_seconds, f"run blocked for {wall:.1f}s on failure"
