"""Continuous-batching serving: equivalence, determinism, and telemetry.

The serving loop's core contract is that batching is *invisible* in the
results: a fleet run with a :class:`~repro.serve.ServingConfig` produces
exactly the labels, scores, and snapshot kinds of the sequential run — only
the timing changes.  These tests pin that contract across the model zoo
(including GoogLeNet, whose mid split crosses inception branch-and-join
stages), pin byte-determinism of serving runs with and without mid-run edge
kills, and check the new request-path telemetry end to end.
"""

import pytest

from repro.fleet import EdgeSpec, FleetScenario, FleetScheduler, make_policy
from repro.serve import ServingConfig
from repro.sim import SeededRng, Simulator


def _run(model, *, serving=None, sessions=6, rate=16.0, seed=11,
         split_index=None, kill=None, deadline=None, requests=2,
         think=0.1, edges=1):
    config = serving
    if serving is True:
        config = ServingConfig(
            max_batch=8, batch_timeout_s=0.02, deadline_s=deadline
        )
    scenario = FleetScenario(
        model_name=model,
        edges=[EdgeSpec(name=f"edge-{i}") for i in range(edges)],
        policy="queue-aware",
        sessions=sessions,
        requests_per_session=requests,
        arrival_rate_per_s=rate,
        mean_think_seconds=think,
        mode="offload-partial",
        split_index=split_index,
        seed=seed,
        reply_timeout=120.0,
        serving=config,
    )
    if kill is not None:
        name, at, revive = kill
        scenario.inject_kill(name, at, revive_at_seconds=revive)
    return scenario, scenario.run()


def _result_key(record):
    return (
        record.session,
        record.request_index,
        record.result_label,
        record.expected_label,
        record.result_score,
        record.snapshot_kind,
    )


class TestBatchedEqualsSequential:
    @pytest.mark.parametrize("model", ["smallnet", "tinynet", "resnet-mini"])
    def test_light_models_bitwise_equal(self, model):
        _, seq = _run(model, serving=None)
        _, bat = _run(model, serving=True)
        assert seq.all_correct and bat.all_correct
        assert sorted(map(_result_key, seq.records)) == sorted(
            map(_result_key, bat.records)
        )

    def test_rear_heavy_split_bitwise_equal(self):
        # split 0 pushes every layer but the stem to the server — the
        # config where batches actually form back-to-back.
        _, seq = _run("resnet-mini", serving=None, split_index=0,
                      sessions=10, rate=48.0, think=0.05)
        _, bat = _run("resnet-mini", serving=True, split_index=0,
                      sessions=10, rate=48.0, think=0.05)
        assert seq.all_correct and bat.all_correct
        assert sorted(map(_result_key, seq.records)) == sorted(
            map(_result_key, bat.records)
        )

    @pytest.mark.serving
    @pytest.mark.parametrize("model", ["googlenet", "agenet", "gendernet"])
    def test_paper_models_bitwise_equal(self, model):
        # GoogLeNet's default mid split lands inside the inception stack,
        # so the batched rear-part forward crosses concat joins; AgeNet /
        # GenderNet cover the plain convolutional pipelines.
        _, seq = _run(model, serving=None, sessions=3, rate=16.0,
                      requests=1)
        _, bat = _run(model, serving=True, sessions=3, rate=16.0,
                      requests=1)
        assert seq.all_correct and bat.all_correct
        assert sorted(map(_result_key, seq.records)) == sorted(
            map(_result_key, bat.records)
        )

    def test_multi_edge_labels_equal_even_when_routing_differs(self):
        # With several edges the server-reported queue depth feeds the
        # queue-aware policy, so a batching fleet may legitimately *route*
        # differently than a sequential one — but every session's inference
        # results must still be identical.
        _, seq = _run("smallnet", serving=None, edges=2)
        _, bat = _run("smallnet", serving=True, edges=2)
        label_key = lambda r: (
            r.session, r.request_index, r.result_label, r.expected_label,
            r.result_score,
        )
        assert sorted(map(label_key, seq.records)) == sorted(
            map(label_key, bat.records)
        )


class TestServingDeterminism:
    def test_same_seed_replays_byte_identical(self):
        _, first = _run("resnet-mini", serving=True, split_index=0,
                        sessions=10, rate=48.0, think=0.05)
        _, second = _run("resnet-mini", serving=True, split_index=0,
                         sessions=10, rate=48.0, think=0.05)
        assert first.render_markdown() == second.render_markdown()
        assert first.serving == second.serving

    def test_mid_run_kill_replays_byte_identical(self):
        kill = ("edge-0", 0.35, 1.2)
        _, first = _run("resnet-mini", serving=True, split_index=0,
                        sessions=10, rate=48.0, think=0.05, kill=kill,
                        edges=2)
        _, second = _run("resnet-mini", serving=True, split_index=0,
                         sessions=10, rate=48.0, think=0.05, kill=kill,
                         edges=2)
        assert first.render_markdown() == second.render_markdown()
        assert first.all_correct
        # Every admitted request still completes exactly once.
        assert first.count == 20


class TestServingTelemetry:
    def test_request_path_fires_batch_metrics(self):
        scenario, report = _run(
            "resnet-mini", serving=True, split_index=0,
            sessions=12, rate=64.0, think=0.05, edges=2,
        )
        # Real batches formed on the request path, so the batched-forward
        # counter (previously only the explicit benchmark API) fired.
        metrics = scenario.sim.metrics
        forwards = sum(
            metrics.value("server_batch_forwards_total", server=name) or 0
            for name in ("edge-0", "edge-1")
        )
        assert forwards > 0
        assert report.serving is not None
        assert report.serving["batched_items"] > 0
        assert report.serving["max_batch"] >= 2
        assert report.serving["items"] == report.count
        # Serving-loop histograms observed every served item.
        items_observed = sum(
            hist.count
            for hist in (
                metrics.get("server_serving_batch_items", server=name)
                for name in ("edge-0", "edge-1")
            )
            if hist is not None
        )
        assert items_observed == report.serving["batches"]

    def test_report_without_serving_has_no_serving_block(self):
        _, report = _run("smallnet", serving=None, sessions=2, rate=8.0)
        assert report.serving is None
        assert "serving:" not in report.render_markdown()

    def test_deadline_misses_are_counted(self):
        # A 1 ms completion deadline under saturating load must be missed.
        _, report = _run(
            "resnet-mini",
            serving=ServingConfig(
                max_batch=8, batch_timeout_s=0.02, deadline_s=0.001,
                former="deadline",
            ),
            split_index=0, sessions=10, rate=64.0, think=0.05,
        )
        assert report.all_correct  # misses are accounting, not failures
        assert report.serving["deadline_misses"] > 0

    def test_queue_depth_reaches_scheduler(self):
        sim = Simulator()
        scheduler = FleetScheduler(
            sim, ["edge-0", "edge-1"],
            make_policy("queue-aware", SeededRng(0, "t")),
        )
        # Same observed latency on both; server-reported backlog must
        # steer the queue-aware policy to the empty edge.
        scheduler.complete("edge-0", 0.1)
        scheduler.complete("edge-1", 0.1)
        scheduler.observe_server_queue("edge-0", 5)
        assert scheduler.try_pick() == "edge-1"
        assert (
            sim.metrics.value("fleet_edge_server_queue_depth", edge="edge-0")
            == 5
        )
        # A revival forgets the stale depth along with the window.
        scheduler.mark_dead("edge-0")
        scheduler.mark_alive("edge-0")
        assert scheduler.edge("edge-0").server_queue_depth == 0


class TestServingThroughput:
    def test_batching_beats_sequential_at_saturation(self):
        # The tentpole claim in miniature: at saturating offered load with
        # a rear-heavy split, coalesced forwards finish the same work in
        # less virtual time *and* with a lower p99.
        _, seq = _run("resnet-mini", serving=None, split_index=0,
                      sessions=24, rate=64.0, think=0.05, seed=7)
        _, bat = _run("resnet-mini", serving=True, split_index=0,
                      sessions=24, rate=64.0, think=0.05, seed=7)
        assert sorted(map(_result_key, seq.records)) == sorted(
            map(_result_key, bat.records)
        )
        seq_rps = seq.count / seq.makespan_seconds
        bat_rps = bat.count / bat.makespan_seconds
        assert bat_rps > seq_rps
        assert bat.p99_latency < seq.p99_latency
