"""A day in the life: one long narrative integration scenario.

A single simulated client drives everything the system offers, in one
continuous timeline, with every intermediate result checked:

  t=0    attach to edge-A (pre-installed); start the GoogLeNet-mini app;
         pre-sending begins
  click  #1 arrives before the ACK on a slow link -> model rides along
  click  #2 after ACK -> tiny delta snapshot (session cache)
  fade   the link drops to 1 Mbps; click #3 still completes (delta)
  move   handover to edge-B, which has NO offloading system
  probe  edge-B: not installed -> ship VM overlay (system + model)
  click  #4 offloads to edge-B; the stale session baseline from edge-A
         triggers the transparent full-snapshot fallback
  click  #5 -> delta against edge-B's fresh session

Uses smallnet-scale models so the whole story runs in milliseconds of
wall time while exercising the same machinery as the paper-scale runs.
"""

import numpy as np
import pytest

from repro.core import protocol
from repro.core.client import ClientAgent
from repro.core.server import EdgeServer
from repro.core.snapshot import CaptureOptions
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import NetemProfile, Topology
from repro.netsim.variability import BandwidthSchedule
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.vmsynth import DiskImage, build_overlay
from repro.vmsynth.synthesis import deliver_overlay
from repro.web.app import make_inference_app
from repro.web.values import TypedArray


def profile(mbps):
    return NetemProfile(bandwidth_bps=mbps * 1e6, latency_s=0.001)


@pytest.fixture(scope="module")
def story():
    """Run the whole narrative once; tests assert on the transcript."""
    sim = Simulator()
    model = smallnet()
    costs = network_costs(model.network)
    rng = SeededRng(0, "story")
    expected = {}

    topology = Topology(sim)
    topology.add_edge_host("edge-A", profile(2.0))  # slow enough to race ACK
    topology.add_edge_host("edge-B", profile(30.0))
    server_a = EdgeServer(sim, Device(sim, edge_server_x86()), "edge-A")
    server_b = EdgeServer(
        sim, Device(sim, edge_server_x86()), "edge-B", installed=False
    )

    client_end, server_end = topology.attach("edge-A")
    server_a.serve(server_end)
    client = ClientAgent(
        sim,
        Device(sim, odroid_xu4_client()),
        client_end,
        capture_options=CaptureOptions(include_canvas_pixels=True),
    )
    client.start_app(make_inference_app(model), presend=True)
    pixels = TypedArray(rng.uniform_array((3, 32, 32), 0, 255))
    client.runtime.globals["pending_pixels"] = pixels
    client.runtime.dispatch("click", "load_btn")
    client.mark_offload_point("click", "infer_btn")
    expected["label"] = int(np.argmax(model.inference(pixels.data)))

    transcript = {"offloads": [], "events": []}

    def offload():
        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        process = sim.spawn(client.offload(event, server_costs=costs))
        sim.run_until(lambda: process.triggered)
        assert process.ok, process.value
        outcome = process.value
        transcript["offloads"].append(
            {
                "at": sim.now,
                "kind": outcome.snapshot.kind,
                "delivery_bytes": outcome.delivery_bytes,
                "label": client.runtime.globals.get("result_label"),
            }
        )
        return outcome

    # click #1: immediately, before the slow upload can finish
    offload()
    transcript["events"].append(("before-ack-offload", sim.now))
    sim.run()  # drain any remaining presend traffic

    # click #2: steady state on edge-A
    offload()

    # the link fades to 1 Mbps; click #3
    topology.set_profile("edge-A", profile(1.0))
    offload()
    transcript["events"].append(("fade-survived", sim.now))

    # handover to edge-B (no offloading system there)
    client_end, server_end = topology.handover("edge-B")
    server_b.serve(server_end)
    client.endpoint = client_end
    client.presend = None
    probe_reply = []

    def probe():
        client_end.send(protocol.PING, None)
        message = yield client_end.recv_kind(protocol.PONG)
        probe_reply.append(message.payload)

    sim.spawn(probe())
    sim.run()
    transcript["capability"] = probe_reply[0].has_offloading_system

    overlay = build_overlay(DiskImage.ubuntu_base(), [model])
    install = sim.spawn(deliver_overlay(client_end, overlay))
    sim.run_until(lambda: install.triggered)
    transcript["events"].append(("installed-edge-B", sim.now))

    # click #4: stale session baseline from edge-A -> fallback to full
    offload()
    # click #5: now a delta against edge-B's session
    offload()

    transcript["expected_label"] = expected["label"]
    transcript["server_a"] = server_a
    transcript["server_b"] = server_b
    transcript["client"] = client
    return transcript


class TestNarrative:
    def test_five_offloads_completed(self, story):
        assert len(story["offloads"]) == 5

    def test_every_offload_computed_the_right_label(self, story):
        for record in story["offloads"]:
            assert record["label"] == story["expected_label"]

    def test_first_offload_shipped_the_model(self, story):
        first = story["offloads"][0]
        assert first["kind"] == "full"
        assert first["delivery_bytes"] > 0

    def test_second_and_third_were_deltas(self, story):
        assert story["offloads"][1]["kind"] == "delta"
        assert story["offloads"][2]["kind"] == "delta"
        assert story["offloads"][1]["delivery_bytes"] == 0

    def test_edge_b_reported_uninstalled_then_installed(self, story):
        assert story["capability"] is False
        assert story["server_b"].installed is True
        assert story["server_b"].install_log  # timestamped installation

    def test_handover_fell_back_to_full_then_delta(self, story):
        assert story["offloads"][3]["kind"] == "full"
        assert story["offloads"][4]["kind"] == "delta"
        # The fallback was transparent: no deliveries needed (the overlay
        # bundled the model).
        assert story["offloads"][3]["delivery_bytes"] == 0

    def test_request_distribution_across_servers(self, story):
        assert story["server_a"].served_requests == 3
        assert story["server_b"].served_requests == 2
        # Edge-A also reported the stale-session error... no: the fallback
        # happened against edge-B.  Edge-B saw exactly one such error.
        assert any(
            "no cached session" in error for error in story["server_b"].errors
        )

    def test_fade_did_not_break_anything(self, story):
        events = dict(story["events"])
        assert "fade-survived" in events
