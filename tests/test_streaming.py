"""Tests for the streaming-video workload."""

import pytest

from repro.eval.streaming import FrameRecord, StreamReport, run_stream


class TestStreamMechanics:
    @pytest.fixture(scope="class")
    def report(self):
        return run_stream("smallnet", frames=5, fps=5.0, mode="offload")

    def test_all_frames_processed(self, report):
        assert len(report.records) == 5
        assert [record.index for record in report.records] == list(range(5))

    def test_every_frame_classified_correctly(self, report):
        assert report.all_correct

    def test_first_frame_full_then_deltas(self, report):
        kinds = [record.snapshot_kind for record in report.records]
        assert kinds[0] == "full"
        assert all(kind == "delta" for kind in kinds[1:])

    def test_smallnet_keeps_up_at_5fps(self, report):
        assert report.keeps_up
        assert report.mean_latency < 0.2

    def test_latency_positive_and_ordered(self, report):
        for record in report.records:
            assert record.latency_seconds > 0
        times = [record.completed_at for record in report.records]
        assert times == sorted(times)

    def test_client_mode_no_snapshots(self):
        report = run_stream("smallnet", frames=3, fps=10.0, mode="client")
        assert all(record.snapshot_kind == "" for record in report.records)
        assert report.all_correct

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_stream("smallnet", mode="teleport")

    def test_deterministic(self):
        a = run_stream("smallnet", frames=3, fps=5.0, mode="offload")
        b = run_stream("smallnet", frames=3, fps=5.0, mode="offload")
        assert a.mean_latency == pytest.approx(b.mean_latency, rel=1e-9)


class TestBacklog:
    def test_overloaded_stream_grows_latency(self):
        # Source faster than processing: later frames wait in line.
        report = run_stream("smallnet", frames=6, fps=200.0, mode="offload")
        latencies = [record.latency_seconds for record in report.records]
        assert latencies[-1] > latencies[1]
        assert not report.keeps_up

    def test_report_helpers_on_empty(self):
        empty = StreamReport(mode="offload", model_name="x", source_fps=1.0)
        assert empty.achieved_fps == 0.0
        assert empty.mean_latency == 0.0
        assert empty.all_correct
