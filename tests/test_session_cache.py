"""Tests for server-side session caching (the paper's §VI future work).

After the first offload, the server keeps the restored browser; follow-up
offloads send deltas against the fingerprint the server returned, and the
client falls back to a full snapshot when the session is gone.
"""

import pytest

from repro.core.client import ClientAgent
from repro.core.server import EdgeServer
from repro.core.snapshot import CaptureOptions
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import Channel, NetemProfile
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.web.app import make_inference_app
from repro.web.values import TypedArray


@pytest.fixture
def world():
    sim = Simulator()
    channel = Channel(sim, "client", "edge", NetemProfile.wifi_30mbps())
    server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge")
    server.serve(channel.end_b)
    client = ClientAgent(
        sim,
        Device(sim, odroid_xu4_client()),
        channel.end_a,
        capture_options=CaptureOptions(include_canvas_pixels=True),
    )
    model = smallnet()
    client.start_app(make_inference_app(model), presend=True)
    client.runtime.globals["pending_pixels"] = TypedArray(
        SeededRng(0, "px").uniform_array((3, 32, 32), 0, 255)
    )
    client.runtime.dispatch("click", "load_btn")
    client.mark_offload_point("click", "infer_btn")
    sim.run()  # finish pre-sending
    return sim, client, server, model


def offload_once(sim, client, model, **kwargs):
    client.runtime.dispatch("click", "infer_btn")
    event = client.take_intercepted()
    process = sim.spawn(
        client.offload(event, server_costs=network_costs(model.network), **kwargs)
    )
    sim.run()
    assert process.ok, process.value
    return process.value


class TestSessionCache:
    def test_first_offload_is_full_then_delta(self, world):
        sim, client, server, model = world
        first = offload_once(sim, client, model)
        second = offload_once(sim, client, model)
        assert first.snapshot.kind == "full"
        assert second.snapshot.kind == "delta"

    def test_repeat_delta_is_tiny(self, world):
        sim, client, server, model = world
        first = offload_once(sim, client, model)
        second = offload_once(sim, client, model)
        # Nothing changed between inferences: the delta is ~a header.
        assert second.snapshot.size_bytes < first.snapshot.size_bytes / 100
        assert second.total_seconds < first.total_seconds

    def test_delta_offload_still_correct(self, world):
        sim, client, server, model = world
        offload_once(sim, client, model)
        offload_once(sim, client, model)
        text = client.runtime.document.get("result").text_content
        assert "label" in text
        assert server.served_requests == 2

    def test_new_image_travels_in_delta(self, world):
        sim, client, server, model = world
        offload_once(sim, client, model)
        # The user loads a different photo.
        client.runtime.globals["pending_pixels"] = TypedArray(
            SeededRng(1, "px2").uniform_array((3, 32, 32), 0, 255)
        )
        client.runtime.dispatch("click", "load_btn")
        second = offload_once(sim, client, model)
        assert second.snapshot.kind == "delta"
        # The delta carries the new canvas pixels (big), little else.
        assert second.snapshot.feature_bytes > 10_000
        # Server computed on the NEW image: its canvas matches the client's.
        server_canvas = server.last_runtime.document.get("canvas").image_data
        client_canvas = client.runtime.document.get("canvas").image_data
        assert server_canvas.equals(client_canvas)

    def test_session_loss_falls_back_to_full(self, world):
        sim, client, server, model = world
        offload_once(sim, client, model)
        server._sessions.clear()  # server restarted / evicted the session
        recovered = offload_once(sim, client, model)
        assert recovered.snapshot.kind == "full"
        assert server.served_requests == 2

    def test_cache_disabled_always_full(self, world):
        sim, client, server, model = world
        offload_once(sim, client, model)
        second = offload_once(sim, client, model, use_session_cache=False)
        assert second.snapshot.kind == "full"

    def test_server_cache_disabled_never_returns_fingerprint(self):
        sim = Simulator()
        channel = Channel(sim, "client", "edge", NetemProfile.wifi_30mbps())
        server = EdgeServer(
            sim, Device(sim, edge_server_x86()), name="edge", session_cache=False
        )
        server.serve(channel.end_b)
        client = ClientAgent(
            sim,
            Device(sim, odroid_xu4_client()),
            channel.end_a,
            capture_options=CaptureOptions(include_canvas_pixels=True),
        )
        model = smallnet()
        client.start_app(make_inference_app(model), presend=True)
        client.runtime.globals["pending_pixels"] = TypedArray(
            SeededRng(0, "px").uniform_array((3, 32, 32), 0, 255)
        )
        client.runtime.dispatch("click", "load_btn")
        client.mark_offload_point("click", "infer_btn")
        sim.run()
        first = offload_once(sim, client, model)
        second = offload_once(sim, client, model)
        assert second.snapshot.kind == "full"
        assert client.session_baselines == {}

    def test_fingerprint_travels_with_realistic_size(self, world):
        sim, client, server, model = world
        offload_once(sim, client, model)
        baseline = client.session_baselines["smallnet-app"]
        assert 100 < baseline.size_bytes < 10_000

    def test_lru_eviction_bounds_memory(self):
        """A capacity-1 server keeps only the most recent session."""
        sim = Simulator()
        server = EdgeServer(
            sim,
            Device(sim, edge_server_x86()),
            name="edge",
            session_cache_capacity=1,
        )
        clients = []
        for index in range(2):
            channel = Channel(sim, f"client-{index}", "edge", NetemProfile.wifi_30mbps())
            server.serve(channel.end_b)
            client = ClientAgent(
                sim,
                Device(sim, odroid_xu4_client()),
                channel.end_a,
                capture_options=CaptureOptions(include_canvas_pixels=True),
            )
            model = smallnet(seed=index)
            client.start_app(make_inference_app(model), presend=True)
            client.runtime.globals["pending_pixels"] = TypedArray(
                SeededRng(index, "px").uniform_array((3, 32, 32), 0, 255)
            )
            client.runtime.dispatch("click", "load_btn")
            client.mark_offload_point("click", "infer_btn")
            clients.append((client, model))
        sim.run()
        # Client 0 offloads, then client 1: client 0's session is evicted.
        offload_once(sim, *clients[0])
        offload_once(sim, *clients[1])
        assert server.evicted_sessions == 1
        assert len(server._sessions) == 1
        # Client 0's next offload transparently falls back to full.
        recovered = offload_once(sim, *clients[0])
        assert recovered.snapshot.kind == "full"

    def test_invalid_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            EdgeServer(
                sim,
                Device(sim, edge_server_x86()),
                session_cache_capacity=0,
            )

    def test_dead_local_changes_not_shipped(self, world):
        sim, client, server, model = world
        offload_once(sim, client, model)
        # Local-only state the inference handler never reads.
        client.runtime.globals["ui_theme"] = "dark"
        second = offload_once(sim, client, model)
        assert "ui_theme" not in second.snapshot.program


class TestCacheTelemetry:
    """The hit/miss/eviction counters expose the LRU cache's behaviour."""

    def _metric(self, sim, name, **labels):
        return sim.metrics.value(name, **labels)

    def test_hits_and_size_gauge(self, world):
        sim, client, server, model = world
        offload_once(sim, client, model)          # full: neither hit nor miss
        offload_once(sim, client, model)          # delta: cache hit
        assert self._metric(sim, "server_session_cache_hits_total", server="edge") == 1
        assert self._metric(sim, "server_session_cache_misses_total", server="edge") == 0
        assert self._metric(sim, "server_session_cache_size", server="edge") == 1

    def test_eviction_past_capacity_counted(self):
        sim = Simulator()
        server = EdgeServer(
            sim,
            Device(sim, edge_server_x86()),
            name="edge",
            session_cache_capacity=1,
        )
        clients = []
        for index in range(2):
            channel = Channel(
                sim, f"client-{index}", "edge", NetemProfile.wifi_30mbps()
            )
            server.serve(channel.end_b)
            client = ClientAgent(
                sim,
                Device(sim, odroid_xu4_client()),
                channel.end_a,
                capture_options=CaptureOptions(include_canvas_pixels=True),
            )
            model = smallnet(seed=index)
            client.start_app(make_inference_app(model), presend=True)
            client.runtime.globals["pending_pixels"] = TypedArray(
                SeededRng(index, "px").uniform_array((3, 32, 32), 0, 255)
            )
            client.runtime.dispatch("click", "load_btn")
            client.mark_offload_point("click", "infer_btn")
            clients.append((client, model))
        sim.run()
        offload_once(sim, *clients[0])
        offload_once(sim, *clients[1])  # evicts client 0's session
        value = lambda name: sim.metrics.value(name, server="edge")
        assert value("server_session_cache_evictions_total") == 1
        assert value("server_session_cache_size") == 1
        # Client 0's delta now misses; the transparent fallback re-fills
        # the cache, evicting client 1 in turn.
        recovered = offload_once(sim, *clients[0])
        assert recovered.snapshot.kind == "full"
        assert value("server_session_cache_misses_total") == 1
        assert value("server_session_cache_evictions_total") == 2
        assert (
            sim.metrics.value(
                "client_session_fallbacks_total", client="client-0"
            )
            == 1
        )

    def test_session_loss_fallback_counted(self, world):
        sim, client, server, model = world
        offload_once(sim, client, model)
        server.restart()
        recovered = offload_once(sim, client, model)
        assert recovered.snapshot.kind == "full"
        assert sim.metrics.value("server_restarts_total", server="edge") == 1
        assert sim.metrics.value("server_session_cache_misses_total", server="edge") == 1
        assert sim.metrics.value("client_session_fallbacks_total", client="client") == 1
