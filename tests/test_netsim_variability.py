"""Tests for time-varying network shaping."""

import pytest

from repro.netsim import Channel, NetemProfile
from repro.netsim.variability import BandwidthSchedule, random_walk_schedule
from repro.sim import SeededRng, Simulator


def profile(mbps: float) -> NetemProfile:
    return NetemProfile(bandwidth_bps=mbps * 1e6, latency_s=0.001)


class TestBandwidthSchedule:
    def test_profile_at_piecewise_lookup(self):
        schedule = BandwidthSchedule(
            steps=((0.0, profile(30)), (10.0, profile(5)), (20.0, profile(50)))
        )
        assert schedule.profile_at(0.0).bandwidth_bps == 30e6
        assert schedule.profile_at(9.9).bandwidth_bps == 30e6
        assert schedule.profile_at(10.0).bandwidth_bps == 5e6
        assert schedule.profile_at(25.0).bandwidth_bps == 50e6

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            BandwidthSchedule(steps=())

    def test_unordered_steps_rejected(self):
        with pytest.raises(ValueError):
            BandwidthSchedule(steps=((5.0, profile(1)), (1.0, profile(2))))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            BandwidthSchedule(steps=((-1.0, profile(1)),))

    def test_apply_reshapes_channel_over_time(self):
        sim = Simulator()
        channel = Channel(sim, "a", "b", profile(30))
        schedule = BandwidthSchedule(steps=((0.0, profile(30)), (5.0, profile(2))))
        schedule.apply(sim, channel.set_profile)
        sim.run(until=1.0)
        assert channel.link_ab.profile.bandwidth_bps == 30e6
        sim.run(until=6.0)
        assert channel.link_ab.profile.bandwidth_bps == 2e6

    def test_reshape_affects_future_transfers_only(self):
        sim = Simulator()
        channel = Channel(sim, "a", "b", profile(8))  # 1 MB/s
        schedule = BandwidthSchedule(steps=((0.5, profile(80)),))
        schedule.apply(sim, channel.set_profile)
        first = channel.end_a.send("EARLY", size_bytes=1_000_000)
        sim.run()
        # Started before the reshape: finishes at the old rate (~1s).
        assert first.value.delivered_at == pytest.approx(1.0, abs=0.01)
        # Sent after the reshape: 10x faster serialization.
        second = channel.end_a.send("LATE", size_bytes=1_000_000)
        sim.run()
        assert second.value.delivered_at == pytest.approx(1.102, abs=0.01)


class TestRandomWalk:
    def test_deterministic_per_seed(self):
        a = random_walk_schedule(SeededRng(1, "w"))
        b = random_walk_schedule(SeededRng(1, "w"))
        assert a.steps == b.steps

    def test_bounds_respected(self):
        schedule = random_walk_schedule(
            SeededRng(2, "w"), min_mbps=3.0, max_mbps=40.0, fade_mbps=3.0
        )
        for _time, step_profile in schedule.steps:
            assert 3.0e6 <= step_profile.bandwidth_bps <= 40.0e6

    def test_duration_and_step(self):
        schedule = random_walk_schedule(SeededRng(3, "w"), duration_s=30, step_s=10)
        times = [time for time, _ in schedule.steps]
        assert times == [0.0, 10.0, 20.0, 30.0]

    def test_fades_occur(self):
        schedule = random_walk_schedule(
            SeededRng(4, "w"),
            duration_s=500,
            fade_probability=0.3,
            fade_mbps=1.0,
            min_mbps=1.0,
        )
        rates = [p.bandwidth_bps for _, p in schedule.steps]
        assert min(rates) == pytest.approx(1e6)
