"""Tests for the comparison baselines (specialized service, MAUI-style)."""

import numpy as np
import pytest

from repro.core.baselines import (
    MauiServer,
    SpecializedEdgeService,
    maui_exec,
    maui_install,
    specialized_request,
)
from repro.devices import Device, edge_server_x86
from repro.netsim import Channel, NetemProfile
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator


@pytest.fixture
def world():
    sim = Simulator()
    channel = Channel(sim, "client", "edge", NetemProfile.wifi_30mbps())
    device = Device(sim, edge_server_x86())
    return sim, channel, device


@pytest.fixture
def pixels():
    return SeededRng(0, "px").uniform_array((3, 32, 32), 0, 255)


def run(sim, process_gen):
    process = sim.spawn(process_gen)
    sim.run_until(lambda: process.triggered)
    if process.ok is False:
        raise process.value
    return process.value


class TestSpecializedService:
    def test_serves_its_own_task(self, world, pixels):
        sim, channel, device = world
        model = smallnet()
        service = SpecializedEdgeService(sim, device, model, service="smallnet")
        service.serve(channel.end_b)
        label, elapsed = run(
            sim, specialized_request(channel.end_a, "smallnet", pixels)
        )
        assert label == int(np.argmax(model.inference(pixels)))
        assert elapsed > 0
        assert service.requests_served == 1

    def test_refuses_other_apps(self, world, pixels):
        sim, channel, device = world
        service = SpecializedEdgeService(sim, device, smallnet(), service="smallnet")
        service.serve(channel.end_b)
        with pytest.raises(RuntimeError, match="only provides"):
            run(sim, specialized_request(channel.end_a, "face-recognition", pixels))
        assert service.refused == 1

    def test_latency_is_transfer_plus_exec(self, world, pixels):
        sim, channel, device = world
        model = smallnet()
        service = SpecializedEdgeService(sim, device, model, service="smallnet")
        service.serve(channel.end_b)
        _label, elapsed = run(
            sim, specialized_request(channel.end_a, "smallnet", pixels)
        )
        from repro.nn.cost import network_costs
        from repro.nn.tensor import text_serialized_bytes

        exec_seconds = device.forward_seconds(network_costs(model.network))
        transfer = channel.link_ab.profile.transfer_seconds(
            text_serialized_bytes((3, 32, 32))
        )
        assert elapsed == pytest.approx(exec_seconds + transfer, rel=0.2)


class TestMauiServer:
    def test_exec_requires_installation(self, world, pixels):
        sim, channel, device = world
        maui = MauiServer(sim, device)
        maui.serve(channel.end_b)
        with pytest.raises(RuntimeError, match="not installed"):
            run(sim, maui_exec(channel.end_a, "smallnet", pixels))
        assert maui.refused == 1

    def test_install_then_exec(self, world, pixels):
        sim, channel, device = world
        model = smallnet()
        maui = MauiServer(sim, device)
        maui.serve(channel.end_b)
        install_seconds = run(sim, maui_install(channel.end_a, "smallnet", model))
        # Executable + model cross the 30 Mbps link: a visible cost.
        assert install_seconds > (model.total_bytes * 8) / 30e6
        label, _elapsed = run(sim, maui_exec(channel.end_a, "smallnet", pixels))
        assert label == int(np.argmax(model.inference(pixels)))
        assert maui.requests_served == 1

    def test_new_server_needs_reinstall(self, world, pixels):
        sim, channel, device = world
        model = smallnet()
        first = MauiServer(sim, device, name="maui-A")
        first.serve(channel.end_b)
        run(sim, maui_install(channel.end_a, "smallnet", model))
        run(sim, maui_exec(channel.end_a, "smallnet", pixels))
        # Handover: a fresh MAUI server knows nothing about the app.
        channel2 = Channel(sim, "client", "edge-B", NetemProfile.wifi_30mbps())
        second = MauiServer(sim, Device(sim, edge_server_x86()), name="maui-B")
        second.serve(channel2.end_b)
        with pytest.raises(RuntimeError, match="not installed"):
            run(sim, maui_exec(channel2.end_a, "smallnet", pixels))

    def test_multiple_apps_installable(self, world, pixels):
        sim, channel, device = world
        maui = MauiServer(sim, device)
        maui.serve(channel.end_b)
        run(sim, maui_install(channel.end_a, "app-a", smallnet(seed=1)))
        run(sim, maui_install(channel.end_a, "app-b", smallnet(seed=2)))
        assert set(maui.installed_apps) == {"app-a", "app-b"}


class TestComparisonStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        from repro.eval.ablations import baseline_comparison_study

        return baseline_comparison_study("agenet")

    def test_only_snapshots_are_general(self, rows):
        by_approach = {row.approach: row for row in rows}
        snapshot = by_approach["snapshot offloading"]
        assert snapshot.any_app and snapshot.stateless_handover
        for row in rows:
            if row is not snapshot:
                assert not row.any_app
                assert not row.stateless_handover

    def test_snapshot_steady_state_competitive(self, rows):
        by_approach = {row.approach: row for row in rows}
        snapshot = by_approach["snapshot offloading"].steady_state_seconds
        specialized = by_approach["specialized service"].steady_state_seconds
        # "comparable to running the app entirely on the server": within 25%
        assert snapshot < 1.25 * specialized

    def test_maui_first_use_pays_installation(self, rows):
        by_approach = {row.approach: row for row in rows}
        maui = by_approach["MAUI-style (pre-installed app)"]
        assert maui.first_use_seconds > 3 * maui.steady_state_seconds
