"""Fault-injection suite: edges die mid-session at chosen protocol points.

Each test runs the same seeded workload twice: once healthy (to locate the
exact virtual-time window of the phase under attack from the per-request
phase durations — everything is deterministic, so the windows replay
exactly), then again with the kill injected inside that window.  The
invariants, whichever point the edge dies at:

* the scheduler detects the death through the client's reply timeout (or
  the refused reconnect) and fails the work over to the next-best edge;
* no admitted request is dropped — the report holds every (session,
  request) pair — and none is applied twice on the client;
* the inference *results* are bitwise identical to a healthy run: same
  label and the exact same confidence float for every request.
"""

import pytest

from repro.fleet import EdgeSpec, FleetScenario
from repro.netsim import NetemProfile

#: slow enough that transfer phases are wide windows to aim kills into
SLOW = NetemProfile(bandwidth_bps=4e6, latency_s=0.002)


def two_edges():
    return [EdgeSpec("edge-0", profile=SLOW), EdgeSpec("edge-1", profile=SLOW)]


def make_scenario(**overrides):
    kwargs = dict(
        edges=two_edges(),
        sessions=1,
        requests_per_session=1,
        seed=11,
        reply_timeout=2.0,
    )
    kwargs.update(overrides)
    return FleetScenario(**kwargs)


def result_fingerprint(report):
    """Everything the user saw, keyed by (session, request index)."""
    return {
        (r.session, r.request_index): (r.result_label, r.result_score)
        for r in report.records
    }


def assert_conservation(report, expected_requests):
    """Every request served exactly once, none dropped or double-counted."""
    keys = [(r.session, r.request_index) for r in report.records]
    assert len(keys) == len(set(keys)) == expected_requests
    assert sum(row.served for row in report.edges) == expected_requests
    assert report.all_correct


class TestKillDuringUpload:
    """The edge dies while the first snapshot + model upload is in flight.

    The model files ride along with the snapshot (pre-send had no time to
    finish), so this is the paper's worst case: the server never saw the
    request, the client's reply timer is the only detector.
    """

    def test_failover_reruns_presend_on_fresh_edge(self):
        healthy = make_scenario().run()
        rec = healthy.records[0]
        assert rec.edge == "edge-0"
        assert rec.transfer_to_server_seconds > 0.1  # a real window

        scenario = make_scenario()
        kill_at = rec.issued_at + rec.transfer_to_server_seconds / 2
        scenario.inject_kill("edge-0", kill_at)
        report = scenario.run()

        assert_conservation(report, 1)
        survivor = report.records[0]
        assert survivor.edge == "edge-1"
        assert survivor.failovers == 1
        assert report.handshake_misses == 2  # upload re-ran on edge-1
        # the reply timeout is visible in the latency, but bounded by it
        assert survivor.latency_seconds > scenario.reply_timeout
        assert survivor.latency_seconds < scenario.reply_timeout + 2 * (
            rec.latency_seconds + 0.1
        )
        assert result_fingerprint(report) == result_fingerprint(healthy)

    def test_handshake_hit_skips_reupload_when_store_survives(self):
        # Prime edge-1 with traffic first (two sessions spread out), then
        # kill edge-0 mid-upload: the failover lands on an edge that
        # already holds the model, so the digest handshake *hits* and only
        # the snapshot is retransmitted.
        def scenario():
            return make_scenario(sessions=3, requests_per_session=1, seed=29)

        healthy = scenario().run()
        by_edge = {}
        for rec in healthy.records:
            by_edge.setdefault(rec.edge, []).append(rec)
        assert set(by_edge) == {"edge-0", "edge-1"}  # both saw traffic
        victim = max(by_edge["edge-0"], key=lambda r: r.issued_at)

        attacked = scenario()
        attacked.inject_kill(
            "edge-0",
            victim.issued_at + victim.transfer_to_server_seconds / 2,
        )
        report = attacked.run()
        assert_conservation(report, 3)
        assert report.failovers >= 1
        # no third upload: edge-1's store already matched the fingerprint
        assert report.handshake_misses == healthy.handshake_misses
        assert result_fingerprint(report) == result_fingerprint(healthy)


class TestKillBetweenRounds:
    """The edge dies while the user thinks, between partial-inference rounds.

    Nothing is in flight: the next round discovers the corpse at connect
    time (the dropped channel refuses), so failover is immediate — no
    reply-timeout penalty at all.
    """

    def test_remaining_rounds_move_without_timeout_penalty(self):
        config = dict(
            mode="offload-partial",
            requests_per_session=3,
            mean_think_seconds=1.5,
            seed=12,  # draws a real think pause between rounds 0 and 1
        )
        healthy = make_scenario(**config).run()
        assert [r.request_index for r in healthy.records] == [0, 1, 2]
        first, second = healthy.records[0], healthy.records[1]
        gap = second.issued_at - first.completed_at
        assert gap > 0.2  # a real think-time window to kill inside

        scenario = make_scenario(**config)
        scenario.inject_kill("edge-0", first.completed_at + gap / 2)
        report = scenario.run()

        assert_conservation(report, 3)
        assert report.records[0].edge == "edge-0"
        for rec in report.records[1:]:
            assert rec.edge == "edge-1"
            # EdgeDown at connect, not a reply timeout: latency stays far
            # below the timeout-detection path
            assert rec.latency_seconds < scenario.reply_timeout
        assert result_fingerprint(report) == result_fingerprint(healthy)

    def test_revived_edge_rejoins_the_fleet(self):
        config = dict(
            requests_per_session=4,
            mean_think_seconds=1.5,
            policy="round-robin",
        )
        healthy = make_scenario(**config).run()
        first = healthy.records[0]
        scenario = make_scenario(**config)
        kill_at = first.completed_at + 0.05
        scenario.inject_kill("edge-0", kill_at, revive_at_seconds=kill_at + 1.0)
        report = scenario.run()
        assert_conservation(report, 4)
        # after revival the round-robin rotation reaches edge-0 again
        assert any(
            r.edge == "edge-0" and r.issued_at > kill_at + 1.0
            for r in report.records
        )
        assert result_fingerprint(report) == result_fingerprint(healthy)


class TestKillMidReply:
    """The edge dies while the *result delta* is on the wire back.

    The server executed the request; the client never hears about it.  The
    reply timer fires, the request re-runs on the next edge, and the client
    applies exactly one result — the at-most-once contract is client-side
    too.
    """

    def test_result_applied_once_and_identical(self):
        healthy = make_scenario().run()
        rec = healthy.records[0]
        assert rec.transfer_to_client_seconds > 0.001

        scenario = make_scenario()
        # the reply is on the wire until restore starts, restore_seconds
        # before completion — aim for the middle of that flight
        delivered_at = rec.completed_at - rec.restore_seconds
        kill_at = delivered_at - rec.transfer_to_client_seconds / 2
        scenario.inject_kill("edge-0", kill_at)
        report = scenario.run()

        assert_conservation(report, 1)
        survivor = report.records[0]
        assert survivor.edge == "edge-1"
        assert survivor.failovers == 1
        # edge-0 DID execute before dying (its device accrued busy time);
        # the client still applied exactly one result.
        edge0 = next(row for row in report.edges if row.name == "edge-0")
        assert edge0.busy_seconds > 0
        assert edge0.served == 0  # never fed the response-time window
        assert result_fingerprint(report) == result_fingerprint(healthy)


class TestKillUnderEvictionPressure:
    """Cold kills landing on an edge whose cache is thrashing.

    Two tenants (the same net split at layers 2 and 3) share ~137 KB of
    parameter blobs; the budget fits either rear half alone but not both,
    so each edge's store evicts continuously.  A cold kill then lands on
    an edge that has *just* demoted a tenant: the revived store is empty,
    the client's handshake state is stale, and every recovery path —
    refusal retry, segment-level re-upload, cross-tenant dedup — runs in
    one scenario.  Results must still be bitwise identical to the healthy
    run, and the re-upload must send only the missing segments.
    """

    #: fits one rear half (138 903 B) but not the union (140 075 B)
    BUDGET = 139_500

    def make(self, **overrides):
        kwargs = dict(
            edges=[
                EdgeSpec(
                    "edge-0", profile=SLOW, memory_budget_bytes=self.BUDGET
                ),
                EdgeSpec(
                    "edge-1", profile=SLOW, memory_budget_bytes=self.BUDGET
                ),
            ],
            sessions=6,
            requests_per_session=2,
            mode="offload-partial",
            tenants=["smallnet:2", "smallnet:3"],
            seed=23,
            reply_timeout=2.0,
        )
        kwargs.update(overrides)
        return FleetScenario(**kwargs)

    def attacked_run(self, kill_at, **overrides):
        scenario = self.make(**overrides)
        scenario.inject_kill(
            "edge-0", kill_at, revive_at_seconds=kill_at + 1.0, cold=True
        )
        return scenario.run()

    def test_cold_kill_on_thrashing_edge_keeps_results_identical(self):
        healthy = self.make().run()
        assert healthy.all_correct
        # the budget really thrashes: both edges evicted during the run
        assert all(row.store_evictions > 0 for row in healthy.edges)
        assert healthy.presend["bytes_deduped"] > 0
        # aim the kill mid-upload of a late edge-0 request — by then the
        # edge has served both tenants and evicted at least once
        victim = [r for r in healthy.records if r.edge == "edge-0"][2]
        kill_at = victim.issued_at + victim.transfer_to_server_seconds / 2

        report = self.attacked_run(kill_at)
        assert_conservation(report, 12)
        assert report.failovers >= 1
        assert all(row.store_evictions > 0 for row in report.edges)
        # every edge's resident set stayed under the budget at run end
        assert all(
            row.store_resident_bytes <= self.BUDGET for row in report.edges
        )
        assert result_fingerprint(report) == result_fingerprint(healthy)

    def test_reupload_sends_only_missing_segments(self):
        healthy = self.make().run()
        victim = [r for r in healthy.records if r.edge == "edge-0"][2]
        kill_at = victim.issued_at + victim.transfer_to_server_seconds / 2

        v2 = self.attacked_run(kill_at)
        v1 = self.attacked_run(kill_at, segment_dedup=False)
        assert result_fingerprint(v2) == result_fingerprint(v1)
        # the v1 handshake is whole-model-or-nothing: every post-eviction
        # and post-kill recovery pays the full rear half again.  The v2
        # segment handshake ships only what the store actually lacks.
        assert v2.presend["bytes_deduped"] > 0
        assert v1.presend["bytes_deduped"] == 0
        assert v2.upload_bytes < v1.upload_bytes

    def test_attacked_run_replays_bitwise(self):
        healthy = self.make().run()
        victim = [r for r in healthy.records if r.edge == "edge-0"][2]
        kill_at = victim.issued_at + victim.transfer_to_server_seconds / 2
        first = self.attacked_run(kill_at)
        second = self.attacked_run(kill_at)
        import json

        assert json.dumps(first.as_dict(), sort_keys=True) == json.dumps(
            second.as_dict(), sort_keys=True
        )
        assert first.render_markdown() == second.render_markdown()


class TestKillWholeFleetEventually:
    def test_every_edge_dead_raises_loudly(self):
        scenario = make_scenario()
        # both edges die while the only request's upload is in flight
        scenario.inject_kill("edge-0", 0.2)
        scenario.inject_kill("edge-1", 0.25)
        from repro.fleet import NoEdgeAvailable

        with pytest.raises(NoEdgeAvailable):
            scenario.run()

    def test_bounded_p99_under_mid_run_kill(self):
        # The ISSUE's bench claim in miniature: a mid-run kill completes
        # every session with p99 bounded by timeout + a healthy round.
        def scenario():
            return make_scenario(
                sessions=8, requests_per_session=2, seed=17, reply_timeout=1.0
            )

        healthy = scenario().run()
        attacked = scenario()
        attacked.inject_kill("edge-0", healthy.makespan_seconds / 3)
        report = attacked.run()
        assert_conservation(report, 16)
        bound = (
            attacked.reply_timeout
            + 2 * max(r.latency_seconds for r in healthy.records)
            + 0.5
        )
        assert report.p99_latency < bound
        assert result_fingerprint(report) == result_fingerprint(healthy)
