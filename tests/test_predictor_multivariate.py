"""Tests for the multivariate latency predictor vs the flops-only model."""

import pytest

from repro.devices import Device, DeviceProfile, odroid_xu4_client
from repro.devices.predictor import (
    LatencyPredictor,
    MultivariatePredictor,
    prediction_error,
    profile_device,
)
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator


def memory_bound_profile() -> DeviceProfile:
    """A device where writing activations dominates cheap layers."""
    return DeviceProfile(
        name="membound",
        gflops_by_kind={"conv": 1.0, "pool": 4.0, "relu": 8.0, "fc": 1.0},
        default_gflops=2.0,
        mem_bw_bps=50e6,  # 50 MB/s — activations hurt
    )


@pytest.fixture(scope="module")
def costs():
    return network_costs(smallnet().network)


class TestMultivariate:
    def test_fit_interface_matches_flops_only(self, costs):
        samples = profile_device(odroid_xu4_client(), costs, noise=0.0)
        predictor = MultivariatePredictor().fit(samples)
        assert predictor.predict_layer("conv", 1e9, output_bytes=1000) > 0
        assert "conv" in predictor.kinds

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            MultivariatePredictor().fit([])

    def test_on_compute_bound_device_both_accurate(self, costs):
        sim = Simulator()
        device = Device(sim, odroid_xu4_client())
        samples = profile_device(odroid_xu4_client(), costs, noise=0.0)
        flops_only = LatencyPredictor().fit(samples)
        multivariate = MultivariatePredictor().fit(samples)
        assert prediction_error(flops_only, device, costs) < 0.1
        assert prediction_error(multivariate, device, costs) < 0.1

    def test_memory_bound_device_needs_output_feature(self):
        """On a memory-bound device the flops-only model falls apart.

        Profiling runs over a configuration grid (Neurosurgeon-style), so
        FLOPs and activation sizes vary independently — the regime where a
        single-feature regression cannot express the memory term.
        """
        from repro.devices.predictor import profiling_grid

        grid = profiling_grid()
        profile = memory_bound_profile()
        sim = Simulator()
        device = Device(sim, profile)
        samples = profile_device(profile, grid, noise=0.0)
        flops_only_error = prediction_error(
            LatencyPredictor().fit(samples), device, grid
        )
        multivariate_error = prediction_error(
            MultivariatePredictor().fit(samples), device, grid
        )
        assert multivariate_error < 0.05
        assert flops_only_error > 5 * max(multivariate_error, 1e-6)

    def test_grid_single_network_collinearity_demo(self, costs):
        """On ONE network's layers both models fit — the grid is the point."""
        profile = memory_bound_profile()
        sim = Simulator()
        device = Device(sim, profile)
        samples = profile_device(profile, costs, noise=0.0)
        flops_only_error = prediction_error(
            LatencyPredictor().fit(samples), device, costs
        )
        assert flops_only_error < 0.05  # collinear features hide the term

    def test_predict_forward_sums(self, costs):
        samples = profile_device(memory_bound_profile(), costs, noise=0.0)
        predictor = MultivariatePredictor().fit(samples)
        total = predictor.predict_forward(costs)
        parts = sum(
            predictor.predict_layer(
                c.kind, c.flops, output_bytes=c.output_elements * 4
            )
            for c in costs
        )
        assert total == pytest.approx(parts)

    def test_mem_bw_term_changes_device_time(self, costs):
        plain = DeviceProfile(name="p", default_gflops=1.0)
        bound = DeviceProfile(name="b", default_gflops=1.0, mem_bw_bps=1e6)
        assert bound.seconds_for("conv", 1e9, output_bytes=1_000_000) == (
            pytest.approx(plain.seconds_for("conv", 1e9) + 1.0)
        )

    def test_paper_profiles_unaffected(self):
        # The calibrated profiles have no memory term: times unchanged.
        profile = odroid_xu4_client()
        assert profile.mem_bw_bps is None
        assert profile.seconds_for("conv", 1e9, output_bytes=10**9) == (
            profile.seconds_for("conv", 1e9)
        )
