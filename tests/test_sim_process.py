"""Unit tests for generator-based simulated processes."""

import pytest

from repro.sim import Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestTimeouts:
    def test_process_waits_for_timeout(self, sim):
        log = []

        def proc():
            log.append(("start", sim.now))
            yield sim.timeout(3.0)
            log.append(("end", sim.now))

        sim.spawn(proc())
        sim.run()
        assert log == [("start", 0.0), ("end", 3.0)]

    def test_timeout_carries_value(self, sim):
        result = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            result.append(value)

        sim.spawn(proc())
        sim.run()
        assert result == ["payload"]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_sequential_timeouts_accumulate(self, sim):
        times = []

        def proc():
            for _ in range(3):
                yield sim.timeout(2.0)
                times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [2.0, 4.0, 6.0]


class TestEvents:
    def test_manual_event_wakes_waiter(self, sim):
        gate = sim.event("gate")
        log = []

        def waiter():
            value = yield gate
            log.append((sim.now, value))

        def opener():
            yield sim.timeout(5.0)
            gate.succeed("open")

        sim.spawn(waiter())
        sim.spawn(opener())
        sim.run()
        assert log == [(5.0, "open")]

    def test_waiting_on_already_triggered_event(self, sim):
        gate = sim.event("gate")
        gate.succeed(42)
        got = []

        def proc():
            value = yield gate
            got.append(value)

        sim.spawn(proc())
        sim.run()
        assert got == [42]

    def test_failed_event_raises_in_process(self, sim):
        gate = sim.event("gate")
        caught = []

        def proc():
            try:
                yield gate
            except ValueError as exc:
                caught.append(str(exc))

        sim.spawn(proc())
        sim.schedule(1.0, lambda: gate.fail(ValueError("boom")))
        sim.run()
        assert caught == ["boom"]

    def test_event_cannot_trigger_twice(self, sim):
        gate = sim.event()
        gate.succeed(1)
        with pytest.raises(Exception):
            gate.succeed(2)

    def test_process_return_value_propagates(self, sim):
        def child():
            yield sim.timeout(1.0)
            return "done"

        results = []

        def parent():
            value = yield sim.spawn(child())
            results.append((sim.now, value))

        sim.spawn(parent())
        sim.run()
        assert results == [(1.0, "done")]

    def test_child_exception_propagates_to_parent(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("child failed")

        caught = []

        def parent():
            try:
                yield sim.spawn(child())
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.spawn(parent())
        sim.run()
        assert caught == ["child failed"]

    def test_yielding_non_event_fails_process(self, sim):
        def proc():
            yield 42

        process = sim.spawn(proc())
        sim.run()
        assert process.triggered
        assert process.ok is False
        assert isinstance(process.value, TypeError)


class TestConditions:
    def test_any_of_resumes_on_first(self, sim):
        log = []

        def proc():
            result = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(2.0, "fast")])
            log.append((sim.now, result))

        sim.spawn(proc())
        sim.run()
        assert log == [(2.0, {1: "fast"})]

    def test_all_of_waits_for_every_event(self, sim):
        log = []

        def proc():
            result = yield sim.all_of([sim.timeout(5.0, "slow"), sim.timeout(2.0, "fast")])
            log.append((sim.now, sorted(result.values())))

        sim.spawn(proc())
        sim.run()
        assert log == [(5.0, ["fast", "slow"])]

    def test_empty_all_of_succeeds_immediately(self, sim):
        log = []

        def proc():
            yield sim.all_of([])
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [0.0]


class TestInterrupts:
    def test_interrupt_reaches_process(self, sim):
        log = []

        def proc():
            try:
                yield sim.timeout(100.0)
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        process = sim.spawn(proc())
        sim.schedule(3.0, lambda: process.interrupt("handover"))
        sim.run()
        assert log == [(3.0, "handover")]

    def test_unhandled_interrupt_kills_process(self, sim):
        def proc():
            yield sim.timeout(100.0)

        process = sim.spawn(proc())
        sim.schedule(1.0, lambda: process.interrupt())
        sim.run()
        assert process.triggered
        assert process.ok is False

    def test_interrupting_finished_process_raises(self, sim):
        def proc():
            yield sim.timeout(1.0)

        process = sim.spawn(proc())
        sim.run()
        with pytest.raises(Exception):
            process.interrupt()

    def test_is_alive_lifecycle(self, sim):
        def proc():
            yield sim.timeout(2.0)

        process = sim.spawn(proc())
        assert process.is_alive
        sim.run()
        assert not process.is_alive
