"""Campaign determinism across execution strategies.

The contract the execution engine must honor: fanning sections across
worker processes or serving them from the result cache changes wall-clock
only — the report markdown and the merged telemetry are byte-identical.
"""

import pytest

from repro.eval.campaign import build_campaign_tasks, run_campaign
from repro.obs import to_prometheus_text


@pytest.fixture(scope="module")
def serial_result():
    return run_campaign(quick=True, include_ablations=False, jobs=1)


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def parallel_result(self):
        return run_campaign(quick=True, include_ablations=False, jobs=4)

    def test_report_byte_identical(self, serial_result, parallel_result):
        assert parallel_result.report_markdown == serial_result.report_markdown

    def test_merged_metrics_identical(self, serial_result, parallel_result):
        assert to_prometheus_text(parallel_result.metrics) == to_prometheus_text(
            serial_result.metrics
        )

    def test_engine_saw_all_sections(self, parallel_result):
        stats = parallel_result.engine_stats
        assert stats.jobs == 4
        assert stats.cache_misses == len(stats.tasks)


class TestCacheDeterminism:
    @pytest.fixture(scope="class")
    def cache_runs(self, tmp_path_factory):
        cache_dir = str(tmp_path_factory.mktemp("campaign-cache"))
        cold = run_campaign(
            quick=True, include_ablations=False, cache_dir=cache_dir
        )
        warm = run_campaign(
            quick=True, include_ablations=False, cache_dir=cache_dir
        )
        return cold, warm

    def test_cold_run_misses(self, cache_runs):
        cold, _ = cache_runs
        assert cold.engine_stats.cache_hits == 0

    def test_warm_run_all_hits(self, cache_runs):
        _, warm = cache_runs
        assert warm.engine_stats.cache_hits == len(warm.engine_stats.tasks)

    def test_reports_identical(self, serial_result, cache_runs):
        cold, warm = cache_runs
        assert cold.report_markdown == serial_result.report_markdown
        assert warm.report_markdown == serial_result.report_markdown

    def test_merged_metrics_identical(self, serial_result, cache_runs):
        _, warm = cache_runs
        assert to_prometheus_text(warm.metrics) == to_prometheus_text(
            serial_result.metrics
        )

    def test_cached_sections_keep_compute_cost(self, cache_runs):
        cold, warm = cache_runs
        assert warm.section_wall_seconds == cold.section_wall_seconds

    def test_no_cache_flag_recomputes(self, tmp_path):
        result = run_campaign(
            quick=True,
            include_ablations=False,
            cache_dir=str(tmp_path),
            use_cache=False,
        )
        result = run_campaign(
            quick=True,
            include_ablations=False,
            cache_dir=str(tmp_path),
            use_cache=False,
        )
        assert result.engine_stats.cache_hits == 0


class TestTaskList:
    def test_report_order_and_keys(self):
        tasks = build_campaign_tasks(["agenet"], include_ablations=True)
        assert [t.key for t in tasks] == [
            "fig1",
            "fig6/agenet",
            "fig7/agenet",
            "fig8/agenet",
            "table1/agenet",
            "ablations/bandwidth",
            "ablations/baselines",
            "ablations/session_cache",
        ]

    def test_quick_truncates_fig8(self):
        [fig8] = [
            t
            for t in build_campaign_tasks(["agenet"], quick=True)
            if t.key.startswith("fig8")
        ]
        assert fig8.kwargs_dict()["max_points"] == 6

    def test_timings_block_is_opt_in(self, serial_result):
        assert "Campaign timings" not in serial_result.report_markdown
        timed = run_campaign(
            quick=True, include_ablations=False, include_timings=True
        )
        assert "Campaign timings" in timed.report_markdown


class TestNoOptimizeEndToEnd:
    """``REPRO_NO_OPTIMIZE`` must reach forked pool workers: a --jobs 2
    campaign with the env var set falls back to the reference layer walk
    everywhere and reproduces the serial --no-optimize report byte for
    byte (which itself is byte-identical to the optimized report — the
    plan compiler's core invariant)."""

    @pytest.fixture(scope="class")
    def no_optimize_runs(self):
        import os

        from repro.nn import plan as plan_module

        os.environ[plan_module.NO_OPTIMIZE_ENV] = "1"
        try:
            serial = run_campaign(quick=True, include_ablations=False, jobs=1)
            parallel = run_campaign(
                quick=True, include_ablations=False, jobs=2
            )
        finally:
            os.environ.pop(plan_module.NO_OPTIMIZE_ENV, None)
        return serial, parallel

    def test_switch_disables_plans_in_this_process(self):
        import os

        from repro.nn import plan as plan_module

        os.environ[plan_module.NO_OPTIMIZE_ENV] = "1"
        try:
            assert not plan_module.optimization_enabled()
        finally:
            os.environ.pop(plan_module.NO_OPTIMIZE_ENV, None)

    def test_parallel_report_matches_serial_no_optimize(self, no_optimize_runs):
        serial, parallel = no_optimize_runs
        assert parallel.report_markdown == serial.report_markdown

    def test_report_byte_identical_to_optimized(
        self, serial_result, no_optimize_runs
    ):
        serial_no_opt, _ = no_optimize_runs
        assert serial_no_opt.report_markdown == serial_result.report_markdown

    def test_merged_metrics_identical(self, serial_result, no_optimize_runs):
        _, parallel = no_optimize_runs
        assert to_prometheus_text(parallel.metrics) == to_prometheus_text(
            serial_result.metrics
        )
