"""Full snapshot capture/restore/delta round trips — the paper's core loop."""

import numpy as np
import pytest

from repro.core.snapshot import (
    CaptureOptions,
    SnapshotError,
    capture_delta,
    capture_snapshot,
    fingerprint_runtime,
    restore_snapshot,
)
from repro.core.snapshot.restore import RestoreError
from repro.nn.zoo import smallnet
from repro.sim import SeededRng
from repro.web import WebRuntime
from repro.web.app import make_inference_app, make_partial_inference_app
from repro.web.events import Event
from repro.web.values import JSArray, JSObject, TypedArray, deep_equal


@pytest.fixture
def model():
    return smallnet()


@pytest.fixture
def pixels():
    return TypedArray(SeededRng(3, "px").uniform_array((3, 32, 32), 0, 255))


def loaded_client(model, pixels):
    runtime = WebRuntime("client")
    runtime.load_app(make_inference_app(model))
    runtime.globals["pending_pixels"] = pixels
    runtime.dispatch("click", "load_btn")
    return runtime


class TestFullSnapshot:
    def test_restore_reproduces_state_and_result(self, model, pixels):
        client = loaded_client(model, pixels)
        event = Event("click", "infer_btn")
        snapshot = capture_snapshot(
            client, event, CaptureOptions(include_canvas_pixels=True)
        )
        server = WebRuntime("server")
        server.install_model(model)
        report = restore_snapshot(snapshot, server)
        assert report.pending_event == event
        server.run_event(report.pending_event)
        # The server computes the same label the client would have.
        client.run_event(event)
        assert (
            server.document.get("result").text_content
            == client.document.get("result").text_content
        )

    def test_snapshot_program_is_self_contained_code(self, model, pixels):
        client = loaded_client(model, pixels)
        snapshot = capture_snapshot(client, Event("click", "infer_btn"))
        assert "RT.set_script(" in snapshot.program
        assert "RT.add_listener(" in snapshot.program
        assert "RT.set_pending('click', 'infer_btn'" in snapshot.program

    def test_listeners_restored(self, model, pixels):
        client = loaded_client(model, pixels)
        snapshot = capture_snapshot(client, Event("click", "infer_btn"))
        server = WebRuntime("server")
        server.install_model(model)
        restore_snapshot(snapshot, server)
        assert set(server.events.all_listeners()) == set(
            client.events.all_listeners()
        )

    def test_heap_values_restored_with_aliasing(self, model, pixels):
        client = loaded_client(model, pixels)
        shared = JSArray([1, 2])
        client.globals["state"] = JSObject(a=shared, b=shared, n=42)
        # conservative capture keeps everything
        snapshot = capture_snapshot(
            client, Event("click", "infer_btn"), CaptureOptions(live_only=False)
        )
        server = WebRuntime("server")
        server.install_model(model)
        restore_snapshot(snapshot, server)
        state = server.globals["state"]
        assert deep_equal(state, client.globals["state"])
        assert state["a"] is state["b"]

    def test_model_refs_travel_but_models_do_not(self, model, pixels):
        client = loaded_client(model, pixels)
        snapshot = capture_snapshot(client, Event("click", "infer_btn"))
        assert snapshot.model_refs == {"classifier": model.model_id}
        # Without the image (canvas skipped, dead globals dropped) the
        # snapshot is pure code — far smaller than the model parameters.
        assert snapshot.code_bytes < model.total_bytes / 10

    def test_restore_without_model_fails_at_execution(self, model, pixels):
        from repro.web.runtime import MissingModelError

        client = loaded_client(model, pixels)
        snapshot = capture_snapshot(
            client, Event("click", "infer_btn"), CaptureOptions(include_canvas_pixels=True)
        )
        bare_server = WebRuntime("bare")
        report = restore_snapshot(snapshot, bare_server)
        with pytest.raises(MissingModelError):
            bare_server.run_event(report.pending_event)

    def test_non_scalar_event_payload_rejected(self, model, pixels):
        client = loaded_client(model, pixels)
        bad_event = Event("click", "infer_btn", payload=JSObject())
        with pytest.raises(SnapshotError):
            capture_snapshot(client, bad_event)

    def test_live_only_drops_dead_globals(self, model, pixels):
        client = loaded_client(model, pixels)
        client.globals["dead_weight"] = TypedArray(np.ones(50_000, dtype=np.float32))
        live = capture_snapshot(client, Event("click", "infer_btn"))
        conservative = capture_snapshot(
            client, Event("click", "infer_btn"), CaptureOptions(live_only=False)
        )
        assert live.size_bytes < conservative.size_bytes / 2
        assert "dead_weight" not in live.program
        assert "dead_weight" in conservative.program

    def test_corrupt_program_raises_restore_error(self, model):
        from repro.core.snapshot.capture import Snapshot

        broken = Snapshot(app_name="x", kind="full", program="RT.nonsense()\n")
        with pytest.raises(RestoreError):
            restore_snapshot(broken, WebRuntime("server"))


class TestDeltaSnapshot:
    def _offload_cycle(self, model, pixels):
        client = loaded_client(model, pixels)
        event = Event("click", "infer_btn")
        snapshot = capture_snapshot(
            client, event, CaptureOptions(include_canvas_pixels=True)
        )
        server = WebRuntime("server")
        server.install_model(model)
        report = restore_snapshot(snapshot, server)
        server.run_event(report.pending_event)
        delta = capture_delta(server, report.fingerprint)
        return client, server, delta

    def test_delta_is_small(self, model, pixels):
        _client, _server, delta = self._offload_cycle(model, pixels)
        assert delta.kind == "delta"
        assert delta.size_bytes < 2048

    def test_delta_applies_server_state_to_client(self, model, pixels):
        client, server, delta = self._offload_cycle(model, pixels)
        restore_snapshot(delta, client)
        assert (
            client.document.get("result").text_content
            == server.document.get("result").text_content
        )
        assert client.globals["result_label"] == server.globals["result_label"]

    def test_delta_for_wrong_app_rejected(self, model, pixels):
        _client, _server, delta = self._offload_cycle(model, pixels)
        other = WebRuntime("other")
        other.app_name = "different-app"
        with pytest.raises((RestoreError, Exception)):
            restore_snapshot(delta, other)

    def test_delta_captures_new_dom_elements(self, model, pixels):
        client = loaded_client(model, pixels)
        baseline = fingerprint_runtime(client)
        new_div = client.document.create_element("div", element_id="extra")
        client.document.body.append_child(new_div)
        new_div.append_text("added")
        delta = capture_delta(client, baseline)
        fresh = loaded_client(model, pixels)
        restore_snapshot(delta, fresh)
        assert fresh.document.get("extra").text_content == "added"

    def test_delta_captures_removed_elements(self, model, pixels):
        client = loaded_client(model, pixels)
        extra = client.document.create_element("div", element_id="temp")
        client.document.body.append_child(extra)
        baseline = fingerprint_runtime(client)
        client.document.body.remove_child(extra)
        delta = capture_delta(client, baseline)
        fresh = loaded_client(model, pixels)
        fresh.document.body.append_child(
            fresh.document.create_element("div", element_id="temp")
        )
        restore_snapshot(delta, fresh)
        assert fresh.document.find("temp") is None

    def test_delta_captures_removed_globals(self, model, pixels):
        client = loaded_client(model, pixels)
        client.globals["temp"] = 5
        baseline = fingerprint_runtime(client)
        del client.globals["temp"]
        delta = capture_delta(client, baseline)
        fresh = loaded_client(model, pixels)
        fresh.globals["temp"] = 5
        restore_snapshot(delta, fresh)
        assert "temp" not in fresh.globals

    def test_delta_captures_new_listeners(self, model, pixels):
        client = loaded_client(model, pixels)
        baseline = fingerprint_runtime(client)
        client.add_listener("result", "click", "on_inference")
        delta = capture_delta(client, baseline)
        fresh = loaded_client(model, pixels)
        restore_snapshot(delta, fresh)
        assert fresh.events.handlers_for("result", "click") == ["on_inference"]

    def test_empty_delta_when_nothing_changed(self, model, pixels):
        client = loaded_client(model, pixels)
        baseline = fingerprint_runtime(client)
        delta = capture_delta(client, baseline)
        # Only the expect_app header remains.
        assert delta.size_bytes < 128

    def test_delta_can_carry_pending_event(self, model, pixels):
        client = loaded_client(model, pixels)
        baseline = fingerprint_runtime(client)
        client.globals["z"] = 1
        delta = capture_delta(client, baseline, pending_event=Event("click", "load_btn"))
        fresh = loaded_client(model, pixels)
        report = restore_snapshot(delta, fresh)
        assert report.pending_event.event_type == "click"


class TestOptimizedPlanRoundTrip:
    """Snapshots over heaps holding compiled-plan feature tensors.

    The partial-inference app stores the front part's output feature in a
    heap global; with graph optimization on, that tensor was produced by a
    compiled execution plan (fused conv+relu into arena buffers).  The
    snapshot machinery must not be able to tell the difference: state
    fingerprints and delta round trips are identical to a reference run.
    """

    def _partial_runtime(self, pixels, infer=True):
        model = smallnet()
        point = model.network.point_by_label("1st_pool")
        front, rear = model.split(point.index)
        runtime = WebRuntime("client")
        runtime.load_app(make_partial_inference_app(front, rear))
        runtime.globals["pending_pixels"] = pixels
        runtime.dispatch("click", "load_btn")
        if infer:
            runtime.dispatch("click", "infer_btn")
        return runtime

    def _run_with(self, pixels, optimize):
        from repro.nn.plan import set_optimization

        set_optimization(optimize)
        try:
            return self._partial_runtime(pixels)
        finally:
            set_optimization(None)

    def test_fingerprints_match_reference_run(self, pixels):
        optimized = self._run_with(pixels, True)
        reference = self._run_with(pixels, False)
        assert isinstance(optimized.globals["feature"], TypedArray)
        assert fingerprint_runtime(optimized) == fingerprint_runtime(reference)

    def test_delta_wire_roundtrip_over_plan_features(self, pixels):
        from repro.core.snapshot.wire import decode_snapshot, encode_snapshot
        from repro.nn.plan import set_optimization

        reference = self._run_with(pixels, False)
        set_optimization(True)
        try:
            optimized = self._partial_runtime(pixels)
            fresh = self._partial_runtime(pixels, infer=False)
            baseline = fingerprint_runtime(fresh)
            delta = capture_delta(optimized, baseline)
            decoded = decode_snapshot(encode_snapshot(delta))
            restore_snapshot(decoded, fresh)
        finally:
            set_optimization(None)
        assert fingerprint_runtime(fresh) == fingerprint_runtime(reference)
        assert fresh.globals["result_label"] == reference.globals["result_label"]
