"""End-to-end property: delta offloading is equivalent to full offloading.

For arbitrary sequences of app-state mutations between two offloads, the
session-cache path (second offload = delta against server state) must
leave the client in exactly the state the no-cache path (second offload =
full snapshot) produces.  This is the correctness contract of the
future-work optimization: it may only change *bytes and time*, never
results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import ClientAgent
from repro.core.server import EdgeServer
from repro.core.snapshot import CaptureOptions
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import Channel, NetemProfile
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.web.app import make_inference_app
from repro.web.values import JSArray, JSObject, TypedArray

MODEL = smallnet()
COSTS = network_costs(MODEL.network)


# A mutation is (kind, payload); applied to the client runtime between the
# two offloads.
mutations = st.lists(
    st.one_of(
        st.tuples(st.just("set_int"), st.integers(-100, 100)),
        st.tuples(st.just("set_text"), st.text(max_size=12)),
        st.tuples(st.just("new_image"), st.integers(0, 1000)),
        st.tuples(st.just("nest"), st.integers(0, 5)),
        st.tuples(st.just("del_global"), st.just(None)),
    ),
    max_size=4,
)


def build_world():
    sim = Simulator()
    channel = Channel(sim, "client", "edge", NetemProfile.wifi_30mbps())
    server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge")
    server.serve(channel.end_b)
    client = ClientAgent(
        sim,
        Device(sim, odroid_xu4_client()),
        channel.end_a,
        capture_options=CaptureOptions(include_canvas_pixels=True),
    )
    client.start_app(make_inference_app(MODEL), presend=True)
    client.runtime.globals["pending_pixels"] = TypedArray(
        SeededRng(0, "base-image").uniform_array((3, 32, 32), 0, 255)
    )
    client.runtime.dispatch("click", "load_btn")
    client.mark_offload_point("click", "infer_btn")
    sim.run()
    return sim, client, server


def apply_mutation(client, mutation):
    kind, payload = mutation
    runtime = client.runtime
    if kind == "set_int":
        runtime.globals["knob"] = payload
    elif kind == "set_text":
        runtime.document.get("result").set_text(payload)
    elif kind == "new_image":
        runtime.globals["pending_pixels"] = TypedArray(
            SeededRng(payload, "mut-image").uniform_array((3, 32, 32), 0, 255)
        )
        runtime.dispatch("click", "load_btn")
    elif kind == "nest":
        runtime.globals["tree"] = JSObject(
            level=payload, items=JSArray(list(range(payload)))
        )
    elif kind == "del_global":
        runtime.globals.pop("knob", None)


def run_two_offloads(mutation_list, use_cache):
    sim, client, server = build_world()
    for round_index in range(2):
        if round_index == 1:
            for mutation in mutation_list:
                apply_mutation(client, mutation)
        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        process = sim.spawn(
            client.offload(event, server_costs=COSTS, use_session_cache=use_cache)
        )
        sim.run()
        assert process.ok, process.value
    runtime = client.runtime
    canvas = runtime.document.get("canvas").image_data
    return {
        "result_text": runtime.document.get("result").text_content,
        "result_label": runtime.globals.get("result_label"),
        "result_score": runtime.globals.get("result_score"),
        "canvas": canvas.data.tobytes() if canvas is not None else b"",
        "second_kind": process.value.snapshot.kind,
    }


class TestDeltaEquivalence:
    @given(mutation_list=mutations)
    @settings(max_examples=12, deadline=None)
    def test_delta_offload_equals_full_offload(self, mutation_list):
        with_cache = run_two_offloads(mutation_list, use_cache=True)
        without_cache = run_two_offloads(mutation_list, use_cache=False)
        assert with_cache["second_kind"] == "delta"
        assert without_cache["second_kind"] == "full"
        for key in ("result_text", "result_label", "result_score", "canvas"):
            assert with_cache[key] == without_cache[key], key

    def test_new_image_changes_label_consistently(self):
        # Sanity: a mutation that actually changes the inference input
        # yields the same (new) answer under both paths.
        mutation_list = [("new_image", 77)]
        with_cache = run_two_offloads(mutation_list, use_cache=True)
        without_cache = run_two_offloads(mutation_list, use_cache=False)
        expected = int(
            np.argmax(
                MODEL.inference(
                    SeededRng(77, "mut-image").uniform_array((3, 32, 32), 0, 255)
                )
            )
        )
        assert with_cache["result_label"] == expected
        assert without_cache["result_label"] == expected
