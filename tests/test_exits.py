"""Multi-exit networks: (split, exit) equivalence and the bugfix sweep.

Four contracts land together in this file:

* **(split, exit) equivalence** — every (split, exit) pair of a
  multi-exit model executes identically through the compiled plans and
  the reference layer walk: bitwise under the ``reference`` backend,
  within the pinned tolerance (and top-1 equality) under ``tuned``.
* **deadline optimization** — ``choose_under_deadline`` returns the
  highest-accuracy feasible (split, exit) pair; accuracy is monotone
  non-decreasing in the deadline (the feasible set only grows), every
  feasible choice meets its SLO, and an infeasible deadline degrades to
  the least-late pair instead of raising.
* **tie-breaking** — ``choose`` resolves equal-cost splits toward the
  earlier index, independent of sweep enumeration order (it used to
  silently prefer whichever the sweep listed first).
* **dead-on-arrival accounting** — a serving-loop item whose deadline
  passed while it queued is counted (and flagged) once, at dequeue,
  instead of at completion; misses that happen *during* execution are
  still counted at completion, and no item is ever counted twice.
* **per-channel quantization** — conv/fc weight matrices quantize with
  one affine range per output row; a skewed-row matrix that a shared
  per-tensor range butchers reconstructs within per-row precision.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    PartitionEstimate,
    PartitionOptimizer,
)
from repro.devices import edge_server_x86, odroid_xu4_client
from repro.devices.device import Device
from repro.devices.predictor import fit_predictor_for
from repro.netsim import NetemProfile
from repro.nn.backend import set_backend
from repro.nn.cost import network_costs
from repro.nn.model import Model, network_from_description
from repro.nn.plan import QuantizedMatrix
from repro.nn.quantize import (
    ChannelQuantizedTensor,
    quantize_linear,
    quantize_linear_per_channel,
)
from repro.nn.zoo import EXIT_MODELS, build_model
from repro.serve import ServingConfig, ServingLoop
from repro.sim import SeededRng, Simulator

import json

#: the tuned backend's pinned tolerance (same as the backend suite)
TUNED_ATOL = 1e-4


def model_input(model, seed=7):
    return SeededRng(seed, f"exits/{model.name}").uniform_array(
        tuple(model.network.input_shape), 0, 255
    )


@pytest.fixture(scope="module")
def exits_model():
    return build_model("smallnet_exits")


@pytest.fixture(scope="module")
def exits_network(exits_model):
    return exits_model.network


@pytest.fixture(scope="module")
def optimizer(exits_network):
    costs = network_costs(exits_network)
    client_profile = odroid_xu4_client()
    server_profile = edge_server_x86()
    return PartitionOptimizer(
        fit_predictor_for(client_profile, costs, noise=0.0),
        fit_predictor_for(server_profile, costs, noise=0.0),
        client_profile,
        server_profile,
    )


@pytest.fixture
def link():
    return NetemProfile.wifi_30mbps()


@pytest.fixture(autouse=True)
def _reset_backend():
    yield
    set_backend(None)


class TestExitZoo:
    @pytest.mark.parametrize("name", EXIT_MODELS)
    def test_exit_points_end_with_final(self, name):
        exits = build_model(name).network.exit_points()
        assert len(exits) > 1
        assert all(not exit.is_final for exit in exits[:-1])
        assert exits[-1].is_final
        assert exits[-1].name == "final"

    @pytest.mark.parametrize("name", EXIT_MODELS)
    def test_exit_accuracy_increases_with_depth(self, name):
        exits = build_model(name).network.exit_points()
        accuracies = [exit.accuracy for exit in exits]
        assert accuracies == sorted(accuracies)
        assert all(0.0 < accuracy <= 1.0 for accuracy in accuracies)

    def test_at_exit_prunes_and_reports_exit_accuracy(self, exits_network):
        exit = exits_network.exit_points()[0]
        pruned = exits_network.at_exit(exit.index)
        assert len(pruned.layers) < len(exits_network.layers)
        assert pruned.final_accuracy == exit.accuracy
        # layer objects (and therefore weights) are shared, not copied
        assert pruned.layers[1] is exits_network.layers[1]

    def test_at_exit_final_returns_self_network(self, exits_network):
        final = exits_network.exit_points()[-1]
        pruned = exits_network.at_exit(final.index)
        assert len(pruned.layers) == len(exits_network.layers)


@pytest.mark.exits
class TestSplitExitEquivalence:
    def _pairs(self, network):
        for exit in network.exit_points():
            if exit.is_final:
                continue
            for point in network.offload_points():
                if 0 < point.index < exit.index:
                    yield point, exit

    def test_reference_backend_bitwise_at_every_pair(self, exits_network):
        set_backend("reference")
        x = SeededRng(3, "exits/pairs").uniform_array(
            tuple(exits_network.input_shape), 0, 255
        )
        for point, exit in self._pairs(exits_network):
            walk = exits_network.at_exit(exit.index).forward(x, optimize=False)
            front = exits_network.plan_for(0, point.index)
            rear = exits_network.plan_for(
                point.index + 1, exit.index, exit_point=exit.index
            )
            planned = rear.forward(front.forward(x))
            assert np.array_equal(planned, walk), (
                f"split @{point.index} x exit {exit.name} diverged from "
                "the reference walk"
            )

    def test_tuned_backend_within_tolerance_at_every_pair(self, exits_network):
        x = SeededRng(3, "exits/pairs").uniform_array(
            tuple(exits_network.input_shape), 0, 255
        )
        for point, exit in self._pairs(exits_network):
            set_backend("reference")
            walk = exits_network.at_exit(exit.index).forward(x, optimize=False)
            set_backend("tuned")
            front = exits_network.plan_for(0, point.index)
            rear = exits_network.plan_for(
                point.index + 1, exit.index, exit_point=exit.index
            )
            planned = rear.forward(front.forward(x))
            assert np.allclose(planned, walk, atol=TUNED_ATOL)
            assert int(np.argmax(planned)) == int(np.argmax(walk))

    def test_forward_exit_optimized_matches_walk(self, exits_network):
        set_backend("reference")
        x = SeededRng(5, "exits/forward").uniform_array(
            tuple(exits_network.input_shape), 0, 255
        )
        for exit in exits_network.exit_points():
            optimized = exits_network.forward_exit(x, exit.index, optimize=True)
            walked = exits_network.forward_exit(x, exit.index, optimize=False)
            assert np.array_equal(optimized, walked)

    @pytest.mark.parametrize("name", EXIT_MODELS)
    def test_description_roundtrip_preserves_exits(self, name):
        model = build_model(name)
        description = json.loads(model.description_json())
        restored = network_from_description(description)
        assert [e.name for e in restored.exit_points()] == [
            e.name for e in model.network.exit_points()
        ]
        assert [e.accuracy for e in restored.exit_points()] == [
            e.accuracy for e in model.network.exit_points()
        ]

    def test_save_load_roundtrip_preserves_exit_inference(
        self, tmp_path, exits_model
    ):
        exits_model.save(str(tmp_path))
        loaded = Model.load(str(tmp_path), exits_model.name)
        x = model_input(exits_model)
        for exit in exits_model.network.exit_points():
            original = exits_model.network.forward_exit(x, exit.index)
            restored = loaded.network.forward_exit(x, exit.index)
            assert np.allclose(restored, original, atol=1e-6)

    def test_exit_point_outside_range_rejected(self, exits_network):
        exit = exits_network.exit_points()[0]
        with pytest.raises(IndexError):
            exits_network.plan_for(
                exit.index + 1, None, exit_point=exit.index
            )

    def test_exit_point_must_be_an_exit_head(self, exits_network):
        with pytest.raises(ValueError):
            exits_network.plan_for(0, None, exit_point=1)


class TestChooseUnderDeadline:
    def test_generous_deadline_picks_full_network(
        self, exits_network, optimizer, link
    ):
        choice = optimizer.choose_under_deadline(exits_network, link, 3600.0)
        assert choice.feasible
        assert choice.exit.is_final
        assert choice.accuracy == exits_network.final_accuracy

    def test_feasible_choice_meets_its_deadline(
        self, exits_network, optimizer, link
    ):
        for deadline_s in (0.05, 0.1, 0.5, 2.0):
            choice = optimizer.choose_under_deadline(
                exits_network, link, deadline_s
            )
            if choice.feasible:
                assert choice.best.total_seconds <= deadline_s

    def test_infeasible_deadline_falls_back_to_fastest(
        self, exits_network, optimizer, link
    ):
        choice = optimizer.choose_under_deadline(exits_network, link, 1e-6)
        assert not choice.feasible
        assert choice.best.total_seconds == min(
            pair.total_seconds for pair in choice.estimates
        )

    def test_splits_never_at_or_past_their_exit(
        self, exits_network, optimizer, link
    ):
        choice = optimizer.choose_under_deadline(exits_network, link, 1.0)
        assert all(
            pair.point.index < pair.exit.index for pair in choice.estimates
        )

    def test_invalid_deadline_rejected(self, exits_network, optimizer, link):
        with pytest.raises(ValueError):
            optimizer.choose_under_deadline(exits_network, link, 0.0)

    @settings(max_examples=30, deadline=None)
    @given(
        tight=st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
        slack=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_accuracy_monotone_in_deadline(self, tight, slack):
        # Module-scoped fixtures don't mix with Hypothesis; rebuild once
        # per example from the process-wide memoized model.
        network = build_model("smallnet_exits").network
        costs = network_costs(network)
        client_profile = odroid_xu4_client()
        server_profile = edge_server_x86()
        optimizer = PartitionOptimizer(
            fit_predictor_for(client_profile, costs, noise=0.0),
            fit_predictor_for(server_profile, costs, noise=0.0),
            client_profile,
            server_profile,
        )
        link = NetemProfile.wifi_30mbps()
        first = optimizer.choose_under_deadline(network, link, tight)
        second = optimizer.choose_under_deadline(network, link, tight + slack)
        # The feasible set only grows with the deadline, so accuracy can
        # never decrease — and a feasible choice never breaks its SLO.
        assert second.accuracy >= first.accuracy or not first.feasible
        for choice, deadline_s in ((first, tight), (second, tight + slack)):
            if choice.feasible:
                assert choice.best.total_seconds <= deadline_s


class _RiggedOptimizer(PartitionOptimizer):
    """Sweeps in reverse with rigged costs — tie-break order probe."""

    def __init__(self, inner: PartitionOptimizer, costs_by_index):
        super().__init__(
            inner.client_predictor,
            inner.server_predictor,
            inner.client_profile,
            inner.server_profile,
        )
        self._costs_by_index = costs_by_index

    def estimate(self, network, point, link):
        return PartitionEstimate(
            point=point,
            client_seconds=self._costs_by_index.get(point.index, 2.0),
            transfer_seconds=0.0,
            server_seconds=0.0,
            overhead_seconds=0.0,
            feature_bytes=1,
        )

    def sweep(self, network, link, points=None):
        if points is None:
            points = network.offload_points()
        # Reverse enumeration: a choice that leans on "first wins" picks
        # the *later* of two tied splits here.
        return [self.estimate(network, point, link) for point in reversed(points)]


class TestChooseTieBreak:
    def test_equal_cost_tie_resolves_to_earlier_split(
        self, exits_network, optimizer, link
    ):
        points = exits_network.offload_points()
        tied = (points[2].index, points[5].index)
        rigged = _RiggedOptimizer(
            optimizer, {index: 1.0 for index in tied}
        )
        choice = rigged.choose(exits_network, link, denature=False)
        # Both tied splits cost 1.0 (everything else 2.0); the earlier
        # index must win even though the sweep enumerated it last.
        assert choice.point.index == min(tied)

    def test_all_tied_picks_first_offload_point(
        self, exits_network, optimizer, link
    ):
        points = exits_network.offload_points()
        rigged = _RiggedOptimizer(
            optimizer, {point.index: 1.0 for point in points}
        )
        choice = rigged.choose(exits_network, link, denature=False)
        assert choice.point.index == min(point.index for point in points)


def _run_serving(deadline_s, exec_seconds, timeout_s):
    """One item through a bare serving loop; returns (loop, completed)."""
    sim = Simulator()
    device = Device(sim, edge_server_x86())
    loop = ServingLoop(
        sim,
        device,
        "edge-test",
        ServingConfig(
            max_batch=8, batch_timeout_s=timeout_s, deadline_s=deadline_s
        ),
    )
    completed = []

    def submitter():
        yield sim.timeout(0.0)
        item = loop.submit(
            sender="user-0",
            request_id=1,
            browser=None,
            event=None,
            exec_seconds=exec_seconds,
            model_id="m",
            feature=object(),
        )
        item.done.add_callback(lambda event: completed.append(event.value))

    sim.spawn(submitter())
    sim.run(until=600.0)
    return loop, completed


class TestDeadOnArrival:
    def test_stale_item_counted_once_at_dequeue(self):
        # The deadline (1 ms) expires while the lone item waits out the
        # former's 50 ms timeout: dead on arrival.  The miss is counted
        # once, at dequeue — the completion check must not re-count it.
        loop, completed = _run_serving(
            deadline_s=0.001, exec_seconds=0.001, timeout_s=0.05
        )
        assert len(completed) == 1
        assert completed[0].dead_on_arrival
        assert loop.stats["dead_on_arrival"] == 1
        assert loop.stats["deadline_misses"] == 1

    def test_stale_item_still_executes(self):
        # A late answer beats none: the item completes normally.
        _, completed = _run_serving(
            deadline_s=0.001, exec_seconds=0.001, timeout_s=0.05
        )
        assert completed[0].exec_share_seconds > 0.0

    def test_execution_miss_counted_at_completion_not_flagged(self):
        # Deadline survives the queue (10 ms timeout < 100 ms SLO) but
        # dies during the 1 s execution: a plain completion miss.
        loop, completed = _run_serving(
            deadline_s=0.1, exec_seconds=1.0, timeout_s=0.01
        )
        assert len(completed) == 1
        assert not completed[0].dead_on_arrival
        assert loop.stats["dead_on_arrival"] == 0
        assert loop.stats["deadline_misses"] == 1

    def test_met_deadline_counts_nothing(self):
        loop, completed = _run_serving(
            deadline_s=30.0, exec_seconds=0.001, timeout_s=0.01
        )
        assert len(completed) == 1
        assert loop.stats["dead_on_arrival"] == 0
        assert loop.stats["deadline_misses"] == 0


def _skewed_matrix(rows=8, cols=64, seed=0):
    """Row ranges spanning four orders of magnitude."""
    rng = np.random.default_rng(seed)
    spans = np.geomspace(1e-3, 10.0, rows)[:, None]
    return (rng.normal(0.0, 1.0, (rows, cols)) * spans).astype(np.float32)


class TestPerChannelQuantization:
    def test_skewed_rows_reconstruct_within_row_precision(self):
        # Per-tensor: one shared range, hostage to the widest row; the
        # narrow rows collapse onto a handful of codes.  Per-channel must
        # reconstruct every row within its own 8-bit step size — a bound
        # the shared range misses by orders of magnitude on narrow rows.
        matrix = _skewed_matrix()
        per_tensor = quantize_linear(matrix, 8)
        per_channel = quantize_linear_per_channel(matrix, 8)
        tensor_err = np.abs(
            per_tensor.dequantize().reshape(matrix.shape) - matrix
        )
        channel_err = np.abs(per_channel.dequantize() - matrix)
        row_step = (
            matrix.max(axis=1) - matrix.min(axis=1)
        ) / 255.0
        assert np.all(channel_err.max(axis=1) <= row_step + 1e-7)
        narrow = 0  # the 1e-3-span row
        assert tensor_err[narrow].max() > 100 * channel_err[narrow].max()

    def test_pack_roundtrip(self):
        for bits in (3, 8, 12):
            quantized = quantize_linear_per_channel(_skewed_matrix(), bits)
            restored = ChannelQuantizedTensor.from_packed(
                quantized.pack(),
                quantized.scale,
                quantized.zero_point,
                bits,
                quantized.shape,
            )
            assert np.array_equal(restored.codes, quantized.codes)
            assert np.array_equal(
                restored.dequantize(), quantized.dequantize()
            )

    def test_size_bytes_charges_per_row_params(self):
        quantized = quantize_linear_per_channel(_skewed_matrix(rows=8), 8)
        flat = quantize_linear(_skewed_matrix(rows=8), 8)
        assert quantized.size_bytes == flat.size_bytes + 8 * 8

    def test_degenerate_row_reconstructs_exactly(self):
        matrix = np.vstack(
            [np.full(16, 2.5, np.float32), np.arange(16, dtype=np.float32)]
        )
        quantized = quantize_linear_per_channel(matrix, 4)
        assert np.allclose(quantized.dequantize()[0], 2.5)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            quantize_linear_per_channel(np.zeros((2, 3, 4), np.float32))

    @pytest.mark.parametrize("ndim", [1, 2])
    def test_integer_gemm_matches_identity(self, ndim):
        # The dequant-free integer GEMM must equal the dequantized-weight
        # matmul over the dequantized activations — exactly, up to float
        # rounding — with per-row scale vectors broadcasting like the
        # scalars did.
        from repro.nn.backend import get_backend

        matrix = _skewed_matrix(rows=16, cols=32, seed=1)
        rng = np.random.default_rng(2)
        shape = (32,) if ndim == 1 else (32, 5)
        x = rng.normal(0.0, 1.0, shape).astype(np.float32)
        qmatrix = QuantizedMatrix.from_array(matrix, 8, per_channel=True)
        assert qmatrix.per_channel
        dequantized_x = (
            quantize_linear(x, 8).dequantize().reshape(x.shape)
        )
        identity = qmatrix.dequantized() @ dequantized_x
        result = get_backend("tuned").quantized_gemm(qmatrix, x)
        scale = float(np.abs(identity).max()) or 1.0
        assert np.abs(result - identity).max() / scale < 1e-5

    def test_quantized_plan_descriptor_roundtrip_bitwise(self):
        import pickle

        from repro.nn.plan import (
            compile_plan,
            plan_from_descriptor,
            plan_to_descriptor,
        )

        model = build_model("smallnet")
        network = model.network
        x = model_input(model)
        plan = compile_plan(network, quantize_bits=8)
        descriptor = pickle.loads(
            pickle.dumps(plan_to_descriptor(plan, network))
        )
        restored = plan_from_descriptor(descriptor, network)
        assert np.array_equal(restored.forward(x), plan.forward(x))

    def test_rehydrated_operands_stay_per_channel(self):
        from repro.nn.plan import (
            QuantizedFCStep,
            compile_plan,
            plan_from_descriptor,
            plan_to_descriptor,
        )

        network = build_model("smallnet").network
        plan = compile_plan(network, quantize_bits=8)
        restored = plan_from_descriptor(
            plan_to_descriptor(plan, network), network
        )
        fc_steps = [
            step for step in restored.steps
            if isinstance(step, QuantizedFCStep)
        ]
        assert fc_steps
        for step in fc_steps:
            assert step.qmatrix.per_channel
            assert step.qmatrix.scale.shape == (step.qmatrix.shape[0],)
