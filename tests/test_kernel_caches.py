"""Tests for the hot-path caches: conv weight matrices, im2col buffers,
memoized shape helpers and the tensor-text memo."""

import numpy as np
import pytest

from repro.core.snapshot import codegen
from repro.core.snapshot.codegen import (
    clear_text_cache,
    render_tensor_text,
    text_cache_info,
)
from repro.nn.layers import ConvLayer
from repro.nn.tensor import conv_output_hw, im2col
from repro.sim import SeededRng


def naive_conv(layer, x):
    """Reference convolution straight off the definition."""
    weight, bias = layer.params["weight"], layer.params["bias"]
    per_in = x.shape[0] // layer.groups
    per_out = layer.num_filters // layer.groups
    cols = [
        im2col(
            x[g * per_in : (g + 1) * per_in], layer.kernel, layer.stride, layer.pad
        ).copy()
        for g in range(layer.groups)
    ]
    out = np.concatenate(
        [
            weight[g * per_out : (g + 1) * per_out].reshape(per_out, -1) @ cols[g]
            + bias[g * per_out : (g + 1) * per_out][:, None]
            for g in range(layer.groups)
        ],
        axis=0,
    )
    return out.reshape(layer.out_shape).astype(np.float32)


def built_conv(groups=1):
    layer = ConvLayer("c", 8, kernel=3, pad=1, groups=groups)
    layer.build((4, 6, 6), SeededRng(7, "w"))
    return layer


class TestConvWeightCache:
    def test_cached_forward_matches_naive(self):
        for groups in (1, 2):
            layer = built_conv(groups)
            x = SeededRng(8, "x").normal_array((4, 6, 6))
            reference = naive_conv(layer, x)
            for _ in range(3):  # repeated forwards reuse both caches
                assert np.allclose(layer.forward(x), reference, atol=1e-6)

    def test_weight_replacement_invalidates(self):
        layer = built_conv()
        x = SeededRng(9, "x").normal_array((4, 6, 6))
        before = layer.forward(x)
        layer.params["weight"] = SeededRng(10, "w2").normal_array(
            layer.params["weight"].shape
        )
        after = layer.forward(x)
        assert not np.allclose(before, after)
        assert np.allclose(after, naive_conv(layer, x), atol=1e-6)

    def test_inplace_write_after_forward_fails_loudly(self):
        layer = built_conv()
        layer.forward(SeededRng(11, "x").normal_array((4, 6, 6)))
        with pytest.raises(ValueError):
            layer.params["weight"][:] = 0.0

    def test_inplace_write_before_first_forward_allowed(self):
        layer = built_conv()
        layer.params["weight"][:] = 0.0  # the pattern existing tests use
        out = layer.forward(SeededRng(12, "x").normal_array((4, 6, 6)))
        assert np.allclose(out, 0.0)

    def test_invalidate_unfreezes(self):
        layer = built_conv()
        x = SeededRng(13, "x").normal_array((4, 6, 6))
        layer.forward(x)
        layer.invalidate_param_cache()
        layer.params["weight"][:] = 0.0
        assert np.allclose(layer.forward(x), 0.0)

    def test_init_params_resets_cache(self):
        layer = built_conv()
        x = SeededRng(14, "x").normal_array((4, 6, 6))
        layer.forward(x)
        layer.init_params(SeededRng(15, "w"))
        assert np.allclose(layer.forward(x), naive_conv(layer, x), atol=1e-6)


class TestIm2colBuffer:
    def test_buffer_reuse_matches_fresh(self):
        x = SeededRng(16, "x").normal_array((3, 8, 8))
        fresh = im2col(x, 3, 1, 1)
        buffer = np.empty(3 * 3 * 3 * 8 * 8, dtype=np.float32)
        reused = im2col(x, 3, 1, 1, out=buffer)
        assert np.array_equal(fresh, reused)
        assert reused.base is buffer  # view into the caller's scratch

    def test_wrong_buffer_size_rejected(self):
        x = SeededRng(17, "x").normal_array((3, 8, 8))
        with pytest.raises(ValueError):
            im2col(x, 3, 1, 1, out=np.empty(10, dtype=np.float32))

    def test_shape_helpers_memoized(self):
        conv_output_hw.cache_clear()
        assert conv_output_hw(224, 224, 7, 2, 3) == conv_output_hw(224, 224, 7, 2, 3)
        info = conv_output_hw.cache_info()
        assert info.hits >= 1


class TestTensorTextMemo:
    def setup_method(self):
        clear_text_cache()

    def test_repeat_render_hits(self):
        values = SeededRng(18, "t").normal_array((1000,))
        first = render_tensor_text(values)
        second = render_tensor_text(values.copy())  # same content, new array
        assert first == second
        info = text_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_different_content_misses(self):
        render_tensor_text(np.ones(10, dtype=np.float32))
        render_tensor_text(np.zeros(10, dtype=np.float32))
        assert text_cache_info()["misses"] == 2

    def test_budget_evicts_oldest(self, monkeypatch):
        monkeypatch.setattr(codegen, "TEXT_CACHE_BUDGET_BYTES", 100)
        render_tensor_text(np.arange(4, dtype=np.float32))
        render_tensor_text(np.arange(4, 8, dtype=np.float32))
        info = text_cache_info()
        assert info["bytes"] <= 100
        assert info["entries"] == 1

    def test_oversized_text_not_cached(self, monkeypatch):
        monkeypatch.setattr(codegen, "TEXT_CACHE_BUDGET_BYTES", 10)
        render_tensor_text(np.arange(8, dtype=np.float32))
        assert text_cache_info()["entries"] == 0

    def test_roundtrip_unchanged(self):
        from repro.core.snapshot.codegen import parse_tensor_text

        values = SeededRng(19, "t").normal_array((64,))
        text = render_tensor_text(values)
        assert np.array_equal(parse_tensor_text(text, (64,)), values)
