"""Multi-tenant model store: segment dedup, LRU eviction, manifest safety.

The battery behind PR 9's artifact store:

* ``begin_upload`` is idempotent only for *identical* manifests — a
  re-registration with a different file list raises instead of silently
  serving stale files (the S1 regression);
* content-addressed segments are shared across models (two rear halves of
  one network pay their common parameter blobs once) and
  ``missing_from_manifest`` answers the segment-level handshake;
* LRU eviction under ``memory_budget_bytes`` demotes entries to
  "files known, model cold", frees only unshared segments, never touches
  an in-flight upload, and admits a single oversized model.
"""

import pytest

from repro.nn.model import ModelFile
from repro.nn.modelstore import ModelStore, ModelStoreError
from repro.nn.zoo import smallnet, tinynet
from repro.obs.metrics import MetricsRegistry


def upload(store, model):
    """Drive a full upload + attach for one model."""
    store.begin_upload(model.model_id, model.files())
    for file in model.files():
        store.receive_file(model.model_id, file)
    store.attach_model(model.model_id, model)


@pytest.fixture
def model():
    return smallnet()


@pytest.fixture
def rears(model):
    """Two rear halves of the same net: near-total segment overlap."""
    _, rear2 = model.split(2)
    _, rear3 = model.split(3)
    return rear2, rear3


class TestManifestSafety:
    def test_identical_reregistration_is_idempotent(self, model):
        store = ModelStore()
        first = store.begin_upload(model.model_id, model.files())
        second = store.begin_upload(model.model_id, model.files())
        assert first is second

    def test_reordered_manifest_raises(self, model):
        store = ModelStore()
        store.begin_upload(model.model_id, model.files())
        with pytest.raises(ModelStoreError, match="manifest mismatch"):
            store.begin_upload(model.model_id, list(reversed(model.files())))

    def test_truncated_manifest_raises(self, model):
        store = ModelStore()
        store.begin_upload(model.model_id, model.files())
        with pytest.raises(ModelStoreError, match="manifest mismatch"):
            store.begin_upload(model.model_id, model.files()[:-1])

    def test_changed_checksum_raises(self, model):
        store = ModelStore()
        files = model.files()
        store.begin_upload(model.model_id, files)
        stale = [
            ModelFile(f.name, f.kind, f.size_bytes, checksum="f" * 16)
            if f.kind == "parameters" else f
            for f in files
        ]
        with pytest.raises(ModelStoreError, match="manifest mismatch"):
            store.begin_upload(model.model_id, stale)

    def test_mismatch_leaves_existing_entry_untouched(self, model):
        store = ModelStore()
        upload(store, model)
        with pytest.raises(ModelStoreError):
            store.begin_upload(model.model_id, model.files()[:1])
        assert store.has_complete(model.model_id)
        assert store.get_model(model.model_id) is model


class TestSegmentDedup:
    def test_shared_blobs_are_resident_once(self, rears):
        rear2, rear3 = rears
        store = ModelStore()
        upload(store, rear2)
        upload(store, rear3)
        union = {f.checksum: f.size_bytes for f in rear2.files()}
        union.update({f.checksum: f.size_bytes for f in rear3.files()})
        assert store.resident_bytes == sum(union.values())
        assert store.resident_bytes < rear2.total_bytes + rear3.total_bytes

    def test_begin_upload_claims_resident_segments(self, rears):
        rear2, rear3 = rears
        store = ModelStore()
        upload(store, rear2)
        entry = store.begin_upload(rear3.model_id, rear3.files())
        # the three parameter blobs are shared; only the description is new
        assert entry.missing == [f"{rear3.name}.json"]

    def test_missing_from_manifest_is_exactly_the_gap(self, rears):
        rear2, rear3 = rears
        store = ModelStore()
        assert store.missing_from_manifest(rear3.files()) == [
            f.name for f in rear3.files()
        ]
        upload(store, rear2)
        assert store.missing_from_manifest(rear3.files()) == [
            f"{rear3.name}.json"
        ]

    def test_dedup_completed_upload_attaches(self, rears):
        rear2, rear3 = rears
        store = ModelStore()
        upload(store, rear2)
        store.begin_upload(rear3.model_id, rear3.files())
        json_file = next(f for f in rear3.files() if f.kind == "description")
        store.receive_file(rear3.model_id, json_file)
        store.attach_model(rear3.model_id, rear3)
        assert store.get_model(rear3.model_id) is rear3


class TestLruEviction:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ModelStore(0)
        with pytest.raises(ValueError):
            ModelStore(-1)

    def test_eviction_demotes_to_files_known_model_cold(self, model):
        tiny = tinynet()
        store = ModelStore(model.total_bytes + 100)
        upload(store, tiny)
        upload(store, model)  # overflows: tinynet is the LRU victim
        assert store.evictions == 1
        assert store.resident_bytes <= model.total_bytes + 100
        entry = store.entry(tiny.model_id)
        assert entry is not None  # manifest survives
        assert entry.model is None and not entry.received
        assert [f.name for f in entry.manifest] == [
            f.name for f in tiny.files()
        ]
        assert not store.has_complete(tiny.model_id)
        assert not store.matches_fingerprint(
            tiny.model_id, tiny.fingerprint()
        )

    def test_demoted_model_reuploads_only_freed_segments(self, rears):
        rear2, rear3 = rears
        budget = max(rear2.total_bytes, rear3.total_bytes) + 700
        store = ModelStore(budget)
        upload(store, rear2)
        upload(store, rear3)  # union exceeds the budget: rear2 demoted
        assert store.evictions == 1
        assert store.resident_bytes <= budget
        # the shared parameter blobs survived via rear3's refs; only
        # rear2's description was actually freed
        assert store.missing_from_manifest(rear2.files()) == [
            f"{rear2.name}.json"
        ]

    def test_lru_order_respects_recent_touches(self):
        models = [tinynet(seed=k) for k in (1, 2, 3)]
        budget = sum(m.total_bytes for m in models[:2]) + 100
        store = ModelStore(budget)
        upload(store, models[0])
        upload(store, models[1])
        store.get_model(models[0].model_id)  # models[1] is now LRU
        upload(store, models[2])
        assert store.entry(models[1].model_id).model is None
        assert store.get_model(models[0].model_id) is models[0]

    def test_incomplete_upload_is_never_a_victim(self, model):
        tiny = tinynet()
        store = ModelStore(1000)
        store.begin_upload(model.model_id, model.files())
        store.receive_file(model.model_id, model.files()[0])
        upload(store, tiny)  # pressure, but model's upload is in flight
        entry = store.entry(model.model_id)
        assert entry.received  # the partial upload kept its bytes
        for file in model.files()[1:]:
            store.receive_file(model.model_id, file)
        store.attach_model(model.model_id, model)
        assert store.get_model(model.model_id) is model

    def test_oversized_single_model_is_admitted(self, model):
        store = ModelStore(1000)
        upload(store, model)
        assert store.get_model(model.model_id) is model
        assert store.resident_bytes > 1000  # documented overrun

    def test_explicit_evict_forgets_manifest_too(self, model):
        store = ModelStore()
        upload(store, model)
        store.evict(model.model_id)
        assert store.entry(model.model_id) is None
        assert store.resident_bytes == 0
        assert store.stored_ids() == []

    def test_unbudgeted_store_never_evicts(self, model):
        tiny = tinynet()
        store = ModelStore()
        upload(store, model)
        upload(store, tiny)
        assert store.evictions == 0
        assert store.has_complete(model.model_id)
        assert store.has_complete(tiny.model_id)


class TestStoreMetrics:
    def test_gauge_and_counter_track_the_store(self, model):
        tiny = tinynet()
        registry = MetricsRegistry(clock=lambda: 0.0)
        store = ModelStore(
            model.total_bytes + 100, metrics=registry, server="edge-0"
        )
        upload(store, tiny)
        assert registry.value(
            "store_bytes_resident", server="edge-0"
        ) == float(tiny.total_bytes)
        upload(store, model)
        assert registry.value("store_evictions_total", server="edge-0") == 1.0
        assert registry.value(
            "store_bytes_resident", server="edge-0"
        ) == float(store.resident_bytes)
