"""Tests for compiled execution plans (fold/fuse/arena/batch)."""

import numpy as np
import pytest

from repro.nn import plan as plan_module
from repro.nn.cost import network_costs, plan_costs
from repro.nn.network import Network
from repro.nn.plan import compile_plan, optimization_enabled, set_optimization
from repro.nn.zoo import build_model, smallnet
from repro.nn.zoo.resnetlike import resnet_mini_bn
from repro.sim import SeededRng

#: models whose plans must match the reference walk bit for bit
BITWISE_MODELS = ["smallnet", "tinynet", "alexnet", "resnet-mini", "googlenet"]

#: BatchNorm folding re-associates the affine chain; 1e-6 is the contract
FOLD_TOLERANCE = dict(rtol=1e-5, atol=1e-6)

#: stacked GEMMs re-associate differently than per-sample GEMMs; softmax
#: outputs of deep models see up to ~1e-5 absolute drift
BATCH_TOLERANCE = dict(rtol=1e-4, atol=1e-5)


def model_input(model, seed=7):
    return SeededRng(seed, f"plan/{model.name}").uniform_array(
        tuple(model.network.input_shape), 0, 255
    )


def reference_forward(network, x):
    return network.forward(x, optimize=False)


@pytest.fixture(autouse=True)
def restore_switch():
    yield
    set_optimization(None)


@pytest.fixture(scope="module")
def small():
    return smallnet()


# -- numerical equivalence ------------------------------------------------------


class TestEquivalence:
    @pytest.mark.parametrize("name", BITWISE_MODELS)
    def test_plan_matches_reference_bitwise(self, name):
        model = build_model(name)
        x = model_input(model)
        expected = reference_forward(model.network, x)
        got = model.network.plan_for().forward(x)
        assert np.array_equal(got, expected)

    def test_batchnorm_fold_within_tolerance(self):
        model = resnet_mini_bn()
        x = model_input(model)
        expected = reference_forward(model.network, x)
        plan = model.network.plan_for()
        assert plan.stats.folded > 0
        np.testing.assert_allclose(plan.forward(x), expected, **FOLD_TOLERANCE)

    def test_every_offload_point_composes(self, small):
        net = small.network
        x = model_input(small)
        expected = reference_forward(net, x)
        last = len(net.layers) - 1
        for point in net.offload_points():
            front = compile_plan(net, 0, point.index)
            rear = compile_plan(net, point.index + 1, last)
            assert np.array_equal(rear.forward(front.forward(x)), expected)

    def test_forward_range_optimized_matches_reference(self, small):
        net = small.network
        x = model_input(small)
        point = net.offload_points()[2]
        feature = net.forward_range(x, 0, point.index, optimize=False)
        assert np.array_equal(
            net.forward_range(x, 0, point.index, optimize=True), feature
        )


# -- split isolation ------------------------------------------------------------


class TestSplitIsolation:
    def test_fusion_never_crosses_split(self, small):
        """No step of a front/rear plan covers a layer beyond its range."""
        net = small.network
        last = len(net.layers) - 1
        for point in net.offload_points():
            front = compile_plan(net, 0, point.index)
            rear = compile_plan(net, point.index + 1, last)
            front_covered = [
                index for step in front.steps for index, _, _ in step.layers
            ]
            rear_covered = [
                index for step in rear.steps for index, _, _ in step.layers
            ]
            # An empty front (only elided layers before the point) is fine.
            assert all(index <= point.index for index in front_covered)
            assert all(index >= point.index + 1 for index in rear_covered)
            assert tuple(front.output_shape) == tuple(
                net.layers[point.index].out_shape
            )

    def test_split_before_relu_leaves_relu_unfused(self, small):
        """Splitting between conv and its ReLU must not fuse across."""
        net = small.network
        relu_index = next(
            index
            for index, layer in enumerate(net.layers)
            if layer.kind == "relu"
        )
        front = compile_plan(net, 0, relu_index - 1)
        rear = compile_plan(net, relu_index, len(net.layers) - 1)
        assert front.stats.fused == 0
        assert rear.steps[0].kind == "relu"


# -- arena safety ---------------------------------------------------------------


class TestArenaSafety:
    @pytest.mark.parametrize("name", ["smallnet", "alexnet", "resnet-mini"])
    def test_no_step_output_aliases_its_input(self, name):
        model = build_model(name)
        x = model_input(model)
        value, trace = model.network.plan_for().forward_traced(x)
        assert np.array_equal(value, reference_forward(model.network, x))
        offenders = [
            record["step"] for record in trace if record["output_aliases_input"]
        ]
        assert offenders == []

    def test_result_never_aliases_arena(self, small):
        plan = small.network.plan_for()
        x = model_input(small)
        first = plan.forward(x).copy()
        plan.forward(np.zeros_like(x))
        assert np.array_equal(plan.forward(x), first)


# -- batched forward ------------------------------------------------------------


class TestBatchedForward:
    @pytest.mark.parametrize("name", ["smallnet", "alexnet", "resnet-mini"])
    def test_batch_matches_looped(self, name):
        model = build_model(name)
        xs = [model_input(model, seed) for seed in range(4)]
        looped = np.stack([reference_forward(model.network, x) for x in xs])
        batched = model.inference_batch(xs)
        assert batched.shape == looped.shape
        np.testing.assert_allclose(batched, looped, **BATCH_TOLERANCE)

    def test_single_sample_is_auto_batched(self, small):
        x = model_input(small)
        batched = small.network.forward_batch(x)
        assert batched.shape[0] == 1
        np.testing.assert_allclose(
            batched[0], reference_forward(small.network, x), **BATCH_TOLERANCE
        )

    def test_reference_batch_path_is_exact(self, small):
        xs = [model_input(small, seed) for seed in range(3)]
        looped = np.stack([reference_forward(small.network, x) for x in xs])
        assert np.array_equal(
            small.network.forward_batch(xs, optimize=False), looped
        )


# -- plan cache and invalidation ------------------------------------------------


class TestPlanCache:
    def test_plan_for_caches_per_range(self, small):
        net = small.network
        assert net.plan_for() is net.plan_for()
        assert net.plan_for(0, 3) is not net.plan_for()

    def test_param_replacement_recompiles(self):
        model = smallnet(seed=11)
        net = model.network
        x = model_input(model)
        stale = net.plan_for()
        conv = next(layer for layer in net.layers if layer.kind == "conv")
        conv.params["weight"] = conv.params["weight"] * np.float32(2.0)
        conv.invalidate_param_cache()
        assert not stale.is_valid()
        fresh = net.plan_for()
        assert fresh is not stale
        assert np.array_equal(fresh.forward(x), reference_forward(net, x))


# -- the optimization switch ----------------------------------------------------


class TestSwitch:
    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv(plan_module.NO_OPTIMIZE_ENV, "1")
        assert not optimization_enabled()
        set_optimization(True)
        assert optimization_enabled()
        set_optimization(None)
        assert not optimization_enabled()

    def test_network_forward_honours_switch(self, small):
        x = model_input(small)
        plan = small.network.plan_for()
        set_optimization(False)
        before = plan.forwards
        small.network.forward(x)
        assert plan.forwards == before
        set_optimization(True)
        small.network.forward(x)
        assert plan.forwards == before + 1


# -- cost integration -----------------------------------------------------------


class TestPlanCosts:
    def test_plan_costs_fewer_entries_same_flops_order(self, small):
        net = small.network
        reference = network_costs(net)
        optimized = plan_costs(net)
        assert len(optimized) < len(reference)
        assert sum(c.flops for c in optimized) <= sum(
            c.flops for c in reference
        )
        indices = [c.spine_index for c in optimized]
        assert indices == sorted(indices)

    def test_partition_optimizer_accepts_plan_costs(self, small):
        from repro.core.partition import PartitionOptimizer
        from repro.devices import edge_server_x86, odroid_xu4_client
        from repro.devices.predictor import fit_predictor_for
        from repro.netsim.link import NetemProfile

        client, server = odroid_xu4_client(), edge_server_x86()
        costs = network_costs(small.network)
        optimizer = PartitionOptimizer(
            fit_predictor_for(client, costs, noise=0.0),
            fit_predictor_for(server, costs, noise=0.0),
            client,
            server,
            use_plan_costs=True,
        )
        choice = optimizer.choose(small.network, NetemProfile.wifi_30mbps())
        labels = {p.label for p in small.network.offload_points()}
        assert choice.point.label in labels


# -- the batching server API ----------------------------------------------------


class TestServerBatch:
    def test_batch_partial_inference_matches_sessions(self, small):
        from repro.core.server import EdgeServer
        from repro.devices import Device, edge_server_x86
        from repro.sim import Simulator

        sim = Simulator()
        server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge")
        server.store.begin_upload(small.model_id, [])
        server.store.attach_model(small.model_id, small)
        xs = [model_input(small, seed) for seed in range(3)]
        outputs = server.batch_partial_inference(small.model_id, xs)
        assert len(outputs) == 3
        for x, out in zip(xs, outputs):
            np.testing.assert_allclose(
                out, reference_forward(small.network, x), **BATCH_TOLERANCE
            )
        assert server.batch_partial_inference(small.model_id, []) == []


# -- telemetry ------------------------------------------------------------------


class TestMetrics:
    def test_record_metrics_exports_counters(self, small):
        from repro.obs import MetricsRegistry, to_prometheus_text

        registry = MetricsRegistry()
        plan = small.network.plan_for()
        plan.forward(model_input(small))
        plan.forward_batch([model_input(small, s) for s in range(2)])
        plan.record_metrics(registry)
        text = to_prometheus_text(registry)
        for name in (
            "plan_steps_fused_total",
            "plan_arena_bytes",
            "plan_forwards_total",
            "plan_arena_bytes_reused_total",
            "plan_batch_size",
        ):
            assert name in text


# -- DAG lowering ---------------------------------------------------------------


@pytest.fixture(scope="module")
def googlenet_model():
    return build_model("googlenet")


class TestDagLowering:
    """Composites compile to inlined branch/join steps — never opaque nodes."""

    def test_googlenet_has_zero_opaque_steps(self, googlenet_model):
        plan = googlenet_model.network.plan_for()
        opaque = [
            step for step in plan.steps
            if step.kind in ("inception", "residual")
        ]
        assert opaque == []

    def test_googlenet_branch_and_join_counts(self, googlenet_model):
        plan = googlenet_model.network.plan_for()
        # 9 inception modules x 4 branches each.
        assert plan.stats.joins == 9
        assert plan.stats.branches == 36
        assert sum(1 for step in plan.steps if step.kind == "concat") == 9

    def test_interval_coloring_beats_per_branch_arenas(self, googlenet_model):
        plan = googlenet_model.network.plan_for()
        # Liveness-driven slot sharing: a handful of slots cover a graph
        # with up to four concurrently-live branch outputs, and the arena
        # footprint stays below one forward's total activation traffic.
        assert 2 <= plan.stats.arena_slots <= 8
        assert plan.stats.arena_bytes < plan.stats.reuse_bytes_per_forward

    def test_fusion_applies_inside_branches(self, googlenet_model):
        plan = googlenet_model.network.plan_for()
        fused_branch_convs = [
            step for step in plan.steps
            if step.kind == "conv" and "/b" in step.name and step.relu
        ]
        assert fused_branch_convs, "no conv+ReLU fused inside any branch"

    def test_residual_identity_shortcut_reads_shared_input(self):
        model = build_model("resnet-mini")
        plan = model.network.plan_for()
        eltwise = [s for s in plan.steps if s.kind == "eltwise"]
        assert eltwise
        # At least one block has an identity shortcut: its join reads a
        # value that is also read by the body's first step (shared fan-out).
        shared = [
            step for step in eltwise
            if any(
                value_id in other.inputs
                for value_id in step.inputs
                for other in plan.steps
                if other is not step
            )
        ]
        assert shared

    def test_schedule_is_topological(self, googlenet_model):
        plan = googlenet_model.network.plan_for()
        for position, step in enumerate(plan.steps):
            assert step.output == position + 1
            for value_id in step.inputs:
                assert value_id <= position  # producer precedes reader

    def test_range_crossing_join_matches_forward_range_at_all_candidates(
        self, googlenet_model
    ):
        """Every candidate offload split the PartitionOptimizer sweeps
        (``network.offload_points()``) composes bitwise — including splits
        whose front or rear range crosses inception branch-and-join
        stages."""
        net = googlenet_model.network
        x = model_input(googlenet_model)
        last = len(net.layers) - 1
        expected_layers = []
        value = x
        for layer in net.layers:
            value = layer.forward(value)
            expected_layers.append(value)
        for point in net.offload_points():
            front = net.forward_range(x, 0, point.index, optimize=True)
            assert np.array_equal(front, expected_layers[point.index])
            rear = net.forward_range(front, point.index + 1, last, optimize=True)
            assert np.array_equal(rear, expected_layers[last])
