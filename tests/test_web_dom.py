"""Tests for the DOM tree."""

import numpy as np
import pytest

from repro.web.dom import Document, DOMError, Element, TextNode
from repro.web.values import TypedArray


@pytest.fixture
def doc():
    return Document()


class TestTree:
    def test_append_and_lookup(self, doc):
        button = doc.create_element("button", element_id="btn")
        doc.body.append_child(button)
        assert doc.get("btn") is button

    def test_missing_id_raises(self, doc):
        with pytest.raises(DOMError):
            doc.get("nope")
        assert doc.find("nope") is None

    def test_nested_lookup(self, doc):
        outer = doc.create_element("div", element_id="outer")
        inner = doc.create_element("span", element_id="inner")
        outer.append_child(inner)
        doc.body.append_child(outer)
        assert doc.get("inner") is inner

    def test_reparenting_moves_node(self, doc):
        a = doc.create_element("div", element_id="a")
        b = doc.create_element("div", element_id="b")
        child = doc.create_element("span", element_id="c")
        doc.body.append_child(a)
        doc.body.append_child(b)
        a.append_child(child)
        b.append_child(child)
        assert child.parent is b
        assert child not in a.children

    def test_cycle_rejected(self, doc):
        a = doc.create_element("div", element_id="a")
        b = doc.create_element("div", element_id="b")
        doc.body.append_child(a)
        a.append_child(b)
        with pytest.raises(DOMError):
            b.append_child(a)

    def test_self_append_rejected(self, doc):
        a = doc.create_element("div")
        with pytest.raises(DOMError):
            a.append_child(a)

    def test_remove_child(self, doc):
        a = doc.create_element("div", element_id="a")
        doc.body.append_child(a)
        doc.body.remove_child(a)
        assert doc.find("a") is None
        assert a.parent is None

    def test_remove_non_child_raises(self, doc):
        a = doc.create_element("div")
        with pytest.raises(DOMError):
            doc.body.remove_child(a)

    def test_append_invalid_node_rejected(self, doc):
        with pytest.raises(DOMError):
            doc.body.append_child("not a node")

    def test_element_count(self, doc):
        assert doc.element_count() == 1  # body
        doc.body.append_child(doc.create_element("div"))
        assert doc.element_count() == 2


class TestText:
    def test_append_text(self, doc):
        div = doc.create_element("div", element_id="d")
        doc.body.append_child(div)
        div.append_text("hello ")
        div.append_text("world")
        assert div.text_content == "hello world"

    def test_set_text_replaces(self, doc):
        div = doc.create_element("div")
        div.append_text("old")
        div.set_text("new")
        assert div.text_content == "new"
        assert len(div.children) == 1

    def test_text_content_recurses(self, doc):
        outer = doc.create_element("div")
        inner = doc.create_element("span")
        inner.append_text("inner")
        outer.append_text("outer ")
        outer.append_child(inner)
        assert outer.text_content == "outer inner"


class TestAttributes:
    def test_get_set(self, doc):
        el = doc.create_element("div", **{"class": "big"})
        assert el.get_attribute("class") == "big"
        el.set_attribute("class", "small")
        assert el.get_attribute("class") == "small"
        assert el.get_attribute("missing", "dflt") == "dflt"


class TestCanvas:
    def test_draw_and_get_image_data(self, doc):
        canvas = doc.create_element("canvas", element_id="cv")
        pixels = np.ones((3, 2, 2), dtype=np.float32)
        canvas.draw_image(pixels)
        got = canvas.get_image_data()
        assert isinstance(got, TypedArray)
        assert got.shape == (3, 2, 2)

    def test_draw_on_non_canvas_rejected(self, doc):
        div = doc.create_element("div")
        with pytest.raises(DOMError):
            div.draw_image(np.ones((1, 1, 1)))

    def test_get_image_data_without_draw_rejected(self, doc):
        canvas = doc.create_element("canvas")
        with pytest.raises(DOMError):
            canvas.get_image_data()

    def test_typed_array_preserved(self, doc):
        canvas = doc.create_element("canvas")
        ta = TypedArray(np.zeros((1, 2, 2)))
        canvas.draw_image(ta)
        assert canvas.get_image_data() is ta
