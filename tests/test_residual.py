"""Tests for residual blocks, the resnet-mini model, and Eltwise prototxt."""

import numpy as np
import pytest

from repro.nn.cost import network_costs, total_flops
from repro.nn.layers import ConvLayer, InputLayer, ReLULayer, ResidualBlock
from repro.nn.layers.base import LayerShapeError
from repro.nn.network import Network
from repro.nn.prototxt import (
    PrototxtError,
    network_from_prototxt,
    network_to_prototxt,
)
from repro.nn.zoo import build_model
from repro.nn.zoo.resnetlike import resnet_mini
from repro.sim import SeededRng


@pytest.fixture(scope="module")
def model():
    return resnet_mini()


@pytest.fixture
def image():
    return SeededRng(0, "rimg").uniform_array((3, 32, 32), 0, 255)


class TestResidualBlock:
    def _identity_block(self):
        return ResidualBlock(
            "res",
            body=[
                ConvLayer("c1", 4, kernel=3, pad=1),
                ReLULayer("r1"),
                ConvLayer("c2", 4, kernel=3, pad=1),
            ],
        )

    def test_identity_shortcut_adds_input(self):
        block = self._identity_block()
        block.build((4, 8, 8), SeededRng(1, "b"))
        x = SeededRng(2, "x").normal_array((4, 8, 8))
        out = block.forward(x)
        body = x
        for layer in block.body:
            body = layer.forward(body)
        assert np.allclose(out, body + x, atol=1e-5)

    def test_projection_shortcut(self):
        block = ResidualBlock(
            "down",
            body=[ConvLayer("c1", 8, kernel=3, stride=2, pad=1)],
            shortcut=[ConvLayer("proj", 8, kernel=1, stride=2)],
        )
        block.build((4, 8, 8), SeededRng(3, "b"))
        assert block.out_shape == (8, 4, 4)

    def test_shape_mismatch_rejected(self):
        block = ResidualBlock(
            "bad",
            body=[ConvLayer("c1", 8, kernel=3, stride=2, pad=1)],  # halves H,W
        )
        with pytest.raises(LayerShapeError):
            block.build((4, 8, 8), SeededRng(4, "b"))

    def test_empty_body_rejected(self):
        with pytest.raises(LayerShapeError):
            ResidualBlock("bad", body=[])

    def test_flops_include_add(self):
        block = self._identity_block()
        block.build((4, 8, 8), SeededRng(5, "b"))
        inner = sum(layer.count_flops() for layer in block.inner_layers())
        assert block.count_flops() == inner + 4 * 8 * 8

    def test_param_arrays_qualified(self):
        block = ResidualBlock(
            "res",
            body=[ConvLayer("c1", 4, kernel=1)],
            shortcut=[ConvLayer("p", 4, kernel=1)],
        )
        block.build((4, 4, 4), SeededRng(6, "b"))
        names = set(block.param_arrays())
        assert "body/c1/weight" in names
        assert "shortcut/p/weight" in names


class TestResnetMini:
    def test_registered_in_zoo(self):
        assert build_model("resnet-mini").name == "resnet-mini"

    def test_shapes_and_params(self, model):
        assert model.network.output_shape == (10,)
        assert 150_000 < model.network.param_count < 300_000
        assert total_flops(model.network) > 10e6

    def test_forward_distribution(self, model, image):
        probs = model.inference(image)
        assert probs.sum() == pytest.approx(1.0, rel=1e-4)

    def test_split_across_every_point(self, model, image):
        full = model.inference(image)
        for index in range(len(model.network.layers) - 1):
            halves = model.network.split(index)
            assert np.allclose(halves.forward(image), full, atol=1e-4)

    def test_costs_expand_residual_blocks(self, model):
        costs = network_costs(model.network)
        kinds = {cost.kind for cost in costs}
        assert "eltwise" in kinds
        assert any("res3a/" in cost.name for cost in costs)

    def test_description_roundtrip(self, model, image):
        import json

        from repro.nn.model import network_from_description

        description = json.loads(model.description_json())
        rebuilt = network_from_description(description)
        assert [l.kind for l in rebuilt.layers] == [
            l.kind for l in model.network.layers
        ]

    def test_save_load_exact(self, tmp_path, model, image):
        from repro.nn.model import Model

        model.save(str(tmp_path))
        loaded = Model.load(str(tmp_path), "resnet-mini")
        assert np.allclose(loaded.inference(image), model.inference(image), atol=1e-6)


class TestEltwisePrototxt:
    def test_roundtrip(self, model):
        text = network_to_prototxt(model.network)
        assert 'type: "Eltwise"' in text
        assert "operation: SUM" in text
        rebuilt = network_from_prototxt(text)
        assert [l.kind for l in rebuilt.layers] == [
            l.kind for l in model.network.layers
        ]
        assert rebuilt.param_count == model.network.param_count

    def test_identity_shortcut_parsed(self, model):
        text = network_to_prototxt(model.network)
        rebuilt = network_from_prototxt(text)
        res2a = next(l for l in rebuilt.layers if l.name == "res2a")
        assert res2a.shortcut == []
        res3a = next(l for l in rebuilt.layers if l.name == "res3a")
        assert len(res3a.shortcut) == 1

    def test_handwritten_eltwise(self):
        text = '''
        input: "data"
        input_dim: 1 input_dim: 2 input_dim: 4 input_dim: 4
        layer {
          name: "body" type: "Convolution" bottom: "data" top: "body"
          convolution_param { num_output: 2 kernel_size: 3 pad: 1 }
        }
        layer {
          name: "join" type: "Eltwise" bottom: "body" bottom: "data" top: "join"
          eltwise_param { operation: SUM }
        }
        '''
        network = network_from_prototxt(text)
        assert network.layers[1].kind == "residual"
        assert network.output_shape == (2, 4, 4)

    def test_three_way_eltwise_rejected(self):
        text = '''
        input: "data"
        input_dim: 1 input_dim: 2 input_dim: 4 input_dim: 4
        layer {
          name: "a" type: "Convolution" bottom: "data" top: "a"
          convolution_param { num_output: 2 kernel_size: 1 }
        }
        layer {
          name: "b" type: "Convolution" bottom: "data" top: "b"
          convolution_param { num_output: 2 kernel_size: 1 }
        }
        layer {
          name: "join" type: "Eltwise"
          bottom: "a" bottom: "b" bottom: "data" top: "join"
        }
        '''
        with pytest.raises(PrototxtError):
            network_from_prototxt(text)

    def test_weights_blob_roundtrip(self, model, image):
        from repro.nn.caffemodel import apply_weights, decode_weights, encode_weights

        blobs = decode_weights(encode_weights(model.network))
        fresh = resnet_mini(seed=11)
        apply_weights(fresh.network, blobs)
        assert np.array_equal(fresh.inference(image), model.inference(image))


class TestResidualOffloading:
    def test_resnet_app_offloads_correctly(self, model, image):
        """The whole offloading pipeline over a residual model."""
        from repro.core.client import ClientAgent
        from repro.core.server import EdgeServer
        from repro.core.snapshot import CaptureOptions
        from repro.devices import Device, edge_server_x86, odroid_xu4_client
        from repro.netsim import Channel, NetemProfile
        from repro.sim import Simulator
        from repro.web.app import make_inference_app
        from repro.web.values import TypedArray

        sim = Simulator()
        channel = Channel(sim, "client", "edge", NetemProfile.wifi_30mbps())
        server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge")
        server.serve(channel.end_b)
        client = ClientAgent(
            sim,
            Device(sim, odroid_xu4_client()),
            channel.end_a,
            capture_options=CaptureOptions(include_canvas_pixels=True),
        )
        client.start_app(make_inference_app(model), presend=True)
        client.runtime.globals["pending_pixels"] = TypedArray(image)
        client.runtime.dispatch("click", "load_btn")
        client.mark_offload_point("click", "infer_btn")
        sim.run()
        client.runtime.dispatch("click", "infer_btn")
        event = client.take_intercepted()
        process = sim.spawn(
            client.offload(event, server_costs=network_costs(model.network))
        )
        sim.run()
        assert process.ok
        expected = int(np.argmax(model.inference(image)))
        assert client.runtime.globals["result_label"] == expected
