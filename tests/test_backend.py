"""Backend-equivalence suite: reference bitwise, tuned within tolerance.

The contract the kernel-backend abstraction must keep:

* the ``reference`` backend *is* the pre-backend numpy path — plans and
  layer walks under it are bitwise identical to each other across the
  zoo, whole-network and at every split;
* the ``tuned`` backend (float32 end-to-end, threaded GEMM, integer
  quantized GEMM) stays within 1e-4 of the reference and never flips a
  top-1 label;
* the selection plumbing behaves like ``--no-optimize``: the env var
  reaches forked pool workers, and both the result-cache and plan-cache
  keys change with the backend (equivalence is a tested claim — a shared
  entry would mask a regression);
* int8-quantized plans replace every conv/fc step, report the count in
  their stats and metrics, and preserve top-1 labels.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec import ExecutionEngine, Task, task_cache_key
from repro.nn import backend as backend_module
from repro.nn.backend import (
    BACKEND_ENV,
    BackendError,
    KernelBackend,
    TunedBackend,
    active_backend_name,
    backend_names,
    blas_info,
    effective_threads,
    get_backend,
    set_backend,
)
from repro.nn.plan import plan_cache_key, set_optimization
from repro.nn.quantize import packed_feature_bytes
from repro.nn.zoo import build_model
from repro.obs import MetricsRegistry
from repro.sim import SeededRng

#: models whose reference-backend plans must match the walk bit for bit
ZOO_MODELS = ["smallnet", "tinynet", "alexnet", "resnet-mini", "googlenet"]

#: the tuned backend's pinned tolerance against the reference outputs
TUNED_TOLERANCE = 1e-4


@pytest.fixture(autouse=True)
def restore_backend():
    yield
    set_backend(None)
    set_optimization(None)
    os.environ.pop(BACKEND_ENV, None)


def model_input(model, seed=7):
    return SeededRng(seed, f"backend/{model.name}").uniform_array(
        tuple(model.network.input_shape), 0, 255
    )


class TestSelection:
    def test_registered_names(self):
        assert backend_names() == ("reference", "tuned")

    def test_default_is_reference(self):
        assert active_backend_name() == "reference"
        assert isinstance(get_backend("reference"), KernelBackend)
        assert isinstance(get_backend("tuned"), TunedBackend)

    def test_override_wins_over_env(self):
        os.environ[BACKEND_ENV] = "reference"
        set_backend("tuned")
        assert active_backend_name() == "tuned"
        set_backend(None)
        assert active_backend_name() == "reference"

    def test_env_selects_backend(self):
        os.environ[BACKEND_ENV] = "tuned"
        assert active_backend_name() == "tuned"

    def test_unknown_env_backend_raises(self):
        os.environ[BACKEND_ENV] = "cuda"
        with pytest.raises(BackendError):
            active_backend_name()

    def test_unknown_set_backend_raises(self):
        with pytest.raises(BackendError):
            set_backend("cuda")

    def test_instances_memoized(self):
        assert get_backend("tuned") is get_backend("tuned")

    def test_effective_threads_env_override(self, monkeypatch):
        monkeypatch.setenv(backend_module.BACKEND_THREADS_ENV, "3")
        assert effective_threads() == 3
        monkeypatch.setenv(backend_module.BACKEND_THREADS_ENV, "garbage")
        assert effective_threads() == (os.cpu_count() or 1)

    def test_blas_info_names_numpy(self):
        info = blas_info()
        assert info["numpy"] == np.__version__


class TestReferenceBitwise:
    """``reference`` plans equal the raw layer walk, bit for bit."""

    @pytest.mark.parametrize("name", ZOO_MODELS)
    def test_whole_network(self, name):
        set_backend("reference")
        model = build_model(name)
        x = model_input(model)
        walk = model.network.forward(x, optimize=False)
        plan = model.network.forward(x, optimize=True)
        assert walk.dtype == np.float32
        assert np.array_equal(walk, plan)

    @pytest.mark.parametrize("name", ["alexnet", "googlenet"])
    def test_split_ranges(self, name):
        set_backend("reference")
        model = build_model(name)
        x = model_input(model)
        points = model.network.offload_points()
        for point in points[:: max(1, len(points) // 4)]:
            front, rear = model.split(point.index)
            split_out = rear.inference(front.inference(x))
            assert np.array_equal(split_out, model.inference(x))


class TestTunedTolerance:
    """``tuned`` stays within the pinned tolerance and keeps every label."""

    @pytest.mark.parametrize("name", ZOO_MODELS)
    def test_forward_within_tolerance(self, name):
        set_backend("reference")
        model = build_model(name)
        x = model_input(model)
        reference = model.network.forward(x, optimize=False)
        set_backend("tuned")
        tuned_model = build_model(name)
        for optimize in (False, True):
            tuned = tuned_model.network.forward(x, optimize=optimize)
            assert tuned.dtype == np.float32
            assert np.abs(tuned - reference).max() <= TUNED_TOLERANCE
            assert int(np.argmax(tuned)) == int(np.argmax(reference))

    def test_threaded_gemm_matches_blas(self):
        tuned = TunedBackend.__new__(TunedBackend)
        KernelBackend.__init__(tuned)
        tuned.threads = 4
        tuned._pool = None
        tuned._scratch = {}
        rng = SeededRng(3, "backend/gemm")
        a = rng.normal_array((256, 96))
        b = rng.normal_array((96, 300))
        got = tuned._threaded_gemm(a, b, None)
        assert np.abs(got - a @ b).max() <= TUNED_TOLERANCE

    def test_threaded_gemm_results_outlive_next_call(self):
        tuned = TunedBackend.__new__(TunedBackend)
        KernelBackend.__init__(tuned)
        tuned.threads = 2
        tuned._pool = None
        tuned._scratch = {}
        rng = SeededRng(4, "backend/gemm")
        a = rng.normal_array((256, 64))
        b = rng.normal_array((64, 256))
        first = tuned._threaded_gemm(a, b, None)
        snapshot = first.copy()
        tuned._threaded_gemm(rng.normal_array((256, 64)), b, None)
        assert np.array_equal(first, snapshot)

    def test_kernel_calls_counted(self):
        set_backend("tuned")
        tuned = get_backend("tuned")
        before = dict(tuned.calls)
        model = build_model("smallnet")
        model.network.forward(model_input(model), optimize=True)
        assert tuned.calls.get("gemm", 0) > before.get("gemm", 0)


@settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    name=st.sampled_from(["smallnet", "tinynet", "resnet-mini"]),
    seed=st.integers(0, 2**16),
    split_fraction=st.floats(0.0, 1.0),
)
def test_backend_equivalence_fuzz(name, seed, split_fraction):
    """Random zoo model + input + split: reference bitwise, tuned close.

    The property the whole PR rests on, sampled instead of enumerated:
    for any model, any input, and any offload split, the reference
    backend's split inference equals the unsplit walk bitwise, and the
    tuned backend agrees within tolerance with an identical top-1 label.
    """
    set_backend("reference")
    try:
        model = build_model(name)
        x = model_input(model, seed=seed)
        reference = model.inference(x)
        points = model.network.offload_points()
        point = points[int(split_fraction * (len(points) - 1))]
        front, rear = model.split(point.index)
        assert np.array_equal(rear.inference(front.inference(x)), reference)

        set_backend("tuned")
        tuned_model = build_model(name)
        tuned_front, tuned_rear = tuned_model.split(point.index)
        tuned = tuned_rear.inference(tuned_front.inference(x))
        assert np.abs(tuned - reference).max() <= TUNED_TOLERANCE
        assert int(np.argmax(tuned)) == int(np.argmax(reference))
    finally:
        set_backend(None)


class TestWorkerAndCachePlumbing:
    """REPRO_BACKEND must reach pool workers and every cache key."""

    def test_env_reaches_pool_workers(self):
        os.environ[BACKEND_ENV] = "tuned"
        outcomes = ExecutionEngine(jobs=2).run(
            [
                Task.make("a", "repro.nn.backend.active_backend_name", {}),
                Task.make("b", "repro.nn.backend.active_backend_name", {}),
            ]
        )
        assert [o.payload for o in outcomes] == ["tuned", "tuned"]

    def test_task_cache_key_depends_on_backend(self):
        task = Task.make("k", "repro.nn.backend.active_backend_name", {})
        set_backend("reference")
        reference_key = task_cache_key(task)
        set_backend("tuned")
        assert task_cache_key(task) != reference_key

    def test_plan_cache_key_depends_on_backend_and_bits(self):
        network = build_model("smallnet").network
        end = len(network.layers) - 1
        keys = {
            plan_cache_key(network, 0, end, backend="reference"),
            plan_cache_key(network, 0, end, backend="tuned"),
            plan_cache_key(network, 0, end, backend="reference", quantize_bits=8),
            plan_cache_key(network, 0, end, backend="reference", quantize_bits=4),
        }
        assert len(keys) == 4

    def test_plan_memo_keyed_by_backend(self):
        network = build_model("smallnet").network
        set_backend("reference")
        reference_plan = network.plan_for()
        set_backend("tuned")
        tuned_plan = network.plan_for()
        assert reference_plan is not tuned_plan
        assert reference_plan.backend_name == "reference"
        assert tuned_plan.backend_name == "tuned"


class TestQuantizedPlans:
    @pytest.mark.parametrize("backend", ["reference", "tuned"])
    @pytest.mark.parametrize("name", ["smallnet", "googlenet"])
    def test_quantized_plan_preserves_top1(self, backend, name):
        set_backend(backend)
        model = build_model(name)
        x = model_input(model)
        reference = model.network.forward(x, optimize=False)
        qplan = model.network.plan_for(quantize_bits=8)
        assert qplan.stats.quantized > 0
        quantized = qplan.forward(x)
        assert int(np.argmax(quantized)) == int(np.argmax(reference))

    def test_tuned_takes_integer_gemm_path(self):
        set_backend("tuned")
        tuned = get_backend("tuned")
        before = tuned.calls.get("quantized_gemm_int", 0)
        model = build_model("smallnet")
        model.network.plan_for(quantize_bits=8).forward(model_input(model))
        assert tuned.calls.get("quantized_gemm_int", 0) > before

    def test_quantized_steps_metric(self):
        model = build_model("smallnet")
        qplan = model.network.plan_for(quantize_bits=8)
        registry = MetricsRegistry()
        qplan.record_metrics(registry)
        counter = registry.counter(
            "quantized_steps_total",
            help="conv/fc steps compiled with quantized weights",
            plan=qplan.name,
        )
        assert counter.value == qplan.stats.quantized > 0

    def test_quantized_plan_summary(self):
        model = build_model("smallnet")
        summary = model.network.plan_for(quantize_bits=8).summary()
        assert summary["quantized_steps"] > 0
        assert summary["backend"] == "reference"

    def test_invalid_bits_rejected(self):
        network = build_model("smallnet").network
        with pytest.raises(ValueError):
            network.plan_for(quantize_bits=0)

    def test_partition_optimizer_prices_packed_bytes(self):
        from repro.eval.fig8 import make_optimizer

        optimizer = make_optimizer("googlenet", quantize_bits=8)
        assert optimizer.quantize_bits == 8
        assert optimizer._feature_bytes((4, 5)) == packed_feature_bytes(20, 8)


class TestBackendMetrics:
    def test_record_backend_metrics(self):
        set_backend("tuned")
        model = build_model("smallnet")
        model.network.forward(model_input(model), optimize=True)
        registry = MetricsRegistry()
        backend_module.record_backend_metrics(registry)
        gauge = registry.gauge(
            "backend_threads",
            help="GEMM thread budget of the tuned backend on this host",
        )
        assert gauge.value == effective_threads()
        counter = registry.counter(
            "backend_kernel_calls_total",
            help="kernel invocations through the backend interface",
            backend="tuned",
            op="gemm",
        )
        assert counter.value > 0
