"""Tests for the observability layer: registry, spans, exporters, wiring.

Includes the PR's acceptance checks: for an offload-mode session the
registry phase histograms agree with the ``PhaseBreakdown`` totals to
within 1e-9, and the Prometheus text export round-trips through
``parse_prometheus_text``.
"""

import json
import math

import pytest

from repro.eval.scenarios import Testbed
from repro.obs import (
    MetricsError,
    MetricsRegistry,
    SpanRecorder,
    collect_metrics,
    parse_prometheus_text,
    spans_to_events,
    to_json,
    to_prometheus_text,
)
from repro.sim import Simulator


class TestCountersAndGauges:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert registry.value("requests_total") == 3.5
        with pytest.raises(MetricsError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(4)
        gauge.dec()
        gauge.inc(0.5)
        assert registry.value("queue_depth") == 3.5

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("bytes_total", link="a->b").inc(10)
        registry.counter("bytes_total", link="b->a").inc(7)
        assert registry.value("bytes_total", link="a->b") == 10
        assert registry.value("bytes_total", link="b->a") == 7
        assert len(registry.series("bytes_total")) == 2

    def test_same_name_same_labels_is_same_metric(self):
        registry = MetricsRegistry()
        registry.counter("n", server="e").inc()
        registry.counter("n", server="e").inc()
        assert registry.value("n", server="e") == 2

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(MetricsError):
            registry.gauge("x_total")

    def test_untouched_metric_reads_zero(self):
        assert MetricsRegistry().value("never_created") == 0.0


class TestHistogram:
    def test_observe_count_sum_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds")
        for value in (0.3, 0.1, 0.2):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.6)
        assert hist.quantile(0.0) == 0.1
        assert hist.quantile(1.0) == 0.3
        assert hist.quantile(0.5) == 0.2
        assert hist.mean() == pytest.approx(0.2)

    def test_empty_quantile_raises(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(MetricsError):
            hist.quantile(0.5)

    def test_bucket_counts_cumulative(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.5, 1.5, 2.5, 2.5):
            hist.observe(value)
        assert hist.bucket_counts((1.0, 2.0, 3.0)) == [1, 2, 4]


class TestTimerAndClock:
    def test_timer_uses_virtual_clock(self):
        sim = Simulator()

        def workload():
            with sim.metrics.timer("step_seconds", stage="restore"):
                yield sim.timeout(2.5)

        sim.spawn(workload())
        sim.run()
        hist = sim.metrics.get("step_seconds", stage="restore")
        assert hist.count == 1
        assert hist.quantile(1.0) == pytest.approx(2.5)


class TestMerge:
    def test_merge_sums_counters_and_concats_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(4.0)
        b.counter("only_b_total", shard="1").inc()
        merged = MetricsRegistry.merged([a, b])
        assert merged.value("n") == 5
        assert merged.get("h").count == 2
        assert merged.get("h").sum == pytest.approx(5.0)
        assert merged.value("only_b_total", shard="1") == 1

    def test_merge_kind_conflict_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(MetricsError):
            a.merge(b)

    def test_collect_metrics_captures_new_simulators(self):
        with collect_metrics() as registries:
            sim = Simulator()
            sim.schedule(1.0, lambda: None)
            sim.run()
        assert sim.metrics in registries
        merged = MetricsRegistry.merged(registries)
        assert merged.value("sim_events_dispatched_total") >= 1


class TestSpans:
    def test_span_context_manager_records_clock_interval(self):
        sim = Simulator()

        def workload():
            with sim.spans.span("transfer", track="network") as attrs:
                yield sim.timeout(1.5)
                attrs["bytes"] = 100

        sim.spawn(workload())
        sim.run()
        (span,) = sim.spans.by_track("network")
        assert span.duration == pytest.approx(1.5)
        assert span.attrs["bytes"] == 100

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder().add("x", 2.0, 1.0)

    def test_chrome_export_assigns_tracks_in_first_seen_order(self):
        recorder = SpanRecorder()
        recorder.add("a", 0.0, 1.0, track="client")
        recorder.add("b", 1.0, 2.0, track="server")
        recorder.add("c", 2.0, 3.0, track="client")
        events = spans_to_events(recorder.spans)
        names = {e["tid"]: e["args"]["name"]
                 for e in events if e["name"] == "thread_name"}
        assert names == {1: "client", 2: "server"}
        spans = [e for e in events if e["ph"] == "X"]
        assert [s["tid"] for s in spans] == [1, 2, 1]


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("req_total", help="requests", server="edge").inc(5)
        registry.gauge("cache_size", server="edge").set(2)
        hist = registry.histogram("wait_seconds", device="cpu")
        for value in (0.001, 0.02, 1.7):
            hist.observe(value)
        return registry

    def test_prometheus_round_trip(self):
        registry = self._populated()
        parsed = parse_prometheus_text(to_prometheus_text(registry))
        assert parsed["types"]["req_total"] == "counter"
        assert parsed["types"]["wait_seconds"] == "histogram"
        samples = parsed["samples"]
        assert samples[("req_total", (("server", "edge"),))] == 5
        assert samples[("cache_size", (("server", "edge"),))] == 2
        assert samples[("wait_seconds_count", (("device", "cpu"),))] == 3
        assert samples[("wait_seconds_sum", (("device", "cpu"),))] == pytest.approx(
            1.721
        )
        # cumulative buckets end at the +Inf bucket == count
        inf_key = ("wait_seconds_bucket", (("device", "cpu"), ("le", "+Inf")))
        assert samples[inf_key] == 3

    def test_prometheus_buckets_monotone(self):
        parsed = parse_prometheus_text(to_prometheus_text(self._populated()))
        buckets = sorted(
            (dict(labels)["le"], value)
            for (name, labels), value in parsed["samples"].items()
            if name == "wait_seconds_bucket"
        )
        counts = [v for _, v in sorted(
            buckets, key=lambda kv: math.inf if kv[0] == "+Inf" else float(kv[0])
        )]
        assert counts == sorted(counts)

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("!!! not a metric line")

    def test_json_export_parses(self):
        document = json.loads(to_json(self._populated()))
        family = document["metrics"]["wait_seconds"]
        assert family["kind"] == "histogram"
        (series,) = family["series"]
        assert series["count"] == 3
        assert series["labels"] == {"device": "cpu"}


class TestKernelInstrumentation:
    def test_dispatch_counter_matches_kernel_count(self):
        sim = Simulator()
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.metrics.value("sim_events_dispatched_total") == sim.dispatched

    def test_spawn_and_wakeup_counters(self):
        sim = Simulator()

        def workload():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.spawn(workload())
        sim.run()
        assert sim.metrics.value("sim_processes_spawned_total") == 1
        # start + two timeout completions
        assert sim.metrics.value("sim_process_wakeups_total") == 3


class TestSessionTelemetry:
    """Acceptance: registry phase histograms == PhaseBreakdown totals."""

    @pytest.fixture(scope="class")
    def offload_world(self):
        testbed = Testbed()
        result = testbed.run_offload("smallnet", wait_for_ack=True)
        return testbed, result

    def test_phase_histograms_match_breakdown(self, offload_world):
        testbed, result = offload_world
        registry = testbed.sim.metrics
        for phase, seconds in result.phases.as_dict().items():
            hist = registry.get(
                "session_phase_seconds", phase=phase, mode=result.mode
            )
            assert hist is not None, phase
            assert hist.sum == pytest.approx(seconds, abs=1e-9)

    def test_total_histogram_matches_wall_time(self, offload_world):
        testbed, result = offload_world
        hist = testbed.sim.metrics.get("session_total_seconds", mode=result.mode)
        assert hist.sum == pytest.approx(result.total_seconds, abs=1e-9)
        assert testbed.sim.metrics.value("sessions_total", mode=result.mode) == 1

    def test_spans_cover_exactly_the_session(self, offload_world):
        testbed, result = offload_world
        spans = testbed.sim.spans.by_category("session-phase")
        assert spans, "session emitted no spans"
        assert sum(s.duration for s in spans) == pytest.approx(
            result.total_seconds, abs=1e-9
        )
        assert min(s.start for s in spans) == pytest.approx(result.started_at)
        assert max(s.end for s in spans) == pytest.approx(result.finished_at)
        assert {s.track for s in spans} <= {"client", "network", "server"}

    def test_prometheus_export_of_real_run_round_trips(self, offload_world):
        testbed, _ = offload_world
        parsed = parse_prometheus_text(to_prometheus_text(testbed.sim.metrics))
        samples = parsed["samples"]
        assert samples[("server_executions_total", (("server", "edge-1"),))] == 1
        assert parsed["types"]["session_phase_seconds"] == "histogram"

    def test_network_counters_match_link_state(self, offload_world):
        testbed, _ = offload_world
        registry = testbed.sim.metrics
        channel = testbed.topology.channel
        for link in (channel.link_ab, channel.link_ba):
            assert registry.value(
                "net_bytes_sent_total", link=link.name
            ) == link.bytes_sent
            assert registry.value(
                "net_messages_delivered_total", link=link.name
            ) == link.delivered_count

    def test_device_queue_wait_observed(self, offload_world):
        testbed, _ = offload_world
        hist = testbed.sim.metrics.get(
            "device_queue_wait_seconds", device=testbed.server_profile.name
        )
        assert hist is not None and hist.count > 0
        assert hist.quantile(0.0) >= 0.0
