"""Tests for the JS-like value model."""

import numpy as np
import pytest

from repro.web.values import (
    UNDEFINED,
    ImageData,
    JSArray,
    JSObject,
    TypedArray,
    deep_equal,
    is_heap_value,
    is_scalar,
)


class TestUndefined:
    def test_singleton(self):
        from repro.web.values import _Undefined

        assert _Undefined() is UNDEFINED

    def test_falsy(self):
        assert not UNDEFINED

    def test_repr(self):
        assert repr(UNDEFINED) == "undefined"


class TestJSObject:
    def test_missing_property_is_undefined(self):
        obj = JSObject(x=1)
        assert obj["x"] == 1
        assert obj["missing"] is UNDEFINED

    def test_set_and_delete(self):
        obj = JSObject()
        obj["k"] = "v"
        assert "k" in obj
        del obj["k"]
        assert "k" not in obj

    def test_delete_missing_is_noop(self):
        obj = JSObject()
        del obj["nothing"]  # must not raise


class TestJSArray:
    def test_push_and_index(self):
        arr = JSArray()
        arr.push(1)
        arr.push(2)
        assert len(arr) == 2
        assert arr[1] == 2
        arr[0] = 10
        assert list(arr) == [10, 2]


class TestTypedArray:
    def test_wraps_float32(self):
        ta = TypedArray([1, 2, 3])
        assert ta.data.dtype == np.float32
        assert ta.shape == (3,)
        assert ta.size == 3

    def test_equals(self):
        a = TypedArray([[1.0, 2.0]])
        b = TypedArray([[1.0, 2.0]])
        c = TypedArray([1.0, 2.0])
        assert a.equals(b)
        assert not a.equals(c)  # different shape


class TestImageData:
    def test_default_encoded_bytes(self):
        img = ImageData(np.zeros((3, 4, 4)))
        assert img.encoded_bytes == 3 * 4 * 4 + 1024

    def test_explicit_encoded_bytes(self):
        img = ImageData(np.zeros((3, 4, 4)), encoded_bytes=500)
        assert img.encoded_bytes == 500

    def test_invalid_encoded_bytes(self):
        with pytest.raises(ValueError):
            ImageData(np.zeros((2, 2)), encoded_bytes=0)

    def test_is_a_typed_array(self):
        img = ImageData(np.ones((2, 2)))
        assert isinstance(img, TypedArray)


class TestClassifiers:
    def test_scalars(self):
        for value in (None, UNDEFINED, True, 1, 2.5, "s"):
            assert is_scalar(value)
            assert not is_heap_value(value)

    def test_heap_values(self):
        for value in (JSObject(), JSArray(), TypedArray([1.0])):
            assert is_heap_value(value)
            assert not is_scalar(value)


class TestDeepEqual:
    def test_scalars(self):
        assert deep_equal(1, 1)
        assert not deep_equal(1, 2)
        assert deep_equal(None, None)
        assert deep_equal(UNDEFINED, UNDEFINED)
        assert not deep_equal(None, UNDEFINED)

    def test_bool_int_distinction(self):
        assert not deep_equal(True, 1)

    def test_nested_structures(self):
        a = JSObject(x=JSArray([1, JSObject(y=2)]))
        b = JSObject(x=JSArray([1, JSObject(y=2)]))
        assert deep_equal(a, b)
        b["x"][1]["y"] = 3
        assert not deep_equal(a, b)

    def test_typed_arrays(self):
        assert deep_equal(TypedArray([1.0, 2.0]), TypedArray([1.0, 2.0]))
        assert not deep_equal(TypedArray([1.0]), TypedArray([2.0]))

    def test_cycles_do_not_hang(self):
        a = JSObject()
        a["self"] = a
        b = JSObject()
        b["self"] = b
        assert deep_equal(a, b)

    def test_key_mismatch(self):
        assert not deep_equal(JSObject(x=1), JSObject(y=1))

    def test_length_mismatch(self):
        assert not deep_equal(JSArray([1]), JSArray([1, 2]))
