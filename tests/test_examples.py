"""Smoke tests: every example script must run to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    ("quickstart.py", [], "phase timeline"),
    ("image_recognition_app.py", ["agenet"], "Fig. 6"),
    ("privacy_partial_inference.py", [], "defense effective"),
    ("mobile_handover.py", [], "handover is stateless"),
    ("partition_explorer.py", ["agenet", "30"], "optimizer choice"),
    ("multi_client_edge.py", ["2"], "mean latency"),
    ("model_files_workflow.py", [], "chrome://tracing"),
    ("video_stream.py", ["smallnet", "4", "5"], "per-frame log"),
]


@pytest.mark.parametrize("script,args,needle", EXAMPLES)
def test_example_runs(script, args, needle, tmp_path):
    if script == "model_files_workflow.py":
        args = [str(tmp_path)]
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle in result.stdout
