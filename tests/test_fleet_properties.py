"""Property-based invariants of the fleet scheduler and scenarios.

Three families, per the fleet design contract:

* **determinism** — a scheduler fed the same seed and the same observation
  sequence picks the same edges; a whole scenario replays bit-for-bit.
* **conservation** — every admitted request is served exactly once, under
  any policy and any survivable kill schedule.
* **liveness hygiene** — no policy ever picks a dead (detached) or
  excluded edge, whatever state the windows and queues are in.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetScenario, FleetScheduler, make_policy
from repro.fleet.policies import POLICY_NAMES
from repro.sim import SeededRng, Simulator

policies = st.sampled_from(POLICY_NAMES)

#: an observation script: (op, edge index, response seconds)
ops = st.lists(
    st.tuples(
        st.sampled_from(["begin", "complete", "fail", "revive", "pick"]),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=0.001, max_value=2.0, allow_nan=False),
    ),
    max_size=60,
)


def drive(policy_name, seed, script, names=("e0", "e1", "e2", "e3")):
    """Apply an observation script; return every pick the policy made."""
    sim = Simulator()
    scheduler = FleetScheduler(
        sim,
        names,
        make_policy(policy_name, SeededRng(seed, "prop")),
        max_outstanding_per_edge=4,
    )
    picks = []
    for op, index, seconds in script:
        name = names[index % len(names)]
        state = scheduler.edge(name)
        if op == "begin" and state.alive and state.outstanding < 4:
            scheduler.begin(name)
        elif op == "complete" and state.outstanding > 0:
            scheduler.complete(name, seconds)
        elif op == "fail" and state.outstanding > 0:
            scheduler.fail(name)
        elif op == "revive":
            scheduler.mark_alive(name)
        elif op == "pick":
            picks.append(scheduler.try_pick())
    return picks, scheduler


class TestSchedulerDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(policy=policies, seed=st.integers(0, 2**32 - 1), script=ops)
    def test_same_seed_same_script_same_picks(self, policy, seed, script):
        first, _ = drive(policy, seed, script)
        second, _ = drive(policy, seed, script)
        assert first == second

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), policy=policies)
    def test_scenario_replays_bit_for_bit(self, seed, policy):
        import json

        def run():
            report = FleetScenario(
                sessions=2, requests_per_session=1, seed=seed, policy=policy
            ).run()
            return json.dumps(report.as_dict(), sort_keys=True)

        assert run() == run()


class TestNeverPicksDetachedEdge:
    @settings(max_examples=80, deadline=None)
    @given(policy=policies, seed=st.integers(0, 2**32 - 1), script=ops)
    def test_picks_are_always_alive_and_under_cap(self, policy, seed, script):
        sim = Simulator()
        names = ("e0", "e1", "e2", "e3")
        sched = FleetScheduler(
            sim,
            names,
            make_policy(policy, SeededRng(seed, "prop")),
            max_outstanding_per_edge=4,
        )
        for op, index, seconds in script:
            name = names[index % len(names)]
            state = sched.edge(name)
            if op == "begin" and state.alive and state.outstanding < 4:
                sched.begin(name)
            elif op == "complete" and state.outstanding > 0:
                sched.complete(name, seconds)
            elif op == "fail" and state.outstanding > 0:
                sched.fail(name)
            elif op == "revive":
                sched.mark_alive(name)
            elif op == "pick":
                picked = sched.try_pick()
                if picked is not None:
                    chosen = sched.edge(picked)
                    assert chosen.alive, f"{policy} picked dead edge {picked}"
                    assert chosen.outstanding < 4

    @settings(max_examples=40, deadline=None)
    @given(policy=policies, seed=st.integers(0, 2**32 - 1), script=ops,
           dead=st.sets(st.integers(0, 3), max_size=3))
    def test_exclusion_is_respected(self, policy, seed, script, dead):
        names = ("e0", "e1", "e2", "e3")
        excluded = frozenset(names[i] for i in dead)
        _, scheduler = drive(policy, seed, script)
        for _ in range(5):
            picked = scheduler.try_pick(excluded)
            if picked is None:
                break
            assert picked not in excluded
            scheduler.begin(picked)


class TestConservation:
    @settings(max_examples=12, deadline=None)
    @given(
        policy=policies,
        seed=st.integers(0, 10_000),
        sessions=st.integers(1, 4),
        requests=st.integers(1, 2),
        kill_at=st.one_of(st.none(), st.floats(0.05, 2.0, allow_nan=False)),
    )
    def test_every_admitted_request_served_exactly_once(
        self, policy, seed, sessions, requests, kill_at
    ):
        scenario = FleetScenario(
            sessions=sessions,
            requests_per_session=requests,
            seed=seed,
            policy=policy,
            reply_timeout=1.0,
        )
        if kill_at is not None:
            # never kill the whole fleet: edge-0 only, the rest survive
            scenario.inject_kill("edge-0", kill_at)
        report = scenario.run()
        expected = sessions * requests
        keys = [(r.session, r.request_index) for r in report.records]
        assert len(keys) == expected
        assert len(set(keys)) == expected
        assert sum(row.served for row in report.edges) == expected
        assert report.all_correct
