"""Tests for Caffe prototxt parsing/emission and grouped convolutions."""

import numpy as np
import pytest

from repro.nn.cost import total_flops
from repro.nn.layers import ConvLayer
from repro.nn.layers.base import LayerShapeError
from repro.nn.prototxt import (
    PrototxtError,
    network_from_prototxt,
    network_to_prototxt,
    parse_text,
)
from repro.nn.zoo import agenet, alexnet, googlenet
from repro.sim import SeededRng


class TestTextFormat:
    def test_scalar_fields(self):
        root = parse_text('name: "net"\ncount: 3\nratio: 0.5\nflag: true\n')
        assert root["name"] == ["net"]
        assert root["count"] == [3]
        assert root["ratio"] == [0.5]
        assert root["flag"] == [True]

    def test_nested_messages(self):
        root = parse_text("layer { name: \"c\" param { num: 1 } }")
        layer = root["layer"][0]
        assert layer["name"] == ["c"]
        assert layer["param"][0]["num"] == [1]

    def test_repeated_fields(self):
        root = parse_text('bottom: "a"\nbottom: "b"\n')
        assert root["bottom"] == ["a", "b"]

    def test_comments_ignored(self):
        root = parse_text("# header\ncount: 1 # trailing\n")
        assert root["count"] == [1]

    def test_enums(self):
        root = parse_text("pool: MAX\n")
        assert root["pool"] == ["MAX"]

    def test_block_without_colon(self):
        root = parse_text("shape { dim: 1 dim: 3 }")
        assert root["shape"][0]["dim"] == [1, 3]

    def test_unclosed_brace_rejected(self):
        with pytest.raises(PrototxtError):
            parse_text("layer { name: \"x\"")

    def test_stray_brace_rejected(self):
        with pytest.raises(PrototxtError):
            parse_text("}")


HANDWRITTEN = '''
name: "MiniNet"
# classic deploy-style input declaration
input: "data"
input_dim: 1
input_dim: 3
input_dim: 16
input_dim: 16
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param { num_output: 4 kernel_size: 3 pad: 1 }
}
layer {
  name: "relu1"
  type: "ReLU"
  bottom: "conv1"
  top: "conv1"   # in-place, like real Caffe files
}
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "conv1"
  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "fc"
  type: "InnerProduct"
  bottom: "pool1"
  top: "fc"
  inner_product_param { num_output: 5 }
}
layer {
  name: "prob"
  type: "Softmax"
  bottom: "fc"
  top: "prob"
}
'''


class TestParseNetwork:
    def test_handwritten_deploy_file(self):
        network = network_from_prototxt(HANDWRITTEN)
        assert network.name == "MiniNet"
        assert [l.kind for l in network.layers] == [
            "input", "conv", "relu", "pool", "fc", "softmax",
        ]
        assert network.output_shape == (5,)
        probs = network.forward(
            SeededRng(0, "p").uniform_array((3, 16, 16), 0, 255)
        )
        assert probs.sum() == pytest.approx(1.0, rel=1e-4)

    def test_input_layer_style(self):
        text = '''
        layer {
          name: "data" type: "Input" top: "data"
          input_param { shape { dim: 1 dim: 3 dim: 8 dim: 8 } }
        }
        layer {
          name: "conv" type: "Convolution" bottom: "data" top: "conv"
          convolution_param { num_output: 2 kernel_size: 3 }
        }
        '''
        network = network_from_prototxt(text)
        assert network.input_shape == (3, 8, 8)
        assert network.output_shape == (2, 6, 6)

    def test_global_pooling(self):
        text = '''
        input: "data"
        input_dim: 1 input_dim: 4 input_dim: 7 input_dim: 7
        layer {
          name: "gap" type: "Pooling" bottom: "data" top: "gap"
          pooling_param { pool: AVE global_pooling: true }
        }
        '''
        network = network_from_prototxt(text)
        assert network.output_shape == (4, 1, 1)

    def test_missing_input_rejected(self):
        with pytest.raises(PrototxtError):
            network_from_prototxt('layer { name: "x" type: "ReLU" }')

    def test_unknown_type_rejected(self):
        text = '''
        input: "data"
        input_dim: 1 input_dim: 3 input_dim: 8 input_dim: 8
        layer { name: "w" type: "Warp" bottom: "data" top: "w" }
        '''
        with pytest.raises(PrototxtError):
            network_from_prototxt(text)

    def test_unreachable_layer_rejected(self):
        text = HANDWRITTEN + '''
        layer {
          name: "orphan" type: "ReLU" bottom: "nowhere" top: "orphan"
        }
        '''
        with pytest.raises(PrototxtError):
            network_from_prototxt(text)


class TestRoundTrips:
    @pytest.mark.parametrize("builder", [agenet, alexnet, googlenet])
    def test_zoo_roundtrip_preserves_architecture(self, builder):
        model = builder()
        text = network_to_prototxt(model.network)
        rebuilt = network_from_prototxt(text)
        assert [l.kind for l in rebuilt.layers] == [
            l.kind for l in model.network.layers
        ]
        assert rebuilt.param_count == model.network.param_count
        assert rebuilt.output_shape == model.network.output_shape
        assert total_flops(rebuilt) == pytest.approx(total_flops(model.network))

    def test_googlenet_inceptions_reconstructed(self):
        text = network_to_prototxt(googlenet().network)
        rebuilt = network_from_prototxt(text)
        inceptions = [l for l in rebuilt.layers if l.kind == "inception"]
        assert len(inceptions) == 9
        assert inceptions[0].out_shape == (256, 28, 28)
        # Branch order preserved: 1x1 first, pool-proj last.
        assert len(inceptions[0].branches) == 4

    def test_double_roundtrip_stable(self):
        text1 = network_to_prototxt(agenet().network)
        text2 = network_to_prototxt(network_from_prototxt(text1))
        assert text1 == text2

    def test_emit_requires_built_network(self):
        from repro.nn.zoo.smallnet import smallnet_network

        with pytest.raises(PrototxtError):
            network_to_prototxt(smallnet_network())


class TestGroupedConvolution:
    def test_group_shapes_and_params(self):
        layer = ConvLayer("c", 8, kernel=3, pad=1, groups=2)
        layer.build((4, 6, 6), SeededRng(0, "g"))
        assert layer.out_shape == (8, 6, 6)
        # Each filter only sees C/groups input channels.
        assert layer.params["weight"].shape == (8, 2, 3, 3)

    def test_group_forward_matches_manual_split(self):
        layer = ConvLayer("c", 4, kernel=1, groups=2)
        layer.build((4, 3, 3), SeededRng(1, "g"))
        x = SeededRng(2, "x").normal_array((4, 3, 3))
        out = layer.forward(x)
        weight, bias = layer.params["weight"], layer.params["bias"]
        for f in range(4):
            group = f // 2
            x_slice = x[group * 2 : (group + 1) * 2]
            expected = (weight[f][:, 0, 0][:, None, None] * x_slice).sum(axis=0) + bias[f]
            assert np.allclose(out[f], expected, atol=1e-5)

    def test_groups_halve_flops(self):
        plain = ConvLayer("a", 8, kernel=3, pad=1, groups=1)
        grouped = ConvLayer("b", 8, kernel=3, pad=1, groups=2)
        plain.build((4, 6, 6), SeededRng(3, "g"))
        grouped.build((4, 6, 6), SeededRng(3, "g"))
        assert grouped.count_flops() == plain.count_flops() / 2

    def test_invalid_groups_rejected(self):
        with pytest.raises(LayerShapeError):
            ConvLayer("c", 8, kernel=3, groups=3)  # 3 does not divide 8
        layer = ConvLayer("c", 8, kernel=3, groups=2)
        with pytest.raises(LayerShapeError):
            layer.build((3, 6, 6), SeededRng(0, "g"))  # 2 does not divide 3


class TestAlexNet:
    @pytest.fixture(scope="class")
    def model(self):
        return alexnet()

    def test_canonical_shapes(self, model):
        from repro.nn.cost import spine_costs

        by_name = {p.name: p for p in spine_costs(model.network)}
        assert by_name["conv1"].output_shape == (96, 55, 55)
        assert by_name["pool1"].output_shape == (96, 27, 27)
        assert by_name["conv2"].output_shape == (256, 27, 27)
        assert by_name["pool5"].output_shape == (256, 6, 6)

    def test_233mb_model(self, model):
        # bvlc_alexnet.caffemodel is ~233 MB (61M params).
        assert model.network.param_count == pytest.approx(61e6, rel=0.01)
        assert 230 < model.size_mib < 235

    def test_flops(self, model):
        assert total_flops(model.network) == pytest.approx(1.45e9, rel=0.1)

    def test_forward_distribution(self, model):
        x = SeededRng(4, "a").uniform_array((3, 227, 227), 0, 255)
        probs = model.inference(x)
        assert probs.shape == (1000,)
        assert probs.sum() == pytest.approx(1.0, rel=1e-4)

    def test_grouped_conv_split_inference_consistent(self, model):
        x = SeededRng(5, "a").uniform_array((3, 227, 227), 0, 255)
        point = model.network.point_by_label("2nd_conv")  # the grouped conv
        halves = model.network.split(point.index)
        assert np.allclose(halves.forward(x), model.inference(x), atol=1e-4)
