"""End-to-end session tests across all Fig. 6 modes (smallnet-scale)."""

import pytest

from repro.eval.scenarios import Testbed, build_paper_model, paper_input_for


MODEL = "smallnet"


class TestModes:
    def test_client_only(self):
        result = Testbed().run_client_only(MODEL)
        assert result.mode == "client"
        assert result.correct
        assert result.phases.client_exec > 0
        assert result.phases.server_exec == 0
        assert result.total_seconds == pytest.approx(result.phases.total(), rel=1e-6)

    def test_server_only(self):
        result = Testbed().run_server_only(MODEL)
        assert result.mode == "server"
        assert result.correct
        assert result.phases.server_exec > 0
        assert result.phases.client_exec == 0

    def test_server_faster_than_client(self):
        client = Testbed().run_client_only(MODEL)
        server = Testbed().run_server_only(MODEL)
        assert server.total_seconds < client.total_seconds

    def test_offload_after_ack(self):
        result = Testbed().run_offload(MODEL, wait_for_ack=True)
        assert result.mode == "offload-after-ack"
        assert result.correct
        assert result.delivery_bytes == 0
        assert result.phases.server_exec > 0
        assert result.snapshot_bytes > 0
        assert result.delta_bytes > 0

    def test_offload_before_ack_ships_model(self):
        # A slow link so the background upload barely progresses before the
        # click: the model must ride along with the snapshot.
        result = Testbed(bandwidth_bps=1e6).run_offload(MODEL, wait_for_ack=False)
        assert result.mode == "offload-before-ack"
        assert result.correct
        model = build_paper_model(MODEL)
        assert result.delivery_bytes > 0.5 * model.total_bytes

    def test_before_ack_slower_than_after(self):
        before = Testbed().run_offload(MODEL, wait_for_ack=False)
        after = Testbed().run_offload(MODEL, wait_for_ack=True)
        assert after.total_seconds < before.total_seconds

    def test_partial_inference(self):
        result = Testbed().run_offload_partial(MODEL, "1st_pool")
        assert result.mode == "offload-partial"
        assert result.correct
        assert result.partition_label == "1st_pool"
        assert result.phases.client_exec > 0  # front ran on the client
        assert result.phases.server_exec > 0  # rear ran on the server

    def test_partial_inference_feature_smaller_than_full_input(self):
        partial = Testbed().run_offload_partial(MODEL, "1st_pool")
        full = Testbed().run_offload(MODEL, wait_for_ack=True)
        assert partial.snapshot_feature_bytes < full.snapshot_feature_bytes

    def test_phase_breakdown_sums_to_total(self):
        result = Testbed().run_offload(MODEL, wait_for_ack=True)
        assert result.phases.total() == pytest.approx(result.total_seconds, rel=1e-6)
        assert result.phases.other >= 0

    def test_migration_time_excludes_dnn_exec(self):
        result = Testbed().run_offload(MODEL, wait_for_ack=True)
        assert result.migration_seconds == pytest.approx(
            result.total_seconds - result.phases.server_exec, rel=1e-6
        )

    def test_deterministic_repetition(self):
        a = Testbed().run_offload(MODEL, wait_for_ack=True)
        b = Testbed().run_offload(MODEL, wait_for_ack=True)
        assert a.total_seconds == pytest.approx(b.total_seconds, rel=1e-9)
        assert a.result_label == b.result_label


class TestBandwidthEffects:
    def test_slower_link_slower_offload(self):
        slow = Testbed(bandwidth_bps=2e6).run_offload(MODEL, wait_for_ack=True)
        fast = Testbed(bandwidth_bps=100e6).run_offload(MODEL, wait_for_ack=True)
        assert fast.total_seconds < slow.total_seconds

    def test_bandwidth_does_not_change_result(self):
        slow = Testbed(bandwidth_bps=2e6).run_offload(MODEL, wait_for_ack=True)
        fast = Testbed(bandwidth_bps=100e6).run_offload(MODEL, wait_for_ack=True)
        assert slow.result_label == fast.result_label


class TestInputs:
    def test_paper_input_cached_and_shaped(self):
        image = paper_input_for(MODEL)
        assert image.shape == build_paper_model(MODEL).network.input_shape
        assert paper_input_for(MODEL) is image

    def test_all_modes_agree_on_label(self):
        labels = {
            Testbed().run_client_only(MODEL).result_label,
            Testbed().run_server_only(MODEL).result_label,
            Testbed().run_offload(MODEL, wait_for_ack=True).result_label,
            Testbed().run_offload(MODEL, wait_for_ack=False).result_label,
            Testbed().run_offload_partial(MODEL, "1st_pool").result_label,
        }
        assert len(labels) == 1
