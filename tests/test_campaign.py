"""Tests for the all-artifacts campaign driver."""

import pytest

from repro.eval.campaign import run_campaign, write_report


@pytest.fixture(scope="module")
def quick_result():
    return run_campaign(quick=True, include_ablations=False)


class TestCampaign:
    def test_quick_campaign_claims_hold(self, quick_result):
        assert quick_result.all_claims_hold, quick_result.violations

    def test_report_contains_every_artifact(self, quick_result):
        report = quick_result.report_markdown
        for heading in ("Fig. 1", "Fig. 6", "Fig. 7", "Fig. 8", "Table 1"):
            assert heading in report

    def test_report_has_verification_section(self, quick_result):
        assert "Shape-claim verification" in quick_result.report_markdown
        assert "PASS" in quick_result.report_markdown

    def test_quick_mode_restricts_models(self, quick_result):
        assert "Models: agenet." in quick_result.report_markdown
        assert "gendernet" not in quick_result.report_markdown

    def test_write_report(self, tmp_path, quick_result):
        path = write_report(str(tmp_path / "r.md"), quick_result)
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == quick_result.report_markdown

    def test_wall_time_recorded(self, quick_result):
        assert quick_result.wall_seconds > 0

    def test_cli_campaign_quick(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "cli.md")
        assert main(["campaign", "--quick", "--out", out]) == 0
        assert "report written" in capsys.readouterr().out
