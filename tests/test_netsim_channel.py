"""Unit tests for bidirectional channels, endpoints and topology."""

import pytest

from repro.netsim import Channel, NetemProfile, ReceiveTimeout, Topology
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def chan(sim):
    return Channel(sim, "client", "server", NetemProfile(bandwidth_bps=8e6, latency_s=0.0))


class TestChannel:
    def test_send_and_recv(self, sim, chan):
        client, server = chan.ends()
        received = []

        def server_proc():
            message = yield server.recv()
            received.append((sim.now, message.kind, message.payload))

        sim.spawn(server_proc())
        client.send("HELLO", payload=b"x" * 999_744)  # 1 MB incl. frame
        sim.run()
        assert received == [(1.0, "HELLO", b"x" * 999_744)]

    def test_recv_before_send_blocks(self, sim, chan):
        client, server = chan.ends()
        log = []

        def server_proc():
            message = yield server.recv()
            log.append(sim.now)
            assert message.kind == "LATE"

        sim.spawn(server_proc())
        sim.schedule(5.0, lambda: client.send("LATE", size_bytes=0))
        sim.run()
        assert log == [5.0]

    def test_messages_buffered_until_recv(self, sim, chan):
        client, server = chan.ends()
        client.send("A", size_bytes=1000)
        client.send("B", size_bytes=1000)
        sim.run()
        assert server.pending == 2
        assert server.try_recv().kind == "A"
        assert server.try_recv().kind == "B"
        assert server.try_recv() is None

    def test_recv_kind_buffers_other_kinds(self, sim, chan):
        client, server = chan.ends()
        got = []

        def server_proc():
            ack = yield server.recv_kind("ACK")
            got.append(ack.kind)

        sim.spawn(server_proc())
        client.send("DATA", size_bytes=1000)
        client.send("ACK", size_bytes=0)
        sim.run()
        assert got == ["ACK"]
        assert server.try_recv().kind == "DATA"

    def test_recv_kind_finds_buffered_message(self, sim, chan):
        client, server = chan.ends()
        client.send("DATA", size_bytes=1000)
        client.send("ACK", size_bytes=0)
        sim.run()
        got = []

        def server_proc():
            ack = yield server.recv_kind("ACK")
            got.append(ack.kind)

        sim.spawn(server_proc())
        sim.run()
        assert got == ["ACK"]

    def test_recv_timeout_fails(self, sim, chan):
        _, server = chan.ends()
        caught = []

        def server_proc():
            try:
                yield server.recv(timeout=2.0)
            except ReceiveTimeout:
                caught.append(sim.now)

        sim.spawn(server_proc())
        sim.run()
        assert caught == [2.0]

    def test_recv_timeout_does_not_fire_after_delivery(self, sim, chan):
        client, server = chan.ends()
        results = []

        def server_proc():
            message = yield server.recv(timeout=10.0)
            results.append(message.kind)

        sim.spawn(server_proc())
        client.send("FAST", size_bytes=0)
        sim.run()
        assert results == ["FAST"]

    def test_push_handler_mode(self, sim, chan):
        client, server = chan.ends()
        seen = []
        server.set_handler(lambda message: seen.append(message.kind))
        client.send("X", size_bytes=0)
        client.send("Y", size_bytes=0)
        sim.run()
        assert seen == ["X", "Y"]

    def test_push_handler_drains_backlog(self, sim, chan):
        client, server = chan.ends()
        client.send("X", size_bytes=0)
        sim.run()
        seen = []
        server.set_handler(lambda message: seen.append(message.kind))
        assert seen == ["X"]

    def test_bidirectional_traffic(self, sim, chan):
        client, server = chan.ends()
        log = []

        def server_proc():
            message = yield server.recv()
            server.send("PONG", size_bytes=message.size_bytes)

        def client_proc():
            client.send("PING", size_bytes=1_000_000)
            message = yield client.recv()
            log.append((sim.now, message.kind))

        sim.spawn(server_proc())
        sim.spawn(client_proc())
        sim.run()
        assert log == [(2.0, "PONG")]

    def test_send_delivery_event_times(self, sim, chan):
        client, _ = chan.ends()
        event = client.send("DATA", size_bytes=2_000_000)
        sim.run()
        assert event.ok
        assert event.value.delivered_at == pytest.approx(2.0)

    def test_channel_down_fails_send(self, sim, chan):
        client, _ = chan.ends()
        chan.go_down()
        event = client.send("DATA", size_bytes=100)
        sim.run()
        assert event.ok is False


class TestTopology:
    def test_attach_and_profile(self, sim):
        topo = Topology(sim)
        topo.add_edge_host("edge-1", NetemProfile(bandwidth_bps=30e6))
        client_end, edge_end = topo.attach("edge-1")
        assert topo.attached_to == "edge-1"
        assert topo.current_profile().bandwidth_bps == 30e6
        assert client_end.peer is edge_end

    def test_attach_unknown_edge_raises(self, sim):
        topo = Topology(sim)
        with pytest.raises(KeyError):
            topo.attach("nowhere")

    def test_duplicate_edge_rejected(self, sim):
        topo = Topology(sim)
        topo.add_edge_host("edge-1")
        with pytest.raises(ValueError):
            topo.add_edge_host("edge-1")

    def test_handover_tears_down_old_channel(self, sim):
        topo = Topology(sim)
        topo.add_edge_host("edge-1")
        topo.add_edge_host("edge-2")
        old_client_end, _ = topo.attach("edge-1")
        old_channel = topo.channel
        topo.handover("edge-2")
        assert topo.attached_to == "edge-2"
        assert not old_channel.link_ab.up
        event = old_client_end.send("STALE", size_bytes=10)
        sim.run()
        assert event.ok is False

    def test_handover_to_current_edge_rejected(self, sim):
        topo = Topology(sim)
        topo.add_edge_host("edge-1")
        topo.attach("edge-1")
        with pytest.raises(ValueError):
            topo.handover("edge-1")

    def test_detach(self, sim):
        topo = Topology(sim)
        topo.add_edge_host("edge-1")
        topo.attach("edge-1")
        topo.detach()
        assert topo.attached_to is None
        with pytest.raises(RuntimeError):
            topo.current_profile()

    def test_set_profile_reshapes_live_channel(self, sim):
        topo = Topology(sim)
        topo.add_edge_host("edge-1", NetemProfile(bandwidth_bps=30e6))
        topo.attach("edge-1")
        topo.set_profile("edge-1", NetemProfile(bandwidth_bps=10e6))
        assert topo.channel.link_ab.profile.bandwidth_bps == 10e6

    def test_handover_log_records_times(self, sim):
        topo = Topology(sim)
        topo.add_edge_host("edge-1")
        topo.add_edge_host("edge-2")
        topo.attach("edge-1")
        sim.schedule(4.0, lambda: topo.handover("edge-2"))
        sim.run()
        assert topo.handover_log == [(0.0, "edge-1"), (4.0, "edge-2")]
