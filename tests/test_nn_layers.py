"""Unit tests for individual layer semantics."""

import numpy as np
import pytest

from repro.nn.layers import (
    ConvLayer,
    DropoutLayer,
    FCLayer,
    InceptionModule,
    InputLayer,
    LRNLayer,
    PoolLayer,
    ReLULayer,
    SoftmaxLayer,
)
from repro.nn.layers.base import LayerShapeError
from repro.nn.tensor import conv_output_hw, pool_output_hw
from repro.sim import SeededRng


RNG = SeededRng(0, "layer-tests")


def build(layer, shape):
    layer.build(shape, RNG.child(layer.name))
    return layer


class TestShapes:
    def test_conv_floor_formula(self):
        assert conv_output_hw(224, 224, kernel=7, stride=2, pad=3) == (112, 112)
        assert conv_output_hw(227, 227, kernel=7, stride=4, pad=0) == (56, 56)

    def test_pool_ceil_formula(self):
        # Caffe ceil mode: (112 - 3) / 2 -> ceil(54.5) + 1 = 56
        assert pool_output_hw(112, 112, kernel=3, stride=2) == (56, 56)
        assert pool_output_hw(56, 56, kernel=3, stride=2) == (28, 28)
        assert pool_output_hw(14, 14, kernel=3, stride=2) == (7, 7)

    def test_pool_pad_clamp(self):
        # Padded pooling must not create a window starting outside the image.
        out_h, out_w = pool_output_hw(28, 28, kernel=3, stride=1, pad=1)
        assert (out_h, out_w) == (28, 28)

    def test_conv_too_large_kernel_rejected(self):
        with pytest.raises(ValueError):
            conv_output_hw(4, 4, kernel=7, stride=1, pad=0)


class TestInputLayer:
    def test_identity_forward(self):
        layer = build(InputLayer((3, 4, 4)), (3, 4, 4))
        x = np.ones((3, 4, 4), dtype=np.float32)
        assert np.array_equal(layer.forward(x), x)

    def test_shape_mismatch_rejected(self):
        layer = InputLayer((3, 4, 4))
        with pytest.raises(LayerShapeError):
            layer.build((3, 5, 5), RNG)

    def test_bad_declared_shape_rejected(self):
        with pytest.raises(LayerShapeError):
            InputLayer((3, 0, 4))


class TestConvLayer:
    def test_output_shape_and_params(self):
        layer = build(ConvLayer("c", 8, kernel=3, pad=1), (3, 10, 10))
        assert layer.out_shape == (8, 10, 10)
        assert layer.params["weight"].shape == (8, 3, 3, 3)
        assert layer.param_count == 8 * 3 * 3 * 3 + 8

    def test_matches_naive_convolution(self):
        layer = build(ConvLayer("c", 2, kernel=3, stride=2, pad=1), (2, 7, 7))
        x = SeededRng(1, "x").normal_array((2, 7, 7))
        out = layer.forward(x)
        weight, bias = layer.params["weight"], layer.params["bias"]
        padded = np.pad(x, ((0, 0), (1, 1), (1, 1)))
        for f in range(2):
            for i in range(out.shape[1]):
                for j in range(out.shape[2]):
                    patch = padded[:, i * 2 : i * 2 + 3, j * 2 : j * 2 + 3]
                    expected = (patch * weight[f]).sum() + bias[f]
                    assert out[f, i, j] == pytest.approx(expected, rel=1e-4)

    def test_flops_formula(self):
        layer = build(ConvLayer("c", 4, kernel=3), (2, 6, 6))
        # out 4x4x4; 2 * F*C*k*k per output element
        assert layer.count_flops() == 2 * 4 * 2 * 9 * 16

    def test_bias_applied(self):
        layer = build(ConvLayer("c", 1, kernel=1), (1, 2, 2))
        layer.params["weight"][:] = 0.0
        layer.params["bias"][:] = 3.0
        out = layer.forward(np.ones((1, 2, 2), dtype=np.float32))
        assert np.allclose(out, 3.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(LayerShapeError):
            ConvLayer("c", 0, kernel=3)
        with pytest.raises(LayerShapeError):
            ConvLayer("c", 1, kernel=3, stride=0)

    def test_wrong_input_shape_rejected(self):
        layer = build(ConvLayer("c", 2, kernel=3), (3, 8, 8))
        with pytest.raises(LayerShapeError):
            layer.forward(np.zeros((3, 9, 9), dtype=np.float32))


class TestPoolLayer:
    def test_max_pooling_values(self):
        layer = build(PoolLayer("p", kernel=2, stride=2), (1, 4, 4))
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = layer.forward(x)
        assert out.shape == (1, 2, 2)
        assert out.tolist() == [[[5.0, 7.0], [13.0, 15.0]]]

    def test_avg_pooling_values(self):
        layer = build(PoolLayer("p", kernel=2, stride=2, mode="avg"), (1, 4, 4))
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = layer.forward(x)
        assert out.tolist() == [[[2.5, 4.5], [10.5, 12.5]]]

    def test_ceil_mode_partial_window(self):
        layer = build(PoolLayer("p", kernel=3, stride=2), (1, 6, 6))
        x = np.arange(36, dtype=np.float32).reshape(1, 6, 6)
        out = layer.forward(x)
        # ceil((6-3)/2)+1 = 3 outputs; the last window is clipped at the edge
        assert out.shape == (1, 3, 3)
        assert out[0, 2, 2] == 35.0

    def test_padded_max_pool_ignores_padding(self):
        layer = build(PoolLayer("p", kernel=3, stride=1, pad=1), (1, 3, 3))
        x = -np.ones((1, 3, 3), dtype=np.float32)
        out = layer.forward(x)
        # All-negative input: padding zeros must not win the max.
        assert out.max() == pytest.approx(-1.0)

    def test_output_never_larger_than_input(self):
        layer = build(PoolLayer("p", kernel=3, stride=2), (8, 28, 28))
        assert layer.output_elements < 8 * 28 * 28

    def test_bad_mode_rejected(self):
        with pytest.raises(LayerShapeError):
            PoolLayer("p", kernel=2, stride=2, mode="median")


class TestFCLayer:
    def test_flattens_input(self):
        layer = build(FCLayer("fc", 5), (2, 3, 3))
        assert layer.in_features == 18
        out = layer.forward(np.ones((2, 3, 3), dtype=np.float32))
        assert out.shape == (5,)

    def test_matches_matmul(self):
        layer = build(FCLayer("fc", 3), (4,))
        x = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        expected = layer.params["weight"] @ x + layer.params["bias"]
        assert np.allclose(layer.forward(x), expected)

    def test_flops(self):
        layer = build(FCLayer("fc", 10), (20,))
        assert layer.count_flops() == 2 * 20 * 10

    def test_zero_features_rejected(self):
        with pytest.raises(LayerShapeError):
            FCLayer("fc", 0)


class TestActivations:
    def test_relu(self):
        layer = build(ReLULayer("r"), (1, 2, 2))
        x = np.array([[[-1.0, 2.0], [0.0, -3.0]]], dtype=np.float32)
        assert layer.forward(x).tolist() == [[[0.0, 2.0], [0.0, 0.0]]]

    def test_dropout_is_identity_at_inference(self):
        layer = build(DropoutLayer("d", rate=0.5), (3,))
        x = np.array([1.0, -2.0, 3.0], dtype=np.float32)
        assert np.array_equal(layer.forward(x), x)

    def test_dropout_rate_validated(self):
        with pytest.raises(LayerShapeError):
            DropoutLayer("d", rate=1.0)

    def test_softmax_sums_to_one(self):
        layer = build(SoftmaxLayer("s"), (10,))
        out = layer.forward(SeededRng(2, "s").normal_array((10,), 5.0))
        assert out.sum() == pytest.approx(1.0, rel=1e-5)
        assert (out >= 0).all()

    def test_softmax_numerically_stable(self):
        layer = build(SoftmaxLayer("s"), (3,))
        out = layer.forward(np.array([1000.0, 1000.0, 1000.0], dtype=np.float32))
        assert np.allclose(out, [1 / 3] * 3, atol=1e-5)


class TestLRN:
    def test_matches_naive_formula(self):
        layer = build(LRNLayer("n", local_size=3, alpha=2.0, beta=0.5, k=1.0), (4, 2, 2))
        x = SeededRng(3, "lrn").normal_array((4, 2, 2))
        out = layer.forward(x)
        for c in range(4):
            lo, hi = max(0, c - 1), min(4, c + 2)
            window = (x[lo:hi] ** 2).sum(axis=0)
            expected = x[c] / (1.0 + (2.0 / 3) * window) ** 0.5
            assert np.allclose(out[c], expected, atol=1e-5)

    def test_even_local_size_rejected(self):
        with pytest.raises(LayerShapeError):
            LRNLayer("n", local_size=4)

    def test_preserves_shape(self):
        layer = build(LRNLayer("n"), (8, 5, 5))
        assert layer.out_shape == (8, 5, 5)


class TestInceptionModule:
    def _module(self):
        return InceptionModule(
            "inc",
            branches=[
                [ConvLayer("a_1x1", 4, kernel=1), ReLULayer("a_relu")],
                [ConvLayer("b_3x3", 6, kernel=3, pad=1), ReLULayer("b_relu")],
                [PoolLayer("c_pool", kernel=3, stride=1, pad=1)],
            ],
        )

    def test_channel_concat(self):
        module = self._module()
        module.build((3, 8, 8), RNG.child("inc"))
        assert module.out_shape == (4 + 6 + 3, 8, 8)
        x = SeededRng(4, "inc").normal_array((3, 8, 8))
        out = module.forward(x)
        assert out.shape == (13, 8, 8)
        # The pool branch output must appear verbatim in the concat tail.
        pool_out = module.branches[2][0].forward(x)
        assert np.allclose(out[10:], pool_out)

    def test_mismatched_spatial_dims_rejected(self):
        module = InceptionModule(
            "bad",
            branches=[
                [ConvLayer("a", 2, kernel=1)],
                [ConvLayer("b", 2, kernel=3)],  # shrinks without padding
            ],
        )
        with pytest.raises(LayerShapeError):
            module.build((3, 8, 8), RNG)

    def test_param_count_sums_branches(self):
        module = self._module()
        module.build((3, 8, 8), RNG.child("inc2"))
        expected = sum(layer.param_count for layer in module.inner_layers())
        assert module.param_count == expected
        assert module.param_count > 0

    def test_empty_branches_rejected(self):
        with pytest.raises(LayerShapeError):
            InceptionModule("bad", branches=[])

    def test_flops_include_concat_copy(self):
        module = self._module()
        module.build((3, 8, 8), RNG.child("inc3"))
        inner = sum(layer.count_flops() for layer in module.inner_layers())
        assert module.count_flops() == inner + 13 * 8 * 8
