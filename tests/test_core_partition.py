"""Tests for the partition-point optimizer (paper §III.B.2)."""

import pytest

from repro.core.partition import PartitionOptimizer, predictions_by_label
from repro.devices import edge_server_x86, odroid_xu4_client
from repro.devices.predictor import fit_predictor_for
from repro.netsim import NetemProfile
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet


@pytest.fixture(scope="module")
def network():
    return smallnet().network


@pytest.fixture(scope="module")
def optimizer(network):
    costs = network_costs(network)
    client_profile = odroid_xu4_client()
    server_profile = edge_server_x86()
    return PartitionOptimizer(
        fit_predictor_for(client_profile, costs, noise=0.0),
        fit_predictor_for(server_profile, costs, noise=0.0),
        client_profile,
        server_profile,
    )


@pytest.fixture
def link():
    return NetemProfile.wifi_30mbps()


class TestEstimates:
    def test_estimate_components_positive(self, network, optimizer, link):
        point = network.point_by_label("1st_pool")
        estimate = optimizer.estimate(network, point, link)
        assert estimate.client_seconds > 0
        assert estimate.server_seconds > 0
        assert estimate.transfer_seconds > 0
        assert estimate.total_seconds == pytest.approx(
            estimate.client_seconds
            + estimate.server_seconds
            + estimate.transfer_seconds
            + estimate.overhead_seconds
        )

    def test_deeper_split_shifts_work_to_client(self, network, optimizer, link):
        early = optimizer.estimate(network, network.point_by_label("input"), link)
        late = optimizer.estimate(network, network.point_by_label("2nd_pool"), link)
        assert late.client_seconds > early.client_seconds
        assert late.server_seconds < early.server_seconds

    def test_feature_bytes_match_layer_output(self, network, optimizer, link):
        from repro.nn.tensor import text_serialized_bytes

        point = network.point_by_label("1st_conv")
        estimate = optimizer.estimate(network, point, link)
        expected = text_serialized_bytes(network.layers[point.index].out_shape)
        assert estimate.feature_bytes == expected

    def test_sweep_covers_all_points(self, network, optimizer, link):
        estimates = optimizer.sweep(network, link)
        assert len(estimates) == len(network.offload_points())

    def test_predictions_by_label(self, network, optimizer, link):
        table = predictions_by_label(optimizer.sweep(network, link))
        assert "1st_pool" in table
        assert all(value > 0 for value in table.values())


class TestChoice:
    def test_choice_is_minimum_of_sweep(self, network, optimizer, link):
        choice = optimizer.choose(network, link, denature=False)
        best_total = min(e.total_seconds for e in choice.estimates)
        assert choice.best.total_seconds == best_total

    def test_denature_excludes_pre_conv_points(self, network, optimizer, link):
        choice = optimizer.choose(network, link, denature=True)
        first_conv = next(
            i for i, layer in enumerate(network.layers) if layer.kind == "conv"
        )
        assert all(e.point.index >= first_conv for e in choice.estimates)

    def test_without_denature_input_point_allowed(self, network, optimizer, link):
        choice = optimizer.choose(network, link, denature=False)
        labels = {e.point.label for e in choice.estimates}
        assert "input" in labels

    def test_fast_network_prefers_early_offload(self, network, optimizer):
        fast = NetemProfile(bandwidth_bps=1e9, latency_s=0.0001)
        choice = optimizer.choose(network, fast, denature=False)
        # With a gigabit link the client should do as little as possible.
        assert choice.point.label == "input"

    def test_slow_network_moves_split_deeper(self, network, optimizer):
        slow = NetemProfile(bandwidth_bps=2e5)  # 200 kbps
        fast = NetemProfile(bandwidth_bps=1e9)
        slow_choice = optimizer.choose(network, slow, denature=False)
        fast_choice = optimizer.choose(network, fast, denature=False)
        assert slow_choice.point.index >= fast_choice.point.index

    def test_estimate_for_label_lookup(self, network, optimizer, link):
        choice = optimizer.choose(network, link, denature=True)
        estimate = choice.estimate_for("1st_pool")
        assert estimate.point.label == "1st_pool"
        with pytest.raises(KeyError):
            choice.estimate_for("not-a-point")

    def test_optimizer_never_worse_than_any_candidate(self, network, optimizer, link):
        """The optimizer's choice is optimal among swept candidates."""
        choice = optimizer.choose(network, link, denature=True)
        for estimate in choice.estimates:
            assert choice.best.total_seconds <= estimate.total_seconds + 1e-9
