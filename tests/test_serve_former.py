"""Unit and property tests for the batch formers and the serving loop.

The Hypothesis suite drives a bare :class:`~repro.serve.ServingLoop`
(``compute=None`` — virtual time only) with generated arrival schedules and
checks the three forming invariants the design guarantees:

* **timeout bound** — no item sits in the forming queue longer than the
  former's timeout (the dispatcher never blocks on execution, so the bound
  is exact, not amortized);
* **size cap** — no batch ever exceeds ``max_batch``;
* **FIFO per queue** — batches are FIFO prefixes, so items sharing a batch
  key are formed in arrival order (which preserves per-client order).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.device import Device
from repro.devices.profiles import edge_server_x86
from repro.serve import (
    FORMER_NAMES,
    BatchQueue,
    FormerError,
    ImmediateFormer,
    ServingConfig,
    ServingDropped,
    ServingLoop,
    SizeTimeoutFormer,
    WorkItem,
    make_former,
)
from repro.sim import Simulator

_EPS = 1e-6


def _item(enqueued_at, exec_seconds=0.01, model_id="m", deadline_at=None,
          sender="user", request_id=1):
    sim = Simulator()
    return WorkItem(
        sender=sender,
        request_id=request_id,
        browser=None,
        event=None,
        exec_seconds=exec_seconds,
        model_id=model_id,
        feature=object() if model_id else None,
        enqueued_at=enqueued_at,
        deadline_at=deadline_at,
        done=sim.event(),
    )


class TestFormerRegistry:
    def test_names_and_factories_agree(self):
        for name in FORMER_NAMES:
            assert make_former(name, 4, 0.01).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(FormerError):
            make_former("nope", 4, 0.01)

    def test_invalid_knobs_raise(self):
        with pytest.raises(FormerError):
            SizeTimeoutFormer(0, 0.01)
        with pytest.raises(FormerError):
            SizeTimeoutFormer(4, -1.0)
        with pytest.raises(FormerError):
            ImmediateFormer(0)
        with pytest.raises(FormerError):
            ServingConfig(max_batch=0)
        with pytest.raises(FormerError):
            ServingConfig(deadline_s=0.0)


class TestSizeTimeoutFormer:
    def test_full_batch_dispatches_now(self):
        former = SizeTimeoutFormer(2, 10.0)
        items = [_item(0.0), _item(0.0)]
        assert former.wait_seconds(items, 0.0) == 0.0

    def test_partial_batch_waits_out_the_timeout(self):
        former = SizeTimeoutFormer(4, 0.5)
        items = [_item(1.0)]
        assert former.wait_seconds(items, 1.0) == pytest.approx(0.5)
        assert former.wait_seconds(items, 1.4) == pytest.approx(0.1)
        assert former.wait_seconds(items, 1.5) == 0.0
        assert former.wait_seconds(items, 2.0) == 0.0

    def test_take_pops_fifo_prefix(self):
        former = SizeTimeoutFormer(2, 0.5)
        queue = BatchQueue(key="m")
        items = [_item(0.0, request_id=i) for i in range(3)]
        for item in items:
            queue.push(item)
        batch = former.take(queue, 1.0)
        assert [i.request_id for i in batch] == [0, 1]
        assert len(queue) == 1

    def test_deadline_former_preempts_on_slack(self):
        former = make_former("deadline", 8, 10.0)
        # 0.2s of work due at t=1.0: slack runs out at t=0.8.
        items = [_item(0.0, exec_seconds=0.2, deadline_at=1.0)]
        assert former.wait_seconds(items, 0.0) == pytest.approx(0.8)
        assert former.wait_seconds(items, 0.85) == 0.0

    def test_immediate_former_never_waits(self):
        former = ImmediateFormer(3)
        assert former.wait_seconds([_item(0.0)], 99.0) == 0.0


def _drive(arrivals, *, max_batch, timeout_s, former="size-timeout",
           exec_seconds=0.01, deadline_s=None):
    """Run a bare loop over a generated arrival schedule.

    ``arrivals`` is a list of (delay_seconds, model_key) tuples; items are
    submitted sequentially with the given inter-arrival gaps.  Returns the
    completed items in completion order.
    """
    sim = Simulator()
    device = Device(sim, edge_server_x86())
    loop = ServingLoop(
        sim,
        device,
        "edge-test",
        ServingConfig(
            max_batch=max_batch,
            batch_timeout_s=timeout_s,
            former=former,
            deadline_s=deadline_s,
        ),
    )
    completed = []

    def submitter():
        for index, (delay, key) in enumerate(arrivals):
            if delay > 0:
                yield sim.timeout(delay)
            item = loop.submit(
                sender=f"user-{index % 3}",
                request_id=index,
                browser=None,
                event=None,
                exec_seconds=exec_seconds,
                model_id=key,
                feature=object() if key else None,
            )
            item.done.add_callback(
                lambda event: completed.append(event.value)
            )

    sim.spawn(submitter())
    sim.run(until=3600.0)
    return completed


arrival_schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
        st.sampled_from(["m1", "m2", None]),
    ),
    min_size=1,
    max_size=40,
)


class TestServingLoopProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        arrivals=arrival_schedules,
        max_batch=st.integers(min_value=1, max_value=6),
        timeout_s=st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    )
    def test_forming_invariants(self, arrivals, max_batch, timeout_s):
        completed = _drive(
            arrivals, max_batch=max_batch, timeout_s=timeout_s
        )
        assert len(completed) == len(arrivals)
        for item in completed:
            # Size cap: no batch ever exceeds max_batch (solo queue is 1).
            cap = max_batch if item.batchable else 1
            assert 1 <= item.batch_size <= cap
            # Timeout bound: forming wait never exceeds the former's
            # timeout (solo items never wait at all).
            forming_wait = item.formed_at - item.enqueued_at
            bound = timeout_s if item.batchable else 0.0
            assert forming_wait <= bound + _EPS
            # Accounting sanity.
            assert item.queue_seconds >= -_EPS
            assert item.exec_share_seconds >= 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        arrivals=arrival_schedules,
        max_batch=st.integers(min_value=1, max_value=6),
        timeout_s=st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    )
    def test_fifo_preserved_per_queue(self, arrivals, max_batch, timeout_s):
        completed = _drive(
            arrivals, max_batch=max_batch, timeout_s=timeout_s
        )
        # Items sharing a batch key are formed in arrival order: batches
        # are FIFO prefixes, so request ids (the submission order) must be
        # monotonically increasing along each key's formed_at order.
        by_key = {}
        for item in completed:
            by_key.setdefault(item.batch_key, []).append(item)
        for items in by_key.values():
            formed_order = sorted(
                items, key=lambda i: (i.formed_at, i.request_id)
            )
            ids = [i.request_id for i in formed_order]
            assert ids == sorted(ids)

    @settings(max_examples=40, deadline=None)
    @given(arrivals=arrival_schedules)
    def test_deadline_former_meets_generous_deadlines(self, arrivals):
        completed = _drive(
            arrivals,
            max_batch=4,
            timeout_s=0.02,
            former="deadline",
            deadline_s=120.0,
        )
        assert len(completed) == len(arrivals)
        for item in completed:
            assert item.deadline_at is not None


class TestServingLoopMechanics:
    def test_conservation_and_stats(self):
        completed = _drive(
            [(0.0, "m")] * 7, max_batch=4, timeout_s=0.01
        )
        assert sorted(i.request_id for i in completed) == list(range(7))

    def test_batch_cost_is_amortized(self):
        sim = Simulator()
        device = Device(sim, edge_server_x86())
        solo = device.batch_forward_seconds([0.01])
        assert solo == pytest.approx(0.01)
        four = device.batch_forward_seconds([0.01] * 4)
        assert four < 4 * 0.01
        marginal = device.profile.batch_marginal_fraction
        assert four == pytest.approx(0.01 + marginal * 0.03)
        assert device.batch_forward_seconds([]) == 0.0

    def test_drain_fails_queued_items(self):
        sim = Simulator()
        device = Device(sim, edge_server_x86())
        loop = ServingLoop(
            sim, device, "edge-test",
            ServingConfig(max_batch=8, batch_timeout_s=10.0),
        )
        failures = []

        def proc():
            item = loop.submit(
                sender="u", request_id=1, browser=None, event=None,
                exec_seconds=0.01, model_id="m", feature=object(),
            )
            try:
                yield item.done
            except ServingDropped as exc:
                failures.append(exc)

        sim.spawn(proc())
        sim.run(until=0.5)  # long before the 10s forming timeout
        assert loop.depth() == 1
        dropped = loop.drain(ServingDropped("restart"))
        sim.run(until=1.0)
        assert dropped == 1
        assert len(failures) == 1
        assert loop.depth() == 0

    def test_depth_gauge_tracks_queue(self):
        sim = Simulator()
        device = Device(sim, edge_server_x86())
        loop = ServingLoop(
            sim, device, "edge-test",
            ServingConfig(max_batch=8, batch_timeout_s=10.0),
        )

        def proc():
            for i in range(3):
                loop.submit(
                    sender="u", request_id=i, browser=None, event=None,
                    exec_seconds=0.01, model_id="m", feature=object(),
                )
            if False:
                yield

        sim.spawn(proc())
        sim.run(until=0.001)
        assert sim.metrics.value("server_queue_depth", server="edge-test") == 3
        sim.run(until=60.0)
        assert sim.metrics.value("server_queue_depth", server="edge-test") == 0
        assert loop.stats["items"] == 3
