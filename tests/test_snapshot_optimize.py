"""Tests for snapshot size optimizations (liveness analysis)."""

from repro.core.snapshot.optimize import (
    live_globals,
    reachable_handlers,
    select_globals,
)
from repro.web.events import Event

SCRIPT = '''
def load_image(ctx):
    ctx.globals["image"] = ctx.globals["pending_pixels"]

def front(ctx):
    feature = ctx.models["front"].inference(ctx.globals["image"].data)
    ctx.globals["feature"] = feature
    ctx.dispatch_event("front_complete", "btn")

def rear(ctx):
    probs = ctx.models["rear"].inference(ctx.globals["feature"].data)
    ctx.globals["result"] = probs

def helper(ctx):
    return ctx.globals["config"]

def uses_helper(ctx):
    return helper(ctx)
'''

LISTENERS = [
    ("load_btn", "click", "load_image"),
    ("btn", "click", "front"),
    ("btn", "front_complete", "rear"),
    ("other_btn", "click", "uses_helper"),
]


class TestReachableHandlers:
    def test_pending_event_selects_exact_listener(self):
        reached = reachable_handlers(
            SCRIPT, LISTENERS, Event("front_complete", "btn")
        )
        assert "rear" in reached
        assert "load_image" not in reached
        assert "front" not in reached

    def test_click_on_btn_reaches_front_and_transitively_rear(self):
        reached = reachable_handlers(SCRIPT, LISTENERS, Event("click", "btn"))
        # front mentions "front_complete", whose handler is rear.
        assert reached >= {"front", "rear"}
        assert "load_image" not in reached

    def test_direct_function_calls_followed(self):
        reached = reachable_handlers(SCRIPT, LISTENERS, Event("click", "other_btn"))
        assert reached >= {"uses_helper", "helper"}

    def test_no_pending_event_keeps_all_handlers(self):
        reached = reachable_handlers(SCRIPT, LISTENERS, None)
        assert reached == {"load_image", "front", "rear", "uses_helper"}

    def test_event_with_no_listeners_reaches_nothing(self):
        reached = reachable_handlers(SCRIPT, LISTENERS, Event("hover", "btn"))
        assert reached == set()


class TestLiveGlobals:
    def test_only_mentioned_globals_kept(self):
        live = live_globals(
            SCRIPT, ["feature", "image", "config", "unrelated"], {"rear"}
        )
        assert live == {"feature"}

    def test_multiple_handlers_union(self):
        live = live_globals(
            SCRIPT, ["feature", "image", "config"], {"front", "rear"}
        )
        assert live == {"feature", "image"}


class TestSelectGlobals:
    def test_conservative_mode_keeps_everything(self):
        names = {"a", "b", "c"}
        kept = select_globals(SCRIPT, names, LISTENERS, Event("click", "btn"), False)
        assert kept == names

    def test_live_mode_filters(self):
        names = {"feature", "image", "unrelated"}
        kept = select_globals(
            SCRIPT, names, LISTENERS, Event("front_complete", "btn"), True
        )
        assert kept == {"feature"}

    def test_live_mode_without_event_keeps_everything(self):
        names = {"feature", "unrelated"}
        kept = select_globals(SCRIPT, names, LISTENERS, None, True)
        assert kept == names
