#!/usr/bin/env python
"""Privacy demo: partial inference hides the input; withholding the front
model defeats feature inversion.

Three measurements on a small CNN (so the attack runs in seconds):

1. A *full* offloading snapshot contains the user's input image; a
   *partial* inference snapshot contains only denatured feature data.
2. The denaturing score of the feature data vs the raw input.
3. The hill-climbing inversion attack [17]: with the front model it
   reconstructs the input well; with only a surrogate (the paper's
   defense: the front model is never pre-sent) it gets nowhere.

Run:  python examples/privacy_partial_inference.py
"""

from repro.core.privacy import denaturing_score, inversion_study, snapshot_exposes_input
from repro.core.snapshot import CaptureOptions, capture_snapshot
from repro.nn.zoo import smallnet, tinynet
from repro.sim import SeededRng
from repro.web import WebRuntime
from repro.web.app import make_inference_app, make_partial_inference_app
from repro.web.events import Event
from repro.web.values import TypedArray


def snapshot_for(app, pixels, event, options):
    runtime = WebRuntime("client")
    runtime.load_app(app)
    runtime.globals["pending_pixels"] = pixels
    runtime.dispatch("click", "load_btn")
    if event.event_type == "front_complete":
        runtime.events.set_interceptor(lambda ev: None)
        runtime.events.mark_offload_event("front_complete")
        runtime.dispatch("click", "infer_btn")  # front() runs locally
    return capture_snapshot(runtime, event, options)


def main() -> None:
    rng = SeededRng(0, "privacy-demo")
    model = smallnet()
    pixels = TypedArray(rng.uniform_array((3, 32, 32), 0, 255))

    # 1. Input exposure: full vs partial offloading snapshots.
    full_snapshot = snapshot_for(
        make_inference_app(model),
        pixels,
        Event("click", "infer_btn"),
        CaptureOptions(include_canvas_pixels=True),
    )
    point = model.network.point_by_label("1st_pool")
    front, rear = model.split(point.index)
    partial_snapshot = snapshot_for(
        make_partial_inference_app(front, rear),
        pixels,
        Event("front_complete", "infer_btn"),
        CaptureOptions(),
    )
    print("input exposure")
    print(f"  full offload snapshot exposes input   : "
          f"{snapshot_exposes_input(full_snapshot, pixels.data)}")
    print(f"  partial inference snapshot exposes it : "
          f"{snapshot_exposes_input(partial_snapshot, pixels.data)}")

    # 2. How denatured is the feature data?
    feature = front.inference(pixels.data)
    print(f"\ndenaturing score of 1st_pool feature vs input: "
          f"{denaturing_score(pixels.data, feature):.2f}  (1.0 = unrecognizable)")

    # 3. The inversion attack, with and without the true front model.
    attack_model = tinynet()
    attack_point = attack_model.network.point_by_label("1st_conv")
    true_front, _ = attack_model.split(attack_point.index)
    surrogate_front, _ = tinynet(seed=99).split(attack_point.index)
    image = rng.uniform_array((1, 8, 8), 0, 255)
    study = inversion_study(true_front, surrogate_front, image, iterations=400)
    print("\nhill-climbing inversion attack (tinynet, 400 iterations)")
    print(f"  attacker WITH the front model : feature loss reduced "
          f"{study.with_front.loss_reduction:.0%}")
    print(f"  attacker WITHOUT it (surrogate): feature loss reduced "
          f"{study.without_front.loss_reduction:.0%}")
    print(f"  defense effective              : {study.defense_effective}")
    print("\nThis is why the client pre-sends only the REAR part of the model.")


if __name__ == "__main__":
    main()
