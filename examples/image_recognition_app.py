#!/usr/bin/env python
"""The paper's headline scenario: GoogLeNet image recognition on the edge.

Reproduces one column of Fig. 6 end to end: the same GoogLeNet web app
executed (a) entirely on the Odroid-class client, (b) entirely on the x86
edge server, (c) offloaded before the model upload's ACK, (d) offloaded
after the ACK, and (e) offloaded with privacy-preserving partial inference
at the first pooling layer.

Run:  python examples/image_recognition_app.py [model]
      model in {googlenet, agenet, gendernet}; default googlenet.
"""

import sys

from repro.eval.reporting import format_table
from repro.eval.scenarios import Testbed


def main(model_name: str = "googlenet") -> None:
    print(f"running all five Fig. 6 configurations for {model_name} ...")
    rows = []
    configurations = (
        ("client only", lambda: Testbed().run_client_only(model_name)),
        ("server only", lambda: Testbed().run_server_only(model_name)),
        ("offload, before ACK", lambda: Testbed().run_offload(model_name, False)),
        ("offload, after ACK", lambda: Testbed().run_offload(model_name, True)),
        ("offload, partial @1st_pool",
         lambda: Testbed().run_offload_partial(model_name, "1st_pool")),
    )
    for label, run in configurations:
        result = run()
        rows.append(
            [
                label,
                result.total_seconds,
                result.migration_seconds,
                result.snapshot_bytes / 1e6,
                str(result.correct),
            ]
        )
    print(
        format_table(
            ["configuration", "inference s", "migration s", "snapshot MB", "correct"],
            rows,
            title=f"{model_name}: execution time of inference (paper Fig. 6)",
        )
    )
    print(
        "\nNote how offloading after the ACK approaches the server-only time,"
        "\nwhile the first offload (before ACK) pays for the model upload."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "googlenet")
