#!/usr/bin/env python
"""Explore partition points: where should the DNN be split today?

Sweeps the offload point along a model's spine at several link speeds,
printing the optimizer's predicted total time and the feature size at each
point (the data behind the paper's Fig. 8), and the point the dynamic
partitioner would pick right now — with and without the denaturing
constraint that protects the user's input.

Run:  python examples/partition_explorer.py [model] [bandwidth_mbps ...]
"""

import sys

from repro.eval.fig8 import make_optimizer
from repro.eval.reporting import format_table
from repro.eval.scenarios import build_paper_model
from repro.netsim import NetemProfile
from repro.nn.cost import spine_costs


def explore(model_name: str, bandwidths_mbps) -> None:
    model = build_paper_model(model_name)
    network = model.network
    optimizer = make_optimizer(model_name)
    feature_mb = {
        point.index: point.feature_text_bytes / 1e6
        for point in spine_costs(network)
    }

    for mbps in bandwidths_mbps:
        link = NetemProfile(bandwidth_bps=mbps * 1e6, latency_s=0.001)
        estimates = optimizer.sweep(network, link)
        rows = [
            [
                estimate.point.label,
                estimate.client_seconds,
                estimate.transfer_seconds,
                estimate.server_seconds,
                estimate.total_seconds,
                feature_mb[estimate.point.index],
            ]
            for estimate in estimates
            if estimate.point.layer_kind in ("input", "conv", "pool", "inception")
        ]
        print(
            format_table(
                ["point", "client s", "transfer s", "server s", "total s", "feature MB"],
                rows,
                title=f"\n{model_name} @ {mbps:g} Mbps",
            )
        )
        free = optimizer.choose(network, link, denature=False)
        safe = optimizer.choose(network, link, denature=True)
        print(f"optimizer choice (fastest)            : {free.point.label} "
              f"({free.best.total_seconds:.2f} s)")
        print(f"optimizer choice (denaturing enforced): {safe.point.label} "
              f"({safe.best.total_seconds:.2f} s)")


if __name__ == "__main__":
    model_name = sys.argv[1] if len(sys.argv) > 1 else "agenet"
    bandwidths = [float(arg) for arg in sys.argv[2:]] or [4.0, 30.0, 120.0]
    explore(model_name, bandwidths)
