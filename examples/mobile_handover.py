#!/usr/bin/env python
"""Mobility: hand over to a fresh edge server and install on demand.

The paper's mobility argument (§I, §III.B.3): a snapshot has no dependence
on the previous server, so after a handover the client can offload to any
new edge server — installing the offloading system there at runtime via VM
synthesis if it is missing.

Timeline simulated here:

  t=0      client attaches to edge-A (pre-installed), pre-sends the model
  inference #1  -> offloaded to edge-A (fast: model already there)
  handover      -> client moves; edge-B has NO offloading system
  capability probe -> edge-B answers "not installed"
  VM synthesis  -> client ships the compressed overlay (system + model)
  inference #2  -> offloaded to edge-B (fast again: model came in overlay)

Run:  python examples/mobile_handover.py
"""

from repro.core import protocol
from repro.core.client import ClientAgent
from repro.core.server import EdgeServer
from repro.core.snapshot import CaptureOptions
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import NetemProfile, Topology
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.vmsynth import DiskImage, build_overlay
from repro.vmsynth.synthesis import deliver_overlay
from repro.web.app import make_inference_app
from repro.web.values import TypedArray


def offload_once(sim, client, model, label):
    client.runtime.dispatch("click", "infer_btn")
    event = client.take_intercepted()
    process = sim.spawn(
        client.offload(event, server_costs=network_costs(model.network))
    )
    sim.run_until(lambda: process.triggered)
    outcome = process.value
    print(f"  {label}: {outcome.total_seconds:.3f} s "
          f"(models attached: {outcome.delivery_bytes / 1e3:.0f} kB), result "
          f"{client.runtime.document.get('result').text_content!r}")
    return outcome


def main() -> None:
    sim = Simulator()
    model = smallnet()

    topology = Topology(sim)
    topology.add_edge_host("edge-A", NetemProfile.wifi_30mbps())
    topology.add_edge_host("edge-B", NetemProfile.wifi_30mbps())

    server_a = EdgeServer(sim, Device(sim, edge_server_x86()), "edge-A", installed=True)
    server_b = EdgeServer(sim, Device(sim, edge_server_x86()), "edge-B", installed=False)

    # -- attach to edge-A, start the app, pre-send the model ---------------
    client_end, server_end = topology.attach("edge-A")
    server_a.serve(server_end)
    client = ClientAgent(
        sim,
        Device(sim, odroid_xu4_client()),
        client_end,
        capture_options=CaptureOptions(include_canvas_pixels=True),
    )
    client.start_app(make_inference_app(model), presend=True)
    client.runtime.globals["pending_pixels"] = TypedArray(
        SeededRng(0, "handover").uniform_array((3, 32, 32), 0, 255)
    )
    client.runtime.dispatch("click", "load_btn")
    client.mark_offload_point("click", "infer_btn")
    sim.run()  # let pre-sending to edge-A finish
    print(f"t={sim.now:.3f}s  attached to edge-A, model pre-sent and ACKed")
    offload_once(sim, client, model, "inference #1 on edge-A")

    # -- handover: edge-B has no offloading system --------------------------
    client_end, server_end = topology.handover("edge-B")
    server_b.serve(server_end)
    client.endpoint = client_end
    client.presend = None  # the old server's state is simply left behind
    print(f"t={sim.now:.3f}s  handed over to edge-B")

    probe = client_end.send(protocol.PING, None)
    answer = client_end.recv_kind(protocol.PONG)
    sim.run_until(lambda: answer.triggered)
    capability = answer.value.payload
    print(f"t={sim.now:.3f}s  edge-B capability: "
          f"installed={capability.has_offloading_system}")

    # -- on-demand installation via VM synthesis ---------------------------
    overlay = build_overlay(DiskImage.ubuntu_base(), [model])
    print(f"          shipping VM overlay: {overlay.size_mb:.1f} MB compressed "
          f"(system + model)")
    install = sim.spawn(deliver_overlay(client_end, overlay))
    sim.run_until(lambda: install.triggered)
    print(f"t={sim.now:.3f}s  edge-B synthesized the VM and is ready")

    # -- offload to the fresh server ----------------------------------------
    offload_once(sim, client, model, "inference #2 on edge-B")
    print("\nThe snapshot needed nothing from edge-A: handover is stateless.")


if __name__ == "__main__":
    main()
