#!/usr/bin/env python
"""Quickstart: offload one DNN inference from a web app to an edge server.

Builds a small CNN web app, runs it on a simulated Odroid-class client
attached to an x86 edge server over a 30 Mbps link, and performs one
snapshot-based offload — printing the phase timeline and verifying the
offloaded result matches local execution.

Run:  python examples/quickstart.py
"""

from repro.core.session import OffloadingSession, expected_label_for
from repro.core.client import ClientAgent
from repro.core.server import EdgeServer
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.netsim import NetemProfile, Topology
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.web.app import make_inference_app
from repro.web.values import TypedArray


def main() -> None:
    # 1. The app: a small image classifier packaged like the paper's Fig. 2.
    model = smallnet()
    app = make_inference_app(model)

    # 2. The world: client device, edge server, shaped Wi-Fi-like link.
    sim = Simulator()
    topology = Topology(sim)
    topology.add_edge_host("edge-1", NetemProfile.wifi_30mbps())
    client_end, server_end = topology.attach("edge-1")
    server = EdgeServer(sim, Device(sim, edge_server_x86()), name="edge-1")
    server.serve(server_end)
    client = ClientAgent(sim, Device(sim, odroid_xu4_client()), client_end)

    # 3. One user interaction: load an image, click "Inference".
    image = TypedArray(SeededRng(0, "quickstart").uniform_array((3, 32, 32), 0, 255))
    session = OffloadingSession(
        sim,
        client,
        app,
        model.name,
        image,
        full_costs=network_costs(model.network),
        expected_label=expected_label_for(model, image),
    )
    process = sim.spawn(session.run_offload(wait_for_ack=True))
    sim.run_until(lambda: process.triggered)
    result = process.value

    # 4. What happened.
    print(f"app result shown to the user : {result.result_text!r}")
    print(f"offloaded label matches local: {result.correct}")
    print(f"total inference time         : {result.total_seconds:.3f} s (virtual)")
    print(f"snapshot shipped             : {result.snapshot_bytes / 1e3:.1f} kB "
          f"({result.snapshot_code_bytes / 1e3:.1f} kB code)")
    print(f"result delta received        : {result.delta_bytes} B")
    print("phase timeline:")
    for phase, seconds in result.phases.as_dict().items():
        if seconds > 0:
            print(f"  {phase:28s} {seconds * 1000:8.2f} ms")


if __name__ == "__main__":
    main()
