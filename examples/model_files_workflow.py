#!/usr/bin/env python
"""The model-file workflow: prototxt + binary weights, end to end.

Shows the Caffe-style artifact pipeline the offloading system ships:

1. build a model and write its ``deploy.prototxt`` + ``weights.bin``;
2. reload the pair into a bit-identical model;
3. pre-send the files to an edge server and offload an inference;
4. export the session timeline as a Chrome trace (chrome://tracing).

Run:  python examples/model_files_workflow.py [output_dir]
"""

import os
import sys
import tempfile

import numpy as np

from repro.eval.scenarios import Testbed
from repro.eval.traces import write_chrome_trace
from repro.nn.caffemodel import load_model_files, save_model_files
from repro.nn.zoo import smallnet
from repro.sim import SeededRng


def main(output_dir: str) -> None:
    os.makedirs(output_dir, exist_ok=True)

    # 1. Write the model files.
    model = smallnet(seed=42)
    prototxt_path, weights_path = save_model_files(model, output_dir)
    print(f"wrote {prototxt_path} "
          f"({os.path.getsize(prototxt_path)} B)")
    print(f"wrote {weights_path} "
          f"({os.path.getsize(weights_path) / 1e6:.2f} MB)")

    # 2. Reload and verify bit-identical inference.
    loaded = load_model_files(prototxt_path, weights_path)
    image = SeededRng(7, "wf").uniform_array((3, 32, 32), 0, 255)
    assert np.allclose(loaded.inference(image), model.inference(image), atol=1e-6)
    print("reloaded model reproduces the original's inference exactly")

    # 3. Offload an inference with the model pre-sent as files.
    result = Testbed().run_offload("smallnet", wait_for_ack=True)
    print(f"offloaded inference: {result.total_seconds * 1000:.1f} ms "
          f"(correct: {result.correct})")

    # 4. Chrome trace of the timeline.
    trace_path = write_chrome_trace(
        os.path.join(output_dir, "offload_trace.json"), [result]
    )
    print(f"timeline trace written to {trace_path} — open in chrome://tracing")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-"))
