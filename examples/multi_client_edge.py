#!/usr/bin/env python
"""A shared edge server under several interactive clients.

Replays generated user traces (camera pointing + "inference" taps) from N
clients against one edge server.  The server's browser is a FIFO resource,
so synchronized bursts queue; the session cache keeps follow-up snapshots
tiny.  Prints the per-request log and a latency summary per fleet size.

Run:  python examples/multi_client_edge.py [num_clients]
"""

import sys

from repro.eval.reporting import format_table
from repro.eval.workloads import MultiClientScenario, contention_study


def main(num_clients: int = 3) -> None:
    scenario = MultiClientScenario("smallnet", num_clients=num_clients)
    report = scenario.run()
    print(
        format_table(
            ["client", "issued s", "done s", "latency ms", "snapshot", "correct"],
            [
                [
                    record.client_name,
                    record.issued_at,
                    record.completed_at,
                    record.latency_seconds * 1000,
                    record.snapshot_kind,
                    str(record.correct),
                ]
                for record in report.records
            ],
            title=f"{num_clients} clients, one edge server — request log",
        )
    )
    print(f"\nmean latency {report.mean_latency * 1000:.1f} ms, "
          f"max {report.max_latency * 1000:.1f} ms, "
          f"all correct: {report.all_correct}")

    print("\nsynchronized-burst contention sweep:")
    for count, burst in contention_study("smallnet", (1, 2, 4, 8)).items():
        print(f"  {count} clients: mean {burst.mean_latency * 1000:6.1f} ms  "
              f"max {burst.max_latency * 1000:6.1f} ms")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
