#!/usr/bin/env python
"""Streaming video through the offloading system, frame by frame.

The paper's introduction motivates edge servers with video processing; the
snapshot approach handles it with the same generic machinery — each camera
frame fires an event whose handler is offloaded, and with the session
cache every frame after the first travels as a small delta snapshot.

Run:  python examples/video_stream.py [model] [frames] [fps]
"""

import sys

from repro.eval.reporting import format_table
from repro.eval.streaming import run_stream


def main(model: str = "agenet", frames: int = 4, fps: float = 1.0) -> None:
    configurations = (
        ("client only", dict(mode="client")),
        ("offload (CPU edge)", dict(mode="offload")),
        ("offload (GPU edge)", dict(mode="offload", server_speedup=80.0)),
    )
    rows = []
    detail = None
    for label, kwargs in configurations:
        report = run_stream(model, frames=frames, fps=fps, **kwargs)
        rows.append(
            [
                label,
                report.achieved_fps,
                report.mean_latency,
                str(report.keeps_up),
                str(report.all_correct),
            ]
        )
        if label.startswith("offload (CPU"):
            detail = report
    print(
        format_table(
            ["configuration", "achieved fps", "mean latency s",
             f"keeps up @{fps:g}fps", "correct"],
            rows,
            title=f"{model}: {frames} frames at {fps:g} fps",
        )
    )
    if detail is not None:
        print("\nper-frame log (CPU edge):")
        for record in detail.records:
            print(
                f"  frame {record.index}: captured {record.captured_at:6.2f}s "
                f"done {record.completed_at:6.2f}s "
                f"({record.snapshot_kind} snapshot) label {record.label}"
            )
        print("\nFrame #0 ships a full snapshot; every later frame is a "
              "delta against the session the server kept.")


if __name__ == "__main__":
    model = sys.argv[1] if len(sys.argv) > 1 else "agenet"
    frames = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    fps = float(sys.argv[3]) if len(sys.argv) > 3 else 1.0
    main(model, frames, fps)
