#!/usr/bin/env bash
# End-to-end smoke check: unit tests, a quick campaign with telemetry
# export, a parse check on the exported metrics, and the execution
# engine's determinism contract (a --jobs 2 campaign plus a warm-cache
# rerun must reproduce the serial report byte for byte, and the warm
# run must not be slower than the cold one).
#
#   scripts/smoke.sh [output-dir]
#
# Exits non-zero if any stage fails.  Total runtime is a couple of
# minutes; the campaign runs in --quick mode (one model, short sweeps).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out_dir="${1:-$repo_root/smoke-out}"
mkdir -p "$out_dir"
cd "$repo_root"
export PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== 1/4 unit + property tests"
python -m pytest -x -q

echo "== 2/4 quick campaign with telemetry export"
python -m repro campaign --quick \
    --out "$out_dir/report.md" \
    --metrics-out "$out_dir/metrics.prom"

echo "== 3/4 exported metrics parse + sanity"
python - "$out_dir/metrics.prom" <<'PY'
import sys

from repro.obs import parse_prometheus_text

with open(sys.argv[1], "r", encoding="utf-8") as handle:
    parsed = parse_prometheus_text(handle.read())
samples = parsed["samples"]
sessions = sum(v for (name, _), v in samples.items() if name == "sessions_total")
executions = sum(
    v for (name, _), v in samples.items() if name == "server_executions_total"
)
assert sessions > 0, "campaign exported no sessions"
assert executions > 0, "campaign exported no server executions"
print(f"ok: {len(samples)} samples, {sessions:.0f} sessions, "
      f"{executions:.0f} server executions")
PY

echo "== 4/4 execution engine: parallel + cache determinism"
cache_dir="$out_dir/result-cache"
rm -rf "$cache_dir"
cold_start=$(python -c 'import time; print(time.perf_counter())')
python -m repro campaign --quick --jobs 2 --cache-dir "$cache_dir" \
    --out "$out_dir/report-jobs2-cold.md" > /dev/null
cold_end=$(python -c 'import time; print(time.perf_counter())')
python -m repro campaign --quick --jobs 2 --cache-dir "$cache_dir" \
    --out "$out_dir/report-jobs2-warm.md" > /dev/null
warm_end=$(python -c 'import time; print(time.perf_counter())')

cmp "$out_dir/report.md" "$out_dir/report-jobs2-cold.md" || {
    echo "FAIL: --jobs 2 report differs from the serial report" >&2; exit 1; }
cmp "$out_dir/report.md" "$out_dir/report-jobs2-warm.md" || {
    echo "FAIL: warm-cache report differs from the serial report" >&2; exit 1; }
python - "$cold_start" "$cold_end" "$warm_end" <<'PY'
import sys

cold_start, cold_end, warm_end = map(float, sys.argv[1:])
cold = cold_end - cold_start
warm = warm_end - cold_end
print(f"ok: cold {cold:.1f}s, warm {warm:.1f}s (reports byte-identical)")
assert warm <= cold, f"cached rerun slower than cold run ({warm:.1f}s > {cold:.1f}s)"
PY

echo "smoke ok — artifacts in $out_dir"
