#!/usr/bin/env bash
# End-to-end smoke check: unit tests, a quick campaign with telemetry
# export, and a parse check on the exported metrics.
#
#   scripts/smoke.sh [output-dir]
#
# Exits non-zero if any stage fails.  Total runtime is a couple of
# minutes; the campaign runs in --quick mode (one model, short sweeps).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out_dir="${1:-$repo_root/smoke-out}"
mkdir -p "$out_dir"
cd "$repo_root"
export PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== 1/3 unit + property tests"
python -m pytest -x -q

echo "== 2/3 quick campaign with telemetry export"
python -m repro campaign --quick \
    --out "$out_dir/report.md" \
    --metrics-out "$out_dir/metrics.prom"

echo "== 3/3 exported metrics parse + sanity"
python - "$out_dir/metrics.prom" <<'PY'
import sys

from repro.obs import parse_prometheus_text

with open(sys.argv[1], "r", encoding="utf-8") as handle:
    parsed = parse_prometheus_text(handle.read())
samples = parsed["samples"]
sessions = sum(v for (name, _), v in samples.items() if name == "sessions_total")
executions = sum(
    v for (name, _), v in samples.items() if name == "server_executions_total"
)
assert sessions > 0, "campaign exported no sessions"
assert executions > 0, "campaign exported no server executions"
print(f"ok: {len(samples)} samples, {sessions:.0f} sessions, "
      f"{executions:.0f} server executions")
PY

echo "smoke ok — artifacts in $out_dir"
