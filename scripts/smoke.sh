#!/usr/bin/env bash
# End-to-end smoke check: unit tests, a quick campaign with telemetry
# export, a parse check on the exported metrics, the execution
# engine's determinism contract (a --jobs 2 campaign plus a warm-cache
# rerun must reproduce the serial report byte for byte, and the warm
# run must not be slower than the cold one), and the graph optimizer's
# contract (fig7 plus a googlenet fig8 partial-inference sweep — whose
# front/rear splits land inside the inception branch-and-join stages —
# with and without --no-optimize must produce byte-identical reports,
# and the optimized run must not be slower).
#
#   scripts/smoke.sh [output-dir]
#
# Exits non-zero if any stage fails.  Total runtime is a couple of
# minutes; the campaign runs in --quick mode (one model, short sweeps).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out_dir="${1:-$repo_root/smoke-out}"
mkdir -p "$out_dir"
cd "$repo_root"
export PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== 1/5 unit + property tests"
python -m pytest -x -q

echo "== 2/5 quick campaign with telemetry export"
python -m repro campaign --quick \
    --out "$out_dir/report.md" \
    --metrics-out "$out_dir/metrics.prom"

echo "== 3/5 exported metrics parse + sanity"
python - "$out_dir/metrics.prom" <<'PY'
import sys

from repro.obs import parse_prometheus_text

with open(sys.argv[1], "r", encoding="utf-8") as handle:
    parsed = parse_prometheus_text(handle.read())
samples = parsed["samples"]
sessions = sum(v for (name, _), v in samples.items() if name == "sessions_total")
executions = sum(
    v for (name, _), v in samples.items() if name == "server_executions_total"
)
assert sessions > 0, "campaign exported no sessions"
assert executions > 0, "campaign exported no server executions"
print(f"ok: {len(samples)} samples, {sessions:.0f} sessions, "
      f"{executions:.0f} server executions")
PY

echo "== 4/5 execution engine: parallel + cache determinism"
cache_dir="$out_dir/result-cache"
rm -rf "$cache_dir"
cold_start=$(python -c 'import time; print(time.perf_counter())')
python -m repro campaign --quick --jobs 2 --cache-dir "$cache_dir" \
    --out "$out_dir/report-jobs2-cold.md" > /dev/null
cold_end=$(python -c 'import time; print(time.perf_counter())')
python -m repro campaign --quick --jobs 2 --cache-dir "$cache_dir" \
    --out "$out_dir/report-jobs2-warm.md" > /dev/null
warm_end=$(python -c 'import time; print(time.perf_counter())')

cmp "$out_dir/report.md" "$out_dir/report-jobs2-cold.md" || {
    echo "FAIL: --jobs 2 report differs from the serial report" >&2; exit 1; }
cmp "$out_dir/report.md" "$out_dir/report-jobs2-warm.md" || {
    echo "FAIL: warm-cache report differs from the serial report" >&2; exit 1; }
python - "$cold_start" "$cold_end" "$warm_end" <<'PY'
import sys

cold_start, cold_end, warm_end = map(float, sys.argv[1:])
cold = cold_end - cold_start
warm = warm_end - cold_end
print(f"ok: cold {cold:.1f}s, warm {warm:.1f}s (reports byte-identical)")
assert warm <= cold, f"cached rerun slower than cold run ({warm:.1f}s > {cold:.1f}s)"
PY

echo "== 5/5 graph optimizer: equivalence + not-slower"
opt_start=$(python -c 'import time; print(time.perf_counter())')
python -m repro fig7 --models googlenet \
    > "$out_dir/fig7-optimized.txt"
opt_end=$(python -c 'import time; print(time.perf_counter())')
python -m repro fig7 --models googlenet --no-optimize \
    > "$out_dir/fig7-reference.txt"
ref_end=$(python -c 'import time; print(time.perf_counter())')

cmp "$out_dir/fig7-optimized.txt" "$out_dir/fig7-reference.txt" || {
    echo "FAIL: fig7 diverges between optimized and --no-optimize runs" >&2
    exit 1; }
python - "$opt_start" "$opt_end" "$ref_end" <<'PY'
import sys

opt_start, opt_end, ref_end = map(float, sys.argv[1:])
optimized = opt_end - opt_start
reference = ref_end - opt_end
print(f"ok: optimized {optimized:.1f}s, reference {reference:.1f}s "
      "(reports byte-identical)")
# 5% grace: fig7 wall time includes model building and the virtual-time
# simulation, which are identical either way — the check guards against
# the plan path being materially slower, not against timer noise.
assert optimized <= reference * 1.05, (
    f"optimized fig7 slower than --no-optimize ({optimized:.1f}s > "
    f"{reference:.1f}s)"
)
PY

# Partial inference across branch-and-join stages: the googlenet fig8
# sweep's first 8 points include splits at inception_3a/3b, so the front
# plan ends inside the inception region and the rear plan crosses the
# remaining concat joins.  The DAG scheduler must stay byte-identical to
# the reference walk there too.
python -m repro fig8 --models googlenet --max-points 8 \
    > "$out_dir/fig8-split-optimized.txt"
python -m repro fig8 --models googlenet --max-points 8 --no-optimize \
    > "$out_dir/fig8-split-reference.txt"
cmp "$out_dir/fig8-split-optimized.txt" "$out_dir/fig8-split-reference.txt" || {
    echo "FAIL: googlenet fig8 partial-inference sweep diverges between" \
         "optimized and --no-optimize runs" >&2
    exit 1; }
echo "ok: googlenet partial-inference sweep byte-identical across joins"

echo "smoke ok — artifacts in $out_dir"
