#!/usr/bin/env bash
# End-to-end smoke check: unit tests, a quick campaign with telemetry
# export, a parse check on the exported metrics, the execution
# engine's determinism contract (a --jobs 2 campaign plus a warm-cache
# rerun must reproduce the serial report byte for byte, and the warm
# run must not be slower than the cold one), the graph optimizer's
# contract (fig7 plus a googlenet fig8 partial-inference sweep — whose
# front/rear splits land inside the inception branch-and-join stages —
# with and without --no-optimize must produce byte-identical reports,
# and the optimized run must not be slower), and the plan cache's
# contract (two --jobs 2 campaigns sharing one --plan-cache-dir must
# both reproduce the serial report byte for byte, and a fresh process
# against the populated cache must rehydrate — hits > 0 — rather than
# recompile), and the fleet scheduler's contract (a small multi-edge
# scenario with a mid-run kill, run twice with the same seed, must
# produce byte-identical reports and serve every request), and the
# serving loop's contract (a same-seed continuous-batching scenario
# with a mid-run kill, run twice, must emit byte-identical reports —
# batching changes timing, never results), and the kernel backends'
# contract (a reference-backend fig7 must byte-match the committed
# baseline, and the tuned backend must not flip any top-1 label), and
# the model store's contract (same-seed cold-fleet and pre-warmed-fleet
# scenarios, run twice each, must emit byte-identical reports, and the
# warm fleet must pay zero upload bytes), and the multi-exit sweep's
# contract (same-seed fig-accuracy runs must be byte-identical, with
# every accuracy-scaling claim checked by the CLI's exit status).
#
#   scripts/smoke.sh [output-dir]
#
# Exits non-zero if any stage fails.  Total runtime is a couple of
# minutes; the campaign runs in --quick mode (one model, short sweeps).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out_dir="${1:-$repo_root/smoke-out}"
mkdir -p "$out_dir"
cd "$repo_root"
export PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== 1/11 unit + property tests"
python -m pytest -x -q

echo "== 2/11 quick campaign with telemetry export"
python -m repro campaign --quick \
    --out "$out_dir/report.md" \
    --metrics-out "$out_dir/metrics.prom"

echo "== 3/11 exported metrics parse + sanity"
python - "$out_dir/metrics.prom" <<'PY'
import sys

from repro.obs import parse_prometheus_text

with open(sys.argv[1], "r", encoding="utf-8") as handle:
    parsed = parse_prometheus_text(handle.read())
samples = parsed["samples"]
sessions = sum(v for (name, _), v in samples.items() if name == "sessions_total")
executions = sum(
    v for (name, _), v in samples.items() if name == "server_executions_total"
)
assert sessions > 0, "campaign exported no sessions"
assert executions > 0, "campaign exported no server executions"
print(f"ok: {len(samples)} samples, {sessions:.0f} sessions, "
      f"{executions:.0f} server executions")
PY

echo "== 4/11 execution engine: parallel + cache determinism"
cache_dir="$out_dir/result-cache"
rm -rf "$cache_dir"
cold_start=$(python -c 'import time; print(time.perf_counter())')
python -m repro campaign --quick --jobs 2 --cache-dir "$cache_dir" \
    --out "$out_dir/report-jobs2-cold.md" > /dev/null
cold_end=$(python -c 'import time; print(time.perf_counter())')
python -m repro campaign --quick --jobs 2 --cache-dir "$cache_dir" \
    --out "$out_dir/report-jobs2-warm.md" > /dev/null
warm_end=$(python -c 'import time; print(time.perf_counter())')

cmp "$out_dir/report.md" "$out_dir/report-jobs2-cold.md" || {
    echo "FAIL: --jobs 2 report differs from the serial report" >&2; exit 1; }
cmp "$out_dir/report.md" "$out_dir/report-jobs2-warm.md" || {
    echo "FAIL: warm-cache report differs from the serial report" >&2; exit 1; }
python - "$cold_start" "$cold_end" "$warm_end" <<'PY'
import sys

cold_start, cold_end, warm_end = map(float, sys.argv[1:])
cold = cold_end - cold_start
warm = warm_end - cold_end
print(f"ok: cold {cold:.1f}s, warm {warm:.1f}s (reports byte-identical)")
assert warm <= cold, f"cached rerun slower than cold run ({warm:.1f}s > {cold:.1f}s)"
PY

echo "== 5/11 graph optimizer: equivalence + not-slower"
opt_start=$(python -c 'import time; print(time.perf_counter())')
python -m repro fig7 --models googlenet \
    > "$out_dir/fig7-optimized.txt"
opt_end=$(python -c 'import time; print(time.perf_counter())')
python -m repro fig7 --models googlenet --no-optimize \
    > "$out_dir/fig7-reference.txt"
ref_end=$(python -c 'import time; print(time.perf_counter())')

cmp "$out_dir/fig7-optimized.txt" "$out_dir/fig7-reference.txt" || {
    echo "FAIL: fig7 diverges between optimized and --no-optimize runs" >&2
    exit 1; }
python - "$opt_start" "$opt_end" "$ref_end" <<'PY'
import sys

opt_start, opt_end, ref_end = map(float, sys.argv[1:])
optimized = opt_end - opt_start
reference = ref_end - opt_end
print(f"ok: optimized {optimized:.1f}s, reference {reference:.1f}s "
      "(reports byte-identical)")
# 5% grace: fig7 wall time includes model building and the virtual-time
# simulation, which are identical either way — the check guards against
# the plan path being materially slower, not against timer noise.
assert optimized <= reference * 1.05, (
    f"optimized fig7 slower than --no-optimize ({optimized:.1f}s > "
    f"{reference:.1f}s)"
)
PY

# Partial inference across branch-and-join stages: the googlenet fig8
# sweep's first 8 points include splits at inception_3a/3b, so the front
# plan ends inside the inception region and the rear plan crosses the
# remaining concat joins.  The DAG scheduler must stay byte-identical to
# the reference walk there too.
python -m repro fig8 --models googlenet --max-points 8 \
    > "$out_dir/fig8-split-optimized.txt"
python -m repro fig8 --models googlenet --max-points 8 --no-optimize \
    > "$out_dir/fig8-split-reference.txt"
cmp "$out_dir/fig8-split-optimized.txt" "$out_dir/fig8-split-reference.txt" || {
    echo "FAIL: googlenet fig8 partial-inference sweep diverges between" \
         "optimized and --no-optimize runs" >&2
    exit 1; }
echo "ok: googlenet partial-inference sweep byte-identical across joins"

echo "== 6/11 plan cache: cross-process reuse + determinism"
plan_dir="$out_dir/plan-cache"
rm -rf "$plan_dir"
python -m repro campaign --quick --jobs 2 --plan-cache-dir "$plan_dir" \
    --out "$out_dir/report-plan-cold.md" > /dev/null
python -m repro campaign --quick --jobs 2 --plan-cache-dir "$plan_dir" \
    --out "$out_dir/report-plan-warm.md" > /dev/null

cmp "$out_dir/report.md" "$out_dir/report-plan-cold.md" || {
    echo "FAIL: cold plan-cache report differs from the serial report" >&2
    exit 1; }
cmp "$out_dir/report.md" "$out_dir/report-plan-warm.md" || {
    echo "FAIL: warm plan-cache report differs from the serial report" >&2
    exit 1; }

# A fresh process against the populated cache must rehydrate its plan
# from disk (hits > 0) instead of recompiling — the counters land in the
# telemetry, so probe them through the exported JSON.
python -m repro metrics --model agenet --plan-cache-dir "$plan_dir" \
    --format json > "$out_dir/plan-metrics.json" 2> /dev/null
python - "$out_dir/plan-metrics.json" <<'PY'
import json
import sys

with open(sys.argv[1], "r", encoding="utf-8") as handle:
    doc = json.load(handle)
families = doc["metrics"]
hits = sum(s["value"] for s in families["plan_cache_hits_total"]["series"])
misses = sum(s["value"] for s in families["plan_cache_misses_total"]["series"])
assert hits > 0, (
    f"warm process recompiled instead of rehydrating "
    f"(hits={hits:.0f}, misses={misses:.0f})"
)
print(f"ok: plan-cache reports byte-identical; warm process rehydrated "
      f"({hits:.0f} hits, {misses:.0f} misses)")
PY

echo "== 7/11 fleet: seeded determinism + failover conservation"
# A small multi-edge scenario with an edge killed (and revived) mid-run,
# executed twice with the same seed, must emit byte-identical reports —
# the scheduler, failover, and report rendering are all virtual-time
# deterministic.  The CLI exits non-zero if any request is dropped or
# returns a wrong result, so conservation is checked for free.
python -m repro fleet --sessions 10 --requests 2 --seed 5 \
    --kill edge-0@0.7:2.0 --out "$out_dir/fleet-a.md" > /dev/null
python -m repro fleet --sessions 10 --requests 2 --seed 5 \
    --kill edge-0@0.7:2.0 --out "$out_dir/fleet-b.md" > /dev/null
cmp "$out_dir/fleet-a.md" "$out_dir/fleet-b.md" || {
    echo "FAIL: fleet reports diverge across same-seed reruns" >&2; exit 1; }
echo "ok: fleet report byte-identical across same-seed reruns"

echo "== 8/11 serving: continuous-batching determinism under a kill"
# The batching serving loop must be invisible in the results: a same-seed
# serving scenario — two edges, an edge killed and revived mid-run — run
# twice must emit byte-identical reports (dispatcher wake-ups, batch
# cuts, drains, and failovers all replay on the virtual clock).  The CLI
# exits non-zero on any wrong result, so correctness is checked for free.
python -m repro serve --edges 2 --sessions 10 --requests 2 --rate 48 \
    --seed 5 --kill edge-0@0.35:1.2 --out "$out_dir/serve-a.md" > /dev/null
python -m repro serve --edges 2 --sessions 10 --requests 2 --rate 48 \
    --seed 5 --kill edge-0@0.35:1.2 --out "$out_dir/serve-b.md" > /dev/null
cmp "$out_dir/serve-a.md" "$out_dir/serve-b.md" || {
    echo "FAIL: serving reports diverge across same-seed reruns" >&2; exit 1; }
grep -q "serving:" "$out_dir/serve-a.md" || {
    echo "FAIL: serving report carries no batching stats" >&2; exit 1; }
echo "ok: serving report byte-identical across same-seed reruns"

echo "== 9/11 kernel backends: reference baseline + tuned label equality"
# The reference backend must reproduce the committed fig7 report byte for
# byte (it *is* the pre-backend numpy path, call for call), and the tuned
# backend — equivalent only within a tested tolerance — must not flip a
# single predicted top-1 label across the zoo.
python -m repro fig7 --models googlenet --backend reference \
    > "$out_dir/fig7-backend-reference.txt"
cmp "benchmarks/results/fig7_googlenet_reference.txt" \
    "$out_dir/fig7-backend-reference.txt" || {
    echo "FAIL: reference-backend fig7 differs from the committed baseline" >&2
    exit 1; }
python -m repro fig7 --models googlenet --backend tuned \
    > "$out_dir/fig7-backend-tuned.txt" || {
    echo "FAIL: fig7 failed under the tuned backend" >&2; exit 1; }
python - <<'PY'
import numpy as np

from repro.nn.backend import set_backend
from repro.nn.zoo import build_model
from repro.sim import SeededRng

for name in ("smallnet", "tinynet", "alexnet", "resnet-mini", "googlenet"):
    x = SeededRng(13, f"smoke/backend/{name}").uniform_array(
        tuple(build_model(name).network.input_shape), 0, 255
    )
    set_backend("reference")
    reference = int(np.argmax(build_model(name).network.forward(x)))
    set_backend("tuned")
    tuned = int(np.argmax(build_model(name).network.forward(x)))
    set_backend(None)
    assert tuned == reference, (
        f"{name}: tuned backend changed the predicted label "
        f"({tuned} != {reference})"
    )
    print(f"ok: {name} top-1 label {reference} identical under both backends")
PY
echo "ok: reference baseline byte-identical; tuned preserves every label"

echo "== 10/11 model store: cold vs warm fleet determinism"
# Same-seed cold-fleet and warm-fleet (pre-warmed store) scenarios, each
# run twice, must emit byte-identical reports — the segment-level
# handshake, LRU bookkeeping, and presend accounting all replay on the
# virtual clock.  The warm report must show zero upload bytes where the
# cold one pays for every edge.
python -m repro fleet --sessions 10 --requests 2 --seed 5 \
    --out "$out_dir/fleet-cold-a.md" > /dev/null
python -m repro fleet --sessions 10 --requests 2 --seed 5 \
    --out "$out_dir/fleet-cold-b.md" > /dev/null
cmp "$out_dir/fleet-cold-a.md" "$out_dir/fleet-cold-b.md" || {
    echo "FAIL: cold-fleet reports diverge across same-seed reruns" >&2
    exit 1; }
python -m repro fleet --sessions 10 --requests 2 --seed 5 --prewarm \
    --out "$out_dir/fleet-warm-a.md" > /dev/null
python -m repro fleet --sessions 10 --requests 2 --seed 5 --prewarm \
    --out "$out_dir/fleet-warm-b.md" > /dev/null
cmp "$out_dir/fleet-warm-a.md" "$out_dir/fleet-warm-b.md" || {
    echo "FAIL: warm-fleet reports diverge across same-seed reruns" >&2
    exit 1; }
grep -q "model upload: 0 B on the wire" "$out_dir/fleet-warm-a.md" || {
    echo "FAIL: pre-warmed fleet still paid upload bytes" >&2; exit 1; }
grep -q "model upload: 0 B on the wire" "$out_dir/fleet-cold-a.md" && {
    echo "FAIL: cold fleet reports zero upload bytes" >&2; exit 1; }
echo "ok: cold and warm fleet reports byte-identical; warm uploads nothing"

echo "== 11/11 multi-exit: accuracy-vs-deadline sweep determinism"
# The joint (split, exit) sweep is analytic over deterministically
# seeded predictor fits: the same seed must render the same bytes, and
# the CLI exits non-zero if any accuracy-scaling claim is violated
# (exit moving later as the deadline tightens, a generous deadline not
# picking the full network, a "feasible" choice missing its deadline).
python -m repro fig-accuracy --models smallnet_exits \
    > "$out_dir/fig-accuracy-a.txt"
python -m repro fig-accuracy --models smallnet_exits \
    > "$out_dir/fig-accuracy-b.txt"
cmp "$out_dir/fig-accuracy-a.txt" "$out_dir/fig-accuracy-b.txt" || {
    echo "FAIL: fig-accuracy diverges across same-seed reruns" >&2; exit 1; }
echo "ok: accuracy-vs-deadline sweep byte-identical across reruns"

echo "smoke ok — artifacts in $out_dir"
