"""Microbenchmarks of the hot paths (real wall time, multiple rounds).

Unlike the figure benchmarks (one-shot end-to-end simulations), these use
pytest-benchmark's statistical timing on the operations the system does
constantly: snapshot capture/restore, tensor text serialization, conv
forward passes, the partition solver and the DES kernel.
"""

import numpy as np

from repro.core.partition import PartitionOptimizer
from repro.core.snapshot import capture_snapshot, restore_snapshot
from repro.core.snapshot.codegen import parse_tensor_text, render_tensor_text
from repro.devices import edge_server_x86, odroid_xu4_client
from repro.devices.predictor import fit_predictor_for
from repro.netsim import NetemProfile
from repro.nn.cost import network_costs
from repro.nn.zoo import smallnet
from repro.sim import SeededRng, Simulator
from repro.web import WebRuntime
from repro.web.app import make_inference_app
from repro.web.events import Event
from repro.web.values import TypedArray


def _loaded_runtime():
    model = smallnet()
    runtime = WebRuntime("bench")
    runtime.load_app(make_inference_app(model))
    runtime.globals["pending_pixels"] = TypedArray(
        SeededRng(1, "px").uniform_array((3, 32, 32), 0, 255)
    )
    runtime.dispatch("click", "load_btn")
    return model, runtime


def test_micro_snapshot_capture(benchmark):
    _model, runtime = _loaded_runtime()
    event = Event("click", "infer_btn")
    snapshot = benchmark(lambda: capture_snapshot(runtime, event))
    assert snapshot.size_bytes > 0


def test_micro_snapshot_restore(benchmark):
    model, runtime = _loaded_runtime()
    snapshot = capture_snapshot(runtime, Event("click", "infer_btn"))

    def restore():
        server = WebRuntime("server")
        server.install_model(model)
        return restore_snapshot(snapshot, server)

    report = benchmark(restore)
    assert report.pending_event is not None


def test_micro_tensor_text_render(benchmark):
    values = SeededRng(2, "t").normal_array((50_000,))
    text = benchmark(lambda: render_tensor_text(values))
    assert len(text) > 500_000


def test_micro_tensor_text_parse(benchmark):
    values = SeededRng(3, "t").normal_array((50_000,))
    text = render_tensor_text(values)
    parsed = benchmark(lambda: parse_tensor_text(text, (50_000,)))
    assert np.array_equal(parsed, values)


def test_micro_smallnet_forward(benchmark):
    model = smallnet()
    image = SeededRng(4, "img").uniform_array((3, 32, 32), 0, 255)
    probs = benchmark(lambda: model.inference(image))
    assert probs.shape == (10,)


def test_micro_conv_layer_forward(benchmark):
    from repro.nn.layers import ConvLayer

    layer = ConvLayer("c", 32, kernel=3, pad=1)
    layer.build((16, 32, 32), SeededRng(5, "c"))
    x = SeededRng(6, "x").normal_array((16, 32, 32))
    out = benchmark(lambda: layer.forward(x))
    assert out.shape == (32, 32, 32)


def test_micro_partition_solver(benchmark):
    network = smallnet().network
    costs = network_costs(network)
    optimizer = PartitionOptimizer(
        fit_predictor_for(odroid_xu4_client(), costs, noise=0.0),
        fit_predictor_for(edge_server_x86(), costs, noise=0.0),
        odroid_xu4_client(),
        edge_server_x86(),
    )
    link = NetemProfile.wifi_30mbps()
    choice = benchmark(lambda: optimizer.choose(network, link))
    assert choice.best.total_seconds > 0


def test_micro_des_kernel_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]
        for i in range(10_000):
            sim.schedule(i * 0.001, lambda: count.__setitem__(0, count[0] + 1))
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000
