"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not in the paper's figures, but each one probes an assumption the paper
relies on (or a forward-looking remark it makes):

* bandwidth sweep — offloading's win depends on the 30 Mbps link;
* partition adaptivity — the optimizer reacts to network status;
* decision policy — §IV.A's "execute locally while uploading" advice;
* snapshot optimizations — live-state elimination and data-URL images;
* GPU edge server — the "~80x with WebGL" outlook;
* energy — offloading saves client energy, the classic motivation.
"""

import pytest

from repro.eval.ablations import (
    bandwidth_sweep,
    decision_study,
    energy_study,
    gpu_server_study,
    partition_adaptivity,
    session_cache_study,
    snapshot_optimization_study,
)
from repro.eval.reporting import format_table


def test_ablation_bandwidth_sweep(benchmark, archive):
    points = benchmark.pedantic(
        lambda: bandwidth_sweep("googlenet", (1, 2, 4, 8, 15, 30, 60, 120)),
        rounds=1,
        iterations=1,
    )
    archive(
        "ablation_bandwidth",
        format_table(
            ["Mbps", "offload s", "client s", "offload wins"],
            [
                [p.bandwidth_mbps, p.offload_seconds, p.client_seconds, str(p.offload_wins)]
                for p in points
            ],
            title="Ablation — offloading vs bandwidth (GoogLeNet)",
        ),
    )
    # Offloading loses on a ~1 Mbps link and wins from a few Mbps up.
    assert not points[0].offload_wins
    assert all(p.offload_wins for p in points if p.bandwidth_mbps >= 8)
    # Monotone: more bandwidth never hurts.
    times = [p.offload_seconds for p in points]
    assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))


def test_ablation_partition_adaptivity(benchmark, archive):
    choices = benchmark.pedantic(
        lambda: partition_adaptivity("googlenet", (1, 4, 30, 120)),
        rounds=1,
        iterations=1,
    )
    archive(
        "ablation_partition_adaptivity",
        format_table(
            ["Mbps", "chosen point"],
            [[mbps, label] for mbps, label in choices.items()],
            title="Ablation — optimizer's offload point vs bandwidth (GoogLeNet)",
        ),
    )
    # At 30 Mbps the optimizer picks the paper's 1st_pool; on a much slower
    # link it moves the split at least as deep (never shallower).
    assert choices[30] == "1st_pool"
    from repro.eval.scenarios import build_paper_model

    network = build_paper_model("googlenet").network
    depth = {label: network.point_by_label(label).index for label in set(choices.values())}
    assert depth[choices[1]] >= depth[choices[30]]
    assert depth[choices[120]] <= depth[choices[4]]


def test_ablation_decision_policy(benchmark, archive):
    outcomes = benchmark.pedantic(decision_study, rounds=1, iterations=1)
    archive(
        "ablation_decision_policy",
        format_table(
            ["model", "policy", "measured best", "local s", "offload s"],
            [
                [
                    o.model,
                    o.decision.action,
                    o.measured_best,
                    o.measured_local_seconds,
                    o.measured_offload_seconds,
                ]
                for o in outcomes
            ],
            title="Ablation — before-ACK decision policy vs ground truth",
        ),
    )
    for outcome in outcomes:
        assert outcome.policy_agrees, outcome.model
    by_model = {o.model: o for o in outcomes}
    # The paper's §IV.A pattern: offload GoogLeNet, run AgeNet locally.
    assert by_model["googlenet"].decision.action == "offload"
    assert by_model["agenet"].decision.action == "local"


def test_ablation_snapshot_optimizations(benchmark, archive):
    sizes = benchmark.pedantic(
        lambda: snapshot_optimization_study("googlenet"), rounds=1, iterations=1
    )
    archive(
        "ablation_snapshot_optimizations",
        format_table(
            ["capture policy", "snapshot MB"],
            [
                ["conservative (all state)", sizes.conservative_bytes / 1e6],
                ["live-state elimination", sizes.live_only_bytes / 1e6],
                ["live + data-URL image", sizes.data_url_bytes / 1e6],
            ],
            title="Ablation — snapshot size under capture policies (GoogLeNet)",
        ),
    )
    assert sizes.live_only_bytes < sizes.conservative_bytes
    assert sizes.live_state_saving > 0.3
    assert sizes.data_url_bytes < 0.2 * sizes.live_only_bytes


def test_ablation_gpu_server(benchmark, archive):
    study = benchmark.pedantic(gpu_server_study, rounds=1, iterations=1)
    archive(
        "ablation_gpu_server",
        format_table(
            ["configuration", "seconds"],
            [
                ["offload to CPU server", study.cpu_offload_seconds],
                ["offload to 80x GPU server", study.gpu_offload_seconds],
                ["GPU server DNN exec only", study.gpu_server_exec_seconds],
            ],
            title="Ablation — WebGL-class (80x) edge server (GoogLeNet)",
        ),
    )
    assert study.gpu_offload_seconds < 0.5 * study.cpu_offload_seconds
    # With an 80x server the DNN itself is nearly free...
    assert study.gpu_server_exec_seconds < 0.2
    # ...so migration (transfer) now dominates the remaining time.
    assert study.gpu_offload_seconds > 5 * study.gpu_server_exec_seconds


def test_ablation_session_cache(benchmark, archive):
    """The paper's §VI future work: reuse state left at the server."""
    study = benchmark.pedantic(
        lambda: session_cache_study("googlenet"), rounds=1, iterations=1
    )
    archive(
        "ablation_session_cache",
        format_table(
            ["configuration", "value"],
            [
                ["first offload (s)", study.first_offload_seconds],
                ["repeat, full snapshot (s)", study.repeat_without_cache_seconds],
                ["repeat, delta snapshot (s)", study.repeat_with_cache_seconds],
                ["full snapshot (MB)", study.full_snapshot_bytes / 1e6],
                ["delta snapshot (MB)", study.delta_snapshot_bytes / 1e6],
            ],
            title="Ablation — session cache: repeat offloading (GoogLeNet)",
        ),
    )
    # The repeat delta removes nearly the whole snapshot payload...
    assert study.bytes_saving > 0.95
    # ...and the repeat offload gets faster end to end.
    assert study.repeat_with_cache_seconds < study.repeat_without_cache_seconds


def test_ablation_feature_quantization(benchmark, archive):
    """Quantize the transmitted feature; measure REAL accuracy impact."""
    from repro.eval.ablations import quantization_study

    impacts = benchmark.pedantic(
        lambda: quantization_study("agenet", num_inputs=10), rounds=1, iterations=1
    )
    archive(
        "ablation_feature_quantization",
        format_table(
            ["bits", "label agreement", "feature bytes", "vs text"],
            [
                [
                    impact.bits,
                    impact.agreement,
                    impact.quantized_bytes,
                    f"-{impact.size_reduction:.0%}",
                ]
                for impact in impacts
            ],
            title="Ablation — feature quantization at 1st_pool (AgeNet)",
        ),
    )
    by_bits = {impact.bits: impact for impact in impacts}
    # 8-bit quantization is accuracy-free and removes >90% of the bytes.
    assert by_bits[8].agreement == 1.0
    assert by_bits[8].size_reduction > 0.9
    # Fewer bits never increases size; agreement degrades monotonically-ish.
    sizes = [impact.quantized_bytes for impact in impacts]
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))


def test_ablation_multi_client_contention(benchmark, archive):
    """Shared edge server under synchronized client bursts."""
    from repro.eval.workloads import contention_study

    reports = benchmark.pedantic(
        lambda: contention_study("smallnet", (1, 2, 4, 8)), rounds=1, iterations=1
    )
    archive(
        "ablation_multi_client",
        format_table(
            ["clients", "mean latency s", "max latency s", "all correct"],
            [
                [count, report.mean_latency, report.max_latency, str(report.all_correct)]
                for count, report in reports.items()
            ],
            title="Ablation — FIFO queueing on a shared edge server (smallnet)",
        ),
    )
    latencies = [report.mean_latency for report in reports.values()]
    # More clients, more queueing — never less.
    assert all(b >= a - 1e-9 for a, b in zip(latencies, latencies[1:]))
    assert reports[8].mean_latency > 1.2 * reports[1].mean_latency
    assert all(report.all_correct for report in reports.values())


def test_ablation_predictor_features(benchmark, archive):
    """Flops-only vs multivariate latency prediction (grid-profiled)."""
    from repro.eval.ablations import predictor_feature_study

    rows = benchmark.pedantic(predictor_feature_study, rounds=1, iterations=1)
    archive(
        "ablation_predictor_features",
        format_table(
            ["device", "flops-only rel err", "multivariate rel err"],
            [
                [row.device, row.flops_only_error, row.multivariate_error]
                for row in rows
            ],
            title="Ablation — latency predictor feature sets",
        ),
    )
    by_device = {row.device: row for row in rows}
    # The paper's compute-bound client: one feature is enough.
    client = by_device["odroid-xu4"]
    assert client.flops_only_error < 0.1
    # A memory-bound device: the output-size feature is essential.
    bound = by_device["memory-bound-accelerator"]
    assert bound.multivariate_error < 0.1
    assert bound.flops_only_error > 3 * bound.multivariate_error


def test_ablation_video_streaming(benchmark, archive):
    """Continuous per-frame offloading (the paper's §I video workload)."""
    from repro.eval.streaming import run_stream

    def study():
        return {
            "client": run_stream("agenet", frames=4, fps=1.0, mode="client"),
            "offload": run_stream("agenet", frames=4, fps=1.0, mode="offload"),
            "offload+gpu": run_stream(
                "agenet", frames=4, fps=1.0, mode="offload", server_speedup=80.0
            ),
        }

    reports = benchmark.pedantic(study, rounds=1, iterations=1)
    archive(
        "ablation_video_streaming",
        format_table(
            ["mode", "achieved fps", "mean latency s", "keeps up @1fps", "correct"],
            [
                [
                    mode,
                    report.achieved_fps,
                    report.mean_latency,
                    str(report.keeps_up),
                    str(report.all_correct),
                ]
                for mode, report in reports.items()
            ],
            title="Ablation — streaming video, AgeNet per frame",
        ),
    )
    # Offloading multiplies throughput ~8x over the client...
    assert reports["offload"].achieved_fps > 5 * reports["client"].achieved_fps
    # ...and a GPU edge server sustains the source rate.
    assert reports["offload+gpu"].keeps_up
    assert all(report.all_correct for report in reports.values())


def test_ablation_edge_vs_cloud(benchmark, archive):
    """Nearby edge server vs datacenter cloud (the paper's motivation)."""
    from repro.eval.ablations import edge_vs_cloud_study

    rows = benchmark.pedantic(
        lambda: edge_vs_cloud_study("googlenet"), rounds=1, iterations=1
    )
    archive(
        "ablation_edge_vs_cloud",
        format_table(
            ["location", "Mbps", "latency ms", "total s", "migration s", "exec s"],
            [
                [
                    row.location,
                    row.bandwidth_mbps,
                    row.one_way_latency_ms,
                    row.total_seconds,
                    row.migration_seconds,
                    row.server_exec_seconds,
                ]
                for row in rows
            ],
            title="Ablation — server placement (GoogLeNet, offload after ACK)",
        ),
    )
    by_location = {row.location: row for row in rows}
    # Same hardware: the nearby edge server wins (the paper's premise)...
    assert by_location["edge"].total_seconds < by_location["cloud"].total_seconds
    # ...and migration cost is strictly lower at the edge.
    assert (
        by_location["edge"].migration_seconds
        < by_location["cloud"].migration_seconds
    )
    # Only an accelerator makes the far datacenter competitive.
    assert (
        by_location["cloud-gpu"].total_seconds < by_location["edge"].total_seconds
    )


def test_ablation_quantized_codec_partitioning(benchmark, archive):
    """An 8-bit feature codec changes what the partition optimizer picks."""
    from repro.eval.ablations import codec_partition_study

    studies = benchmark.pedantic(
        lambda: [
            codec_partition_study(bandwidth_mbps=mbps) for mbps in (1.0, 4.0, 30.0)
        ],
        rounds=1,
        iterations=1,
    )
    archive(
        "ablation_codec_partitioning",
        format_table(
            ["Mbps", "text codec point", "text s", "8-bit point", "8-bit s"],
            [
                [
                    s.bandwidth_mbps,
                    s.text_point,
                    s.text_predicted_seconds,
                    s.quantized_point,
                    s.quantized_predicted_seconds,
                ]
                for s in studies
            ],
            title="Ablation — feature codec vs partition choice (GoogLeNet)",
        ),
    )
    assert all(s.quantization_helps for s in studies)
    # On the slow link, cheap transfer lets the split move back toward the
    # client-friendly shallow point.
    slow = studies[0]
    assert slow.text_point != slow.quantized_point
    assert slow.quantized_predicted_seconds < 0.5 * slow.text_predicted_seconds


def test_ablation_baseline_comparison(benchmark, archive):
    """Snapshot offloading vs the §V comparator approaches."""
    from repro.eval.ablations import baseline_comparison_study

    rows = benchmark.pedantic(
        lambda: baseline_comparison_study("googlenet"), rounds=1, iterations=1
    )
    archive(
        "ablation_baseline_comparison",
        format_table(
            ["approach", "first use s", "steady state s", "any app", "handover"],
            [
                [
                    row.approach,
                    row.first_use_seconds,
                    row.steady_state_seconds,
                    str(row.any_app),
                    str(row.stateless_handover),
                ]
                for row in rows
            ],
            title="Ablation — offloading approaches compared (GoogLeNet)",
        ),
    )
    by_approach = {row.approach: row for row in rows}
    snapshot = by_approach["snapshot offloading"]
    specialized = by_approach["specialized service"]
    # Generality costs <25% at steady state vs a purpose-built service.
    assert snapshot.steady_state_seconds < 1.25 * specialized.steady_state_seconds
    assert snapshot.any_app and snapshot.stateless_handover


def test_ablation_network_variability(benchmark, archive):
    """Adaptive vs fixed partitioning over a fading Wi-Fi trace."""
    from repro.eval.ablations import variability_study

    study = benchmark.pedantic(
        lambda: variability_study(seed=3), rounds=1, iterations=1
    )
    archive(
        "ablation_network_variability",
        format_table(
            ["request", "Mbps", "adaptive point"],
            [
                [index, mbps, point]
                for index, (mbps, point) in enumerate(
                    zip(study.bandwidths_mbps, study.adaptive_points)
                )
            ],
            title=(
                "Ablation — adaptive partitioning under a fading link "
                f"(fixed {study.fixed_total_seconds:.1f}s vs adaptive "
                f"{study.adaptive_total_seconds:.1f}s)"
            ),
        ),
    )
    assert study.adaptive_wins
    # During the deep fades the optimizer must move the split deeper.
    faded_points = {
        point
        for mbps, point in zip(study.bandwidths_mbps, study.adaptive_points)
        if mbps < 2.0
    }
    assert faded_points and faded_points != {"1st_pool"}
    # It never violates the denaturing constraint.
    assert "input" not in study.adaptive_points


def test_ablation_model_size_scaling(benchmark, archive):
    """Pre-sending economics from 27 MB (GoogLeNet) to 233 MB (AlexNet)."""
    from repro.eval.ablations import model_size_scaling_study

    points = benchmark.pedantic(model_size_scaling_study, rounds=1, iterations=1)
    archive(
        "ablation_model_size_scaling",
        format_table(
            ["model", "model MB", "presend s", "client s", "before-ACK s", "policy"],
            [
                [
                    p.model,
                    p.model_mb,
                    p.presend_seconds,
                    p.client_seconds,
                    p.before_ack_seconds,
                    p.policy_action,
                ]
                for p in points
            ],
            title="Ablation — model size vs pre-sending economics",
        ),
    )
    by_model = {p.model: p for p in points}
    # Bigger model, longer pre-send.
    assert (
        by_model["googlenet"].presend_seconds
        < by_model["agenet"].presend_seconds
        < by_model["alexnet"].presend_seconds
    )
    # AlexNet's 233 MB makes before-ACK offloading hopeless and the policy
    # must say "local"; GoogLeNet's 27 MB still pays off.
    assert by_model["alexnet"].policy_action == "local"
    assert not by_model["alexnet"].before_ack_pays_off
    assert by_model["googlenet"].policy_action == "offload"
    assert by_model["googlenet"].before_ack_pays_off


def test_ablation_energy(benchmark, archive):
    study = benchmark.pedantic(energy_study, rounds=1, iterations=1)
    archive(
        "ablation_energy",
        format_table(
            ["configuration", "client energy (J)"],
            [
                ["local execution", study.local_joules],
                ["offload after ACK", study.offload_joules],
            ],
            title="Ablation — client energy (GoogLeNet)",
        ),
    )
    assert study.offload_saves_energy
    assert study.offload_joules < 0.2 * study.local_joules
