#!/usr/bin/env python
"""Campaign wall-clock benchmark: serial vs parallel vs result-cached.

Runs the same reproduction campaign four ways —

1. serial, no cache           (the baseline everything is measured against)
2. ``--jobs N`` process pool  (N defaults to the machine's core count)
3. serial into a cold cache   (baseline + cache-write overhead)
4. serial against a warm cache (every section served from disk)

— verifies the four reports are byte-identical, then times compiled
execution plans against the reference layer walk (single-image GoogLeNet
and batched smallnet forwards), compares the DAG scheduler's
interval-colored arena against the retired two-slot allocator (the
``dag_forward`` stage, baselined on the previous ``BENCH_perf.json``),
measures cross-process plan rehydration against compile-from-scratch
(the ``plan_cache`` stage: fresh interpreters with ``REPRO_PLAN_CACHE``
pointing at cold vs pre-warmed directories),
runs the multi-edge fleet scheduler shoot-out and a mid-run edge kill
(the ``fleet`` stage: virtual-time p50/p99 per policy on a skewed fleet),
compares continuous-batching against sequential per-request serving under
rising offered load (the ``serving`` stage: requests/sec and the p99 knee,
plus bitwise result equality and kill-replay determinism),
races the tuned kernel backend against the reference one and measures the
int8 feature codec's split-point shift vs bandwidth (the ``backend``
stage),
and writes the timings, speedups, cache statistics, an ``environment``
block (backend, BLAS, thread budget) and claim verdicts to
``BENCH_perf.json`` at the repo root.
Claims that cannot be tested on this machine (the parallel speedup on a
single-CPU container) are recorded as skipped with a reason rather than
failed.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--full] [--jobs N]

``--quick`` mode (the default) is the CI-sized campaign (one model,
truncated sweeps); ``--full`` runs all three paper models.  Note the
parallel speedup is bounded by the machine: on a single-core container
the process pool only adds overhead, which the JSON records honestly
(``cpu_count`` is part of the output).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.eval.campaign import run_campaign  # noqa: E402


def _timed_campaign(label: str, **kwargs):
    """One campaign run; returns (wall_seconds, result)."""
    print(f"-- {label} ...", flush=True)
    started = time.perf_counter()
    result = run_campaign(**kwargs)
    wall = time.perf_counter() - started
    stats = result.engine_stats
    print(
        f"   {wall:6.2f}s wall  (jobs={stats.jobs}, "
        f"{stats.cache_hits}/{len(stats.tasks)} cached, "
        f"compute {stats.compute_seconds:.2f}s)",
        flush=True,
    )
    return wall, result


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _best_of(fn, repetitions=5):
    times = []
    for _ in range(repetitions):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def _bench_optimized_forward():
    """Compiled-plan vs reference forwards, single image and batched.

    GoogLeNet carries the single-image claim (the paper's headline model,
    forward-dominated); the batched-throughput claim is measured on
    smallnet, the size class the edge server actually batches (large
    convolutions are GEMM-bound either way, so batching buys nothing
    there — see docs/PERFORMANCE.md).
    """
    from repro.nn.zoo import build_model
    from repro.sim import SeededRng

    print("-- optimized forward (googlenet single, smallnet batch) ...",
          flush=True)
    google = build_model("googlenet")
    image = SeededRng(7, "bench/googlenet").uniform_array(
        tuple(google.network.input_shape), 0, 255
    )
    plan = google.network.plan_for()
    plan.forward(image)  # warm the plan arena + conv operand caches
    google.network.forward(image, optimize=False)  # warm reference caches
    reference_s = _best_of(
        lambda: google.network.forward(image, optimize=False)
    )
    optimized_s = _best_of(lambda: plan.forward(image))

    small = build_model("smallnet")
    batch = [
        SeededRng(seed, "bench/batch").uniform_array(
            tuple(small.network.input_shape), 0, 255
        )
        for seed in range(8)
    ]
    small_plan = small.network.plan_for()
    small_plan.forward(batch[0])
    small_plan.forward_batch(batch)
    looped_s = _best_of(
        lambda: [small_plan.forward(sample) for sample in batch],
        repetitions=20,
    )
    batched_s = _best_of(
        lambda: small_plan.forward_batch(batch), repetitions=20
    )
    result = {
        "googlenet_reference_ms": round(reference_s * 1000, 3),
        "googlenet_optimized_ms": round(optimized_s * 1000, 3),
        "googlenet_speedup": round(reference_s / optimized_s, 3),
        "batch_model": "smallnet",
        "batch_size": len(batch),
        "batch_looped_ms": round(looped_s * 1000, 3),
        "batch_batched_ms": round(batched_s * 1000, 3),
        "batch_per_image_speedup": round(looped_s / batched_s, 3),
    }
    print(
        f"   googlenet {result['googlenet_speedup']:.2f}x single-image, "
        f"smallnet batch-8 {result['batch_per_image_speedup']:.2f}x "
        "per-image",
        flush=True,
    )
    return result


#: googlenet arena footprint under the PR 3 two-slot + sub-arena scheme.
#: Deterministic (computed from layer shapes alone, not timing), so it is
#: a valid cross-PR constant even though the old allocator is gone.
TWO_SLOT_GOOGLENET_ARENA_BYTES = 22_453_760


def _bench_dag_forward(forward, prior_path):
    """GoogLeNet forward under the DAG scheduler vs the old two-slot arena.

    The interval-colored measurement is the ``optimized_forward`` stage's
    googlenet number from *this* run; the two-slot baseline is the same
    field read from the previous ``BENCH_perf.json`` (produced by the PR 3
    allocator on this machine).  If no prior file exists the timing claim
    is skipped with the reason recorded; the arena-size comparison is
    deterministic and always runs.
    """
    from repro.nn.zoo import build_model

    print("-- dag forward (interval-colored arena vs two-slot baseline) ...",
          flush=True)
    prior_ms = None
    try:
        with open(prior_path, "r", encoding="utf-8") as handle:
            prior = json.load(handle)
        prior_ms = prior["stages"]["optimized_forward"][
            "googlenet_optimized_ms"
        ]
    except (OSError, KeyError, ValueError):
        pass
    stats = build_model("googlenet").network.plan_for().stats
    dag_ms = forward["googlenet_optimized_ms"]
    result = {
        "googlenet_dag_ms": dag_ms,
        "two_slot_baseline_ms": prior_ms,
        "baseline_source": (
            "stages.optimized_forward.googlenet_optimized_ms from the "
            "previous BENCH_perf.json (PR 3 two-slot arena, same machine)"
            if prior_ms is not None
            else None
        ),
        "speedup_vs_two_slot": (
            round(prior_ms / dag_ms, 3) if prior_ms else None
        ),
        "arena_slots": stats.arena_slots,
        "arena_bytes": stats.arena_bytes,
        "two_slot_arena_bytes": TWO_SLOT_GOOGLENET_ARENA_BYTES,
        "arena_shrink": round(
            TWO_SLOT_GOOGLENET_ARENA_BYTES / stats.arena_bytes, 3
        ),
        "branches": stats.branches,
        "joins": stats.joins,
    }
    baseline_note = (
        f"two-slot {prior_ms:.1f}ms -> dag {dag_ms:.1f}ms"
        if prior_ms is not None
        else f"dag {dag_ms:.1f}ms (no two-slot baseline on disk)"
    )
    print(
        f"   {baseline_note}, arena {stats.arena_bytes / 1e6:.1f}MB in "
        f"{stats.arena_slots} slots ({result['arena_shrink']:.1f}x smaller)",
        flush=True,
    )
    return result


#: Worker for the plan_cache stage.  Each run is a *fresh interpreter* —
#: the point is the cold-start cost a pool worker pays for its first plan,
#: and that cannot be measured in a process whose caches are already warm.
PLAN_CACHE_WORKER = """\
import hashlib
import json
import sys
import time

sys.path.insert(0, sys.argv[1])
from repro.exec import cache as exec_cache
from repro.nn.zoo import build_model
from repro.sim import SeededRng

network = build_model(sys.argv[2]).network
started = time.perf_counter()
plan = network.plan_for()
plan_seconds = time.perf_counter() - started
x = SeededRng(7, "bench/plancache").uniform_array(
    tuple(network.input_shape), 0, 255
)
stats = exec_cache.plan_cache_stats()
print(json.dumps({
    "plan_seconds": plan_seconds,
    "sha": hashlib.sha256(plan.forward(x).tobytes()).hexdigest(),
    "hits": stats.hits,
    "misses": stats.misses,
}))
"""


def _bench_plan_cache(model="googlenet", repetitions=5):
    """Cross-process plan rehydration vs compile-from-scratch.

    Cold runs get a fresh ``REPRO_PLAN_CACHE`` directory each (compile,
    store); warm runs share one directory primed by a separate process
    (load, rebind).  The params digest — the expensive part of the cache
    key — is primed at ``build_model`` time in both processes, so the
    timed ``plan_for()`` window isolates compile+store vs load+rehydrate
    and warm runs are strictly faster than cold ones (see
    docs/PERFORMANCE.md; minima over repetitions to shed scheduler noise).
    """
    print("-- plan cache (cross-process rehydrate vs compile) ...", flush=True)

    def run(cache_dir):
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                PLAN_CACHE_WORKER,
                os.path.join(REPO_ROOT, "src"),
                model,
            ],
            env=dict(os.environ, REPRO_PLAN_CACHE=cache_dir),
            capture_output=True,
            text=True,
            check=True,
        )
        return json.loads(proc.stdout)

    cold_runs = []
    for _ in range(repetitions):
        with tempfile.TemporaryDirectory(prefix="bench-plan-cold-") as cold_dir:
            cold_runs.append(run(cold_dir))
    with tempfile.TemporaryDirectory(prefix="bench-plan-warm-") as warm_dir:
        prime = run(warm_dir)
        warm_runs = [run(warm_dir) for _ in range(repetitions)]
        from repro.exec.cache import PlanCache

        entries = PlanCache(warm_dir).stats()["entries"]
    cold_s = min(r["plan_seconds"] for r in cold_runs)
    warm_s = min(r["plan_seconds"] for r in warm_runs)
    shas = {r["sha"] for r in cold_runs + warm_runs + [prime]}
    result = {
        "model": model,
        "repetitions": repetitions,
        "cold_plan_ms": round(cold_s * 1000, 3),
        "warm_plan_ms": round(warm_s * 1000, 3),
        "warm_speedup": round(cold_s / warm_s, 3),
        "cold_hits_misses": [cold_runs[0]["hits"], cold_runs[0]["misses"]],
        "warm_hits_misses": [warm_runs[0]["hits"], warm_runs[0]["misses"]],
        "entries": entries,
        "forward_sha_identical": len(shas) == 1,
    }
    print(
        f"   cold {result['cold_plan_ms']:.1f}ms -> "
        f"warm {result['warm_plan_ms']:.1f}ms "
        f"({result['warm_speedup']:.2f}x), "
        f"forwards identical: {result['forward_sha_identical']}",
        flush=True,
    )
    return result


def _fleet_specs():
    """A deliberately skewed fleet: device speed AND link quality spread."""
    from repro.fleet import EdgeSpec
    from repro.netsim import NetemProfile

    return [
        EdgeSpec(
            "edge-fast", server_speedup=1.0, profile=NetemProfile.lan_1gbps()
        ),
        EdgeSpec(
            "edge-mid",
            server_speedup=0.7,
            profile=NetemProfile(bandwidth_bps=30e6, latency_s=0.005),
        ),
        EdgeSpec(
            "edge-slow",
            server_speedup=0.4,
            profile=NetemProfile(bandwidth_bps=8e6, latency_s=0.02),
        ),
    ]


def _bench_fleet(sessions=400, requests=2, rate=25.0, seed=0):
    """Fleet scheduling policies + mid-run edge kill, in virtual time.

    Latencies here are *virtual* seconds (deterministic: same seed, same
    numbers on any machine); only the wall-clock cost of simulating them
    varies.  Two questions:

    (a) under skewed edge profiles, do the load-aware policies
        (min-response-time, queue-aware) beat the load-oblivious baselines
        (round-robin, random) on p99 latency?
    (b) does killing the *fastest* edge mid-run complete every session
        with p99 degradation bounded by one reply timeout + a re-run?
    """
    from repro.fleet import FleetScenario, compare_policies

    print("-- fleet (4 policies x skewed edges, then a mid-run kill) ...",
          flush=True)
    workload = dict(
        sessions=sessions,
        requests_per_session=requests,
        arrival_rate_per_s=rate,
        seed=seed,
        reply_timeout=1.0,
    )
    reports = compare_policies(edges=_fleet_specs(), **workload)
    policies = {
        name: {
            "p50_ms": round(r.p50_latency * 1e3, 3),
            "p99_ms": round(r.p99_latency * 1e3, 3),
            "mean_ms": round(r.mean_latency * 1e3, 3),
            "requests": r.count,
            "all_correct": r.all_correct,
            "admission_waits": r.admission_waits,
            "utilization": {
                row.name: round(row.utilization, 4) for row in r.edges
            },
        }
        for name, r in reports.items()
    }
    for name, row in policies.items():
        print(
            f"   {name:18s} p50 {row['p50_ms']:7.1f}ms  "
            f"p99 {row['p99_ms']:7.1f}ms  mean {row['mean_ms']:7.1f}ms",
            flush=True,
        )

    healthy = reports["queue-aware"]
    killed_scenario = FleetScenario(
        edges=_fleet_specs(), policy="queue-aware", **workload
    )
    killed_scenario.inject_kill(
        "edge-fast", healthy.makespan_seconds / 3
    )
    killed = killed_scenario.run()
    expected = sessions * requests
    degradation_bound_s = killed_scenario.reply_timeout + 2 * max(
        r.latency_seconds for r in healthy.records
    )
    print(
        f"   kill edge-fast @ {healthy.makespan_seconds / 3:.2f}s: "
        f"{killed.count}/{expected} served, {killed.failovers} failovers, "
        f"p99 {killed.p99_latency * 1e3:.1f}ms "
        f"(healthy {healthy.p99_latency * 1e3:.1f}ms)",
        flush=True,
    )
    return {
        "sessions": sessions,
        "requests_per_session": requests,
        "arrival_rate_per_s": rate,
        "seed": seed,
        "policies": policies,
        "kill": {
            "edge": "edge-fast",
            "at_seconds": round(healthy.makespan_seconds / 3, 6),
            "served": killed.count,
            "expected": expected,
            "all_correct": killed.all_correct,
            "failovers": killed.failovers,
            "handshake_misses": killed.handshake_misses,
            "p99_ms": round(killed.p99_latency * 1e3, 3),
            "healthy_p99_ms": round(healthy.p99_latency * 1e3, 3),
            "degradation_bound_ms": round(degradation_bound_s * 1e3, 3),
        },
    }


def _bench_serving(sessions=32, requests=2, seed=7):
    """Continuous batching vs sequential serving under rising offered load.

    Virtual-time again, so every number is deterministic.  The workload is
    resnet-mini at split 0 — the rear-heavy partition where the server's
    batched forward dominates its device time — on a single edge, so the
    server (not routing) is the bottleneck.  Three questions:

    (a) requests/sec vs offered load: where is the p99 knee, and does the
        batching loop push it out (higher throughput at saturation)?
    (b) are the batched results bitwise-identical to sequential serving at
        *every* load point (labels, scores, snapshot kinds)?
    (c) does a same-seed serving run — including one with a mid-run edge
        kill and revival — replay byte-for-byte?
    """
    from repro.fleet import EdgeSpec, FleetScenario
    from repro.serve import ServingConfig

    print("-- serving (continuous batching vs sequential, rising load) ...",
          flush=True)

    def run(rate, serving, *, edges=1, kill=None):
        scenario = FleetScenario(
            model_name="resnet-mini",
            edges=[EdgeSpec(name=f"edge-{i}") for i in range(edges)],
            policy="queue-aware",
            sessions=sessions,
            requests_per_session=requests,
            arrival_rate_per_s=rate,
            mean_think_seconds=0.05,
            mode="offload-partial",
            split_index=0,
            seed=seed,
            reply_timeout=120.0,
            serving=serving,
        )
        if kill is not None:
            name, at, revive = kill
            scenario.inject_kill(name, at, revive_at_seconds=revive)
        return scenario.run()

    config = ServingConfig(max_batch=8, batch_timeout_s=0.02)

    def result_key(record):
        return (
            record.session, record.request_index, record.result_label,
            record.expected_label, record.result_score,
            record.snapshot_kind,
        )

    sweep = {}
    bitwise_equal = True
    for rate in (8.0, 24.0, 64.0):
        seq = run(rate, None)
        bat = run(rate, config)
        equal = sorted(map(result_key, seq.records)) == sorted(
            map(result_key, bat.records)
        )
        bitwise_equal = bitwise_equal and equal and seq.all_correct
        sweep[str(rate)] = {
            "offered_rate_per_s": rate,
            "sequential_rps": round(seq.count / seq.makespan_seconds, 3),
            "batched_rps": round(bat.count / bat.makespan_seconds, 3),
            "sequential_p99_ms": round(seq.p99_latency * 1e3, 3),
            "batched_p99_ms": round(bat.p99_latency * 1e3, 3),
            "results_identical": equal,
            "serving": bat.serving,
        }
        print(
            f"   rate {rate:5.1f}/s: sequential "
            f"{sweep[str(rate)]['sequential_rps']:7.2f} rps "
            f"(p99 {sweep[str(rate)]['sequential_p99_ms']:8.1f}ms)  "
            f"batched {sweep[str(rate)]['batched_rps']:7.2f} rps "
            f"(p99 {sweep[str(rate)]['batched_p99_ms']:8.1f}ms)  "
            f"identical: {equal}",
            flush=True,
        )

    # Same-seed byte-determinism, including under a mid-run edge kill
    # (two edges so the failover path actually runs).
    kill = ("edge-0", 0.35, 1.2)
    first = run(48.0, config, edges=2, kill=kill)
    second = run(48.0, config, edges=2, kill=kill)
    kill_deterministic = (
        first.render_markdown() == second.render_markdown()
        and first.all_correct
        and first.count == sessions * requests
    )
    print(
        f"   kill edge-0 @ 0.35s (revive 1.2s): byte-identical replay: "
        f"{first.render_markdown() == second.render_markdown()}, "
        f"{first.count}/{sessions * requests} served",
        flush=True,
    )

    saturated = sweep["64.0"]
    return {
        "model": "resnet-mini",
        "split_index": 0,
        "sessions": sessions,
        "requests_per_session": requests,
        "seed": seed,
        "max_batch": config.max_batch,
        "batch_timeout_s": config.batch_timeout_s,
        "sweep": sweep,
        "saturating_rate_per_s": saturated["offered_rate_per_s"],
        "bitwise_equal_at_every_load": bitwise_equal,
        "kill_replay_deterministic": kill_deterministic,
    }


def _bench_modelstore(seed=5):
    """Upload-byte economics of the multi-tenant edge model store.

    Virtual-time and fully deterministic.  Three questions:

    (a) does a pre-warmed fleet (stores primed before t=0) serve the same
        workload with strictly fewer upload bytes than a cold fleet?
    (b) under a memory budget that fits one tenant's rear half but not
        two, does LRU eviction keep every edge's resident bytes under the
        budget while every result stays correct?
    (c) after a cold edge kill + revival, does the v2 segment-level
        handshake shrink the failover re-upload versus the PR 6
        whole-model-or-nothing handshake on the same schedule?
    """
    from repro.fleet import FleetScenario, default_fleet

    print("-- modelstore (cold vs warm fleet, eviction, v1 vs v2 "
          "handshake) ...", flush=True)

    def fleet_run(prewarm):
        scenario = FleetScenario(
            sessions=12,
            requests_per_session=2,
            seed=seed,
            edges=default_fleet(3),
            prewarm=prewarm,
        )
        return scenario.run()

    cold = fleet_run(False)
    warm = fleet_run(True)
    print(
        f"   cold fleet uploads {cold.upload_bytes} B, warm fleet "
        f"{warm.upload_bytes} B",
        flush=True,
    )

    # the two tenants are the same net split at adjacent layers: either
    # rear half (138 903 B) fits the budget, their union (140 075 B) does
    # not, and ~137 KB of parameter blobs are shared between them
    budget = 139_500
    eviction = FleetScenario(
        sessions=10,
        requests_per_session=2,
        seed=seed,
        edges=default_fleet(2, memory_budget_bytes=budget),
        tenants=["smallnet:2", "smallnet:3"],
        mode="offload-partial",
    ).run()
    evictions = sum(row.store_evictions for row in eviction.edges)
    max_resident = max(row.store_resident_bytes for row in eviction.edges)
    print(
        f"   eviction: {evictions} demotions, max resident "
        f"{max_resident} B (budget {budget} B), "
        f"{eviction.presend['bytes_deduped']} B deduped",
        flush=True,
    )

    def kill_run(segment_dedup):
        scenario = FleetScenario(
            sessions=10,
            requests_per_session=2,
            seed=seed,
            edges=default_fleet(2),
            tenants=["smallnet:2", "smallnet:3"],
            mode="offload-partial",
            segment_dedup=segment_dedup,
            reply_timeout=2.0,
        )
        scenario.inject_kill("edge-0", 0.5, revive_at_seconds=1.5, cold=True)
        return scenario.run()

    v2 = kill_run(True)
    v1 = kill_run(False)
    print(
        f"   failover re-upload: v2 segment handshake {v2.upload_bytes} B "
        f"vs v1 whole-model {v1.upload_bytes} B "
        f"({1 - v2.upload_bytes / v1.upload_bytes:.1%} less)",
        flush=True,
    )
    return {
        "seed": seed,
        "cold_fleet": {
            "upload_bytes": cold.upload_bytes,
            "presend": cold.presend,
            "all_correct": cold.all_correct,
        },
        "warm_fleet": {
            "upload_bytes": warm.upload_bytes,
            "presend": warm.presend,
            "all_correct": warm.all_correct,
        },
        "eviction": {
            "memory_budget_bytes": budget,
            "tenants": ["smallnet:2", "smallnet:3"],
            "evictions": evictions,
            "max_resident_bytes": max_resident,
            "bytes_deduped": eviction.presend["bytes_deduped"],
            "all_correct": eviction.all_correct,
        },
        "failover_reupload": {
            "v2_upload_bytes": v2.upload_bytes,
            "v1_upload_bytes": v1.upload_bytes,
            "bytes_deduped": v2.presend["bytes_deduped"],
            "all_correct": v2.all_correct and v1.all_correct,
        },
    }


def _bench_backend(zoo_models=("smallnet", "alexnet", "resnet-mini", "googlenet")):
    """Tuned vs reference kernels, and the int8 split-point shift.

    Two questions:

    (a) is the tuned backend's googlenet plan forward at least as fast as
        the reference backend's — and faster than the reference layer
        walk by the headline margin — while preserving every top-1 label
        across the zoo?  (On this box the win is the float32 LRN and
        average-pool kernels; the threaded GEMM needs cores to spare and
        ``effective_threads`` is recorded in the environment block.)
    (b) when the feature tensor crosses the split 8-bit quantized (so the
        optimizer prices the bit-packed wire size instead of decimal
        text), does the chosen split move *no later* at any bandwidth and
        strictly earlier at low bandwidth, with top-1 agreement preserved
        at the shifted split?
    """
    import numpy as np

    from repro.eval.fig8 import make_optimizer
    from repro.eval.scenarios import Testbed, build_paper_model
    from repro.nn.backend import set_backend
    from repro.nn.quantize import measure_quantization_impact
    from repro.nn.zoo import build_model
    from repro.sim import SeededRng

    print("-- backend (tuned vs reference kernels, int8 split shift) ...",
          flush=True)
    set_backend("reference")
    google = build_model("googlenet")
    image = SeededRng(7, "bench/backend").uniform_array(
        tuple(google.network.input_shape), 0, 255
    )
    reference_out = google.network.forward(image, optimize=False)
    ref_plan = google.network.plan_for()
    ref_plan.forward(image)
    reference_walk_s = _best_of(
        lambda: google.network.forward(image, optimize=False)
    )
    reference_plan_s = _best_of(lambda: ref_plan.forward(image))
    set_backend("tuned")
    tuned_plan = google.network.plan_for()  # memo key includes the backend
    tuned_out = tuned_plan.forward(image)
    tuned_plan_s = _best_of(lambda: tuned_plan.forward(image))
    max_abs_diff = float(np.abs(tuned_out - reference_out).max())

    labels_equal = True
    for name in zoo_models:
        x = SeededRng(11, f"bench/backend/{name}").uniform_array(
            tuple(build_model(name).network.input_shape), 0, 255
        )
        set_backend("reference")
        ref_label = int(np.argmax(build_model(name).network.forward(x)))
        set_backend("tuned")
        tuned_label = int(np.argmax(build_model(name).network.forward(x)))
        labels_equal = labels_equal and ref_label == tuned_label
    set_backend(None)

    model = build_paper_model("googlenet")
    text_optimizer = make_optimizer("googlenet")
    quantized_optimizer = make_optimizer("googlenet", quantize_bits=8)
    splits = {}
    never_later = True
    shifts_at_low_bandwidth = False
    for mbps in (0.5, 2.0, 8.0):
        link = Testbed(bandwidth_bps=mbps * 1e6).profile
        text = text_optimizer.choose(model.network, link, denature=True)
        quantized = quantized_optimizer.choose(
            model.network, link, denature=True
        )
        never_later = never_later and (
            quantized.point.index <= text.point.index
        )
        if mbps <= 1.0 and quantized.point.index < text.point.index:
            shifts_at_low_bandwidth = True
        splits[str(mbps)] = {
            "bandwidth_mbps": mbps,
            "text_split_index": text.point.index,
            "text_split_label": text.point.label,
            "text_predicted_s": round(text.best.total_seconds, 6),
            "int8_split_index": quantized.point.index,
            "int8_split_label": quantized.point.label,
            "int8_predicted_s": round(quantized.best.total_seconds, 6),
        }
        print(
            f"   {mbps:4.1f} Mbps: text split @{text.point.index} "
            f"({text.point.label}) -> int8 split @{quantized.point.index} "
            f"({quantized.point.label})",
            flush=True,
        )
    low = splits["0.5"]
    impact = measure_quantization_impact(
        model,
        low["int8_split_label"],
        8,
        [
            SeededRng(seed, "bench/backend/int8").uniform_array(
                tuple(model.network.input_shape), 0, 255
            )
            for seed in range(4)
        ],
    )
    result = {
        "reference_walk_ms": round(reference_walk_s * 1000, 3),
        "reference_plan_ms": round(reference_plan_s * 1000, 3),
        "tuned_plan_ms": round(tuned_plan_s * 1000, 3),
        "tuned_vs_reference_plan": round(reference_plan_s / tuned_plan_s, 3),
        "tuned_vs_reference_walk": round(reference_walk_s / tuned_plan_s, 3),
        "tuned_max_abs_diff": max_abs_diff,
        "zoo_top1_labels_equal": labels_equal,
        "zoo_models": list(zoo_models),
        "int8_splits": splits,
        "int8_never_later": never_later,
        "int8_shifts_at_low_bandwidth": shifts_at_low_bandwidth,
        "int8_agreement_at_low_split": impact.agreement,
        "int8_size_reduction_at_low_split": round(impact.size_reduction, 4),
    }
    print(
        f"   tuned {result['tuned_vs_reference_plan']:.2f}x vs reference "
        f"plan, {result['tuned_vs_reference_walk']:.2f}x vs walk; zoo "
        f"top-1 equal: {labels_equal}; int8 agreement at "
        f"{low['int8_split_label']}: {impact.agreement:.2f} "
        f"({result['int8_size_reduction_at_low_split']:.1%} smaller wire)",
        flush=True,
    )
    return result


def _bench_exits(model_name="smallnet_exits", bandwidth_mbps=100.0):
    """Deadline-aware (split, exit) selection: accuracy scales with SLO.

    Sweeps a data-driven deadline grid at one bandwidth and records the
    joint (split, exit) pair ``choose_under_deadline`` picks per
    deadline.  Two claims: tightening the deadline never moves the
    chosen exit *later* (accuracy only ever degrades as the SLO
    tightens), and a generous enough deadline always picks the full
    network — the final exit at the model's full accuracy.  The default
    bandwidth is compute-dominated on purpose: early exits sit low in
    the spine, so their candidate splits ship big feature tensors, and
    on a slow link the full network's late split beats every early exit
    outright (no transition to see).  Everything is analytic over
    deterministically seeded predictor fits, so the sweep is
    reproducible across runs.
    """
    from repro.eval.fig8 import make_optimizer
    from repro.eval.fig_accuracy import deadline_grid_ms
    from repro.eval.scenarios import Testbed, build_paper_model

    print("-- exits (deadline-aware accuracy scaling) ...", flush=True)
    model = build_paper_model(model_name)
    network = model.network
    optimizer = make_optimizer(model_name)
    link = Testbed(bandwidth_bps=bandwidth_mbps * 1e6).profile
    # The probe choice's estimate sweep drives the deadline grid, so the
    # sweep hits every exit's feasibility threshold whatever the scale.
    probe = optimizer.choose_under_deadline(network, link, 3600.0)
    started = time.perf_counter()
    sweep = []
    for deadline_ms in deadline_grid_ms([probe]):
        choice = optimizer.choose_under_deadline(
            network, link, deadline_ms / 1e3
        )
        sweep.append(
            {
                "deadline_ms": deadline_ms,
                "split_index": choice.point.index,
                "split_label": choice.point.label,
                "exit_index": choice.exit.index,
                "exit_name": choice.exit.name,
                "accuracy": choice.accuracy,
                "predicted_s": round(choice.best.total_seconds, 6),
                "feasible": choice.feasible,
            }
        )
        print(
            f"   {deadline_ms:9.3f} ms -> split @{choice.point.index} "
            f"({choice.point.label}), exit {choice.exit.name} "
            f"(acc {choice.accuracy:.3f}, "
            f"{'feasible' if choice.feasible else 'infeasible'})",
            flush=True,
        )
    sweep_seconds = time.perf_counter() - started
    exit_indices = [row["exit_index"] for row in sweep]
    last = sweep[-1]
    return {
        "model": model_name,
        "bandwidth_mbps": bandwidth_mbps,
        "sweep": sweep,
        "sweep_ms": round(sweep_seconds * 1000, 3),
        "exit_indices": exit_indices,
        "never_later": all(
            a <= b for a, b in zip(exit_indices, exit_indices[1:])
        ),
        "generous_full_network": (
            last["exit_name"] == "final"
            and last["feasible"]
            and abs(last["accuracy"] - network.final_accuracy) < 1e-12
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full campaign (all paper models) instead of --quick",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel stage (default: cpu count)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_perf.json"),
        help="where to write the JSON results (default: repo-root BENCH_perf.json)",
    )
    args = parser.parse_args(argv)

    quick = not args.full
    jobs = args.jobs or (os.cpu_count() or 1)
    common = {"quick": quick}

    # One unrecorded run first so every measured stage sees the same
    # process state (model zoo + conv caches warm) — otherwise whichever
    # stage runs first eats the one-time build cost.
    _timed_campaign("warmup (unrecorded)", jobs=1, **common)
    serial_wall, serial = _timed_campaign("serial (jobs=1)", jobs=1, **common)
    parallel_wall, parallel = _timed_campaign(
        f"parallel (jobs={jobs})", jobs=jobs, **common
    )
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as cache_dir:
        cold_wall, cold = _timed_campaign(
            "cache cold", jobs=1, cache_dir=cache_dir, **common
        )
        warm_wall, warm = _timed_campaign(
            "cache warm", jobs=1, cache_dir=cache_dir, **common
        )
    forward = _bench_optimized_forward()
    # Read the prior JSON for the two-slot baseline *before* overwriting it.
    dag = _bench_dag_forward(forward, args.out)
    plan_cache = _bench_plan_cache()
    fleet = _bench_fleet()
    serving = _bench_serving()
    backend = _bench_backend()
    modelstore = _bench_modelstore()
    exits = _bench_exits()

    reports = {
        "serial": serial.report_markdown,
        "parallel": parallel.report_markdown,
        "cache_cold": cold.report_markdown,
        "cache_warm": warm.report_markdown,
    }
    baseline = _digest(reports["serial"])
    identical = {name: _digest(text) == baseline for name, text in reports.items()}

    cpu_count = os.cpu_count() or 1
    # The parallel-speedup claim only makes sense with cores to spread
    # over: on a single-CPU machine the process pool adds pure overhead,
    # so the claim is skipped (with the reason recorded) rather than
    # failed or silently asserted.
    if cpu_count > 1:
        parallel_claim = {
            "held": parallel_wall < serial_wall,
            "skipped": False,
            "detail": f"jobs={jobs} on {cpu_count} CPUs",
        }
    else:
        parallel_claim = {
            "held": None,
            "skipped": True,
            "reason": "cpu_count == 1: a process pool cannot outrun the "
            "serial run on a single CPU",
        }
    claims = {
        "parallel_faster_than_serial": parallel_claim,
        "optimized_forward_speedup": {
            "held": forward["googlenet_speedup"] >= 1.3,
            "skipped": False,
            "threshold": 1.3,
            "measured": forward["googlenet_speedup"],
        },
        "batched_per_image_throughput": {
            "held": forward["batch_per_image_speedup"] >= 2.0,
            "skipped": False,
            "threshold": 2.0,
            "measured": forward["batch_per_image_speedup"],
        },
        # Interval coloring must not cost time vs the retired two-slot
        # allocator (10% grace: the baseline was timed in a different
        # process on a different day) and must shrink the arena.
        "dag_not_slower_than_two_slot": (
            {
                "held": dag["googlenet_dag_ms"]
                <= dag["two_slot_baseline_ms"] * 1.10,
                "skipped": False,
                "threshold": "<= 1.10x of the PR 3 two-slot forward",
                "measured_ms": dag["googlenet_dag_ms"],
                "baseline_ms": dag["two_slot_baseline_ms"],
            }
            if dag["two_slot_baseline_ms"] is not None
            else {
                "held": None,
                "skipped": True,
                "reason": "no prior BENCH_perf.json with a two-slot "
                "googlenet forward to compare against",
            }
        ),
        "interval_coloring_shrinks_arena": {
            "held": dag["arena_bytes"] < dag["two_slot_arena_bytes"],
            "skipped": False,
            "measured_bytes": dag["arena_bytes"],
            "two_slot_bytes": dag["two_slot_arena_bytes"],
        },
        # With the params digest primed at model-build time (it used to be
        # recomputed inside the timed window on both sides, drowning the
        # difference), rehydrating a stored plan must beat compiling one.
        "plan_cache_warm_faster_than_cold": {
            "held": plan_cache["warm_plan_ms"] < plan_cache["cold_plan_ms"],
            "skipped": False,
            "threshold": "warm < cold (minima over repetitions)",
            "measured_ms": plan_cache["warm_plan_ms"],
            "baseline_ms": plan_cache["cold_plan_ms"],
        },
        # The warm process must actually *hit* (not silently recompile)
        # and produce bitwise-identical forwards from the rehydrated plan.
        "plan_cache_rehydrates_bitwise": {
            "held": plan_cache["forward_sha_identical"]
            and plan_cache["cold_hits_misses"] == [0, 1]
            and plan_cache["warm_hits_misses"] == [1, 0],
            "skipped": False,
            "cold_hits_misses": plan_cache["cold_hits_misses"],
            "warm_hits_misses": plan_cache["warm_hits_misses"],
            "forward_sha_identical": plan_cache["forward_sha_identical"],
        },
        # Load-aware scheduling must pay off where it matters — the tail —
        # when the edges are genuinely unequal.  Virtual-time latencies,
        # so this is deterministic, not a flaky wall-clock race.
        "fleet_load_aware_beats_oblivious_p99": {
            "held": max(
                fleet["policies"]["min-response-time"]["p99_ms"],
                fleet["policies"]["queue-aware"]["p99_ms"],
            )
            < min(
                fleet["policies"]["round-robin"]["p99_ms"],
                fleet["policies"]["random"]["p99_ms"],
            ),
            "skipped": False,
            "p99_ms": {
                name: row["p99_ms"] for name, row in fleet["policies"].items()
            },
        },
        # Killing the fastest edge mid-run must lose zero requests and
        # keep p99 within one reply timeout + a full re-run of the cost.
        "fleet_kill_bounded_p99": {
            "held": fleet["kill"]["served"] == fleet["kill"]["expected"]
            and fleet["kill"]["all_correct"]
            and fleet["kill"]["p99_ms"]
            < fleet["kill"]["healthy_p99_ms"]
            + fleet["kill"]["degradation_bound_ms"],
            "skipped": False,
            "served": fleet["kill"]["served"],
            "expected": fleet["kill"]["expected"],
            "p99_ms": fleet["kill"]["p99_ms"],
            "bound_ms": fleet["kill"]["healthy_p99_ms"]
            + fleet["kill"]["degradation_bound_ms"],
        },
        # At saturating offered load the coalesced rear-half forwards must
        # finish the same work in less virtual time than per-request
        # serving (and not at the tail's expense).
        "serving_batched_throughput_beats_sequential": {
            "held": (
                serving["sweep"]["64.0"]["batched_rps"]
                > serving["sweep"]["64.0"]["sequential_rps"]
                and serving["sweep"]["64.0"]["batched_p99_ms"]
                < serving["sweep"]["64.0"]["sequential_p99_ms"]
            ),
            "skipped": False,
            "offered_rate_per_s": serving["saturating_rate_per_s"],
            "batched_rps": serving["sweep"]["64.0"]["batched_rps"],
            "sequential_rps": serving["sweep"]["64.0"]["sequential_rps"],
        },
        # Batching must be invisible in the results: identical labels,
        # scores, and snapshot kinds at every load point, and same-seed
        # serving runs (with a mid-run kill) must replay byte-for-byte.
        "serving_results_bitwise_equal_sequential": {
            "held": serving["bitwise_equal_at_every_load"]
            and serving["kill_replay_deterministic"],
            "skipped": False,
            "bitwise_equal_at_every_load": (
                serving["bitwise_equal_at_every_load"]
            ),
            "kill_replay_deterministic": (
                serving["kill_replay_deterministic"]
            ),
        },
        # The tuned backend must never cost time against the reference
        # plan (5% grace: same process, adjacent minima), must beat the
        # reference layer walk by the headline margin, and must preserve
        # every top-1 label across the zoo.
        "tuned_forward_not_slower_than_reference": {
            "held": backend["tuned_plan_ms"]
            <= backend["reference_plan_ms"] * 1.05
            and backend["tuned_vs_reference_walk"] >= 1.2
            and backend["zoo_top1_labels_equal"],
            "skipped": False,
            "threshold": "tuned plan <= 1.05x reference plan and "
            ">= 1.2x reference walk, top-1 labels equal",
            "tuned_plan_ms": backend["tuned_plan_ms"],
            "reference_plan_ms": backend["reference_plan_ms"],
            "tuned_vs_reference_walk": backend["tuned_vs_reference_walk"],
            "zoo_top1_labels_equal": backend["zoo_top1_labels_equal"],
        },
        # Pricing the split at the bit-packed int8 wire size must never
        # move the chosen split later, must move it strictly earlier when
        # bandwidth is scarce (transfer-dominated), and the shifted split
        # must keep top-1 agreement on the eval inputs.
        "int8_split_shifts_under_low_bandwidth": {
            "held": backend["int8_never_later"]
            and backend["int8_shifts_at_low_bandwidth"]
            and backend["int8_agreement_at_low_split"] == 1.0,
            "skipped": False,
            "never_later": backend["int8_never_later"],
            "shifts_at_low_bandwidth": (
                backend["int8_shifts_at_low_bandwidth"]
            ),
            "agreement_at_low_split": backend["int8_agreement_at_low_split"],
        },
        # A pre-warmed fleet runs the same seeded workload without paying
        # for any model upload; the cold fleet pays for every edge.
        "warm_fleet_presend_bytes_below_cold": {
            "held": modelstore["warm_fleet"]["upload_bytes"]
            < modelstore["cold_fleet"]["upload_bytes"]
            and modelstore["cold_fleet"]["all_correct"]
            and modelstore["warm_fleet"]["all_correct"],
            "skipped": False,
            "cold_upload_bytes": modelstore["cold_fleet"]["upload_bytes"],
            "warm_upload_bytes": modelstore["warm_fleet"]["upload_bytes"],
        },
        # Two tenants whose rear halves cannot coexist under the budget
        # must thrash (evictions observed), yet every edge ends the run
        # within budget and every inference result stays correct.
        "eviction_keeps_resident_under_budget": {
            "held": modelstore["eviction"]["evictions"] > 0
            and modelstore["eviction"]["max_resident_bytes"]
            <= modelstore["eviction"]["memory_budget_bytes"]
            and modelstore["eviction"]["all_correct"],
            "skipped": False,
            "evictions": modelstore["eviction"]["evictions"],
            "max_resident_bytes": modelstore["eviction"]["max_resident_bytes"],
            "memory_budget_bytes": (
                modelstore["eviction"]["memory_budget_bytes"]
            ),
        },
        # After a cold edge kill + revival, the v2 segment handshake must
        # re-upload strictly fewer bytes than the PR 6 whole-model
        # handshake on the identical seeded schedule.
        "segment_dedup_shrinks_failover_reupload": {
            "held": modelstore["failover_reupload"]["v2_upload_bytes"]
            < modelstore["failover_reupload"]["v1_upload_bytes"]
            and modelstore["failover_reupload"]["bytes_deduped"] > 0
            and modelstore["failover_reupload"]["all_correct"],
            "skipped": False,
            "v2_upload_bytes": (
                modelstore["failover_reupload"]["v2_upload_bytes"]
            ),
            "v1_upload_bytes": (
                modelstore["failover_reupload"]["v1_upload_bytes"]
            ),
        },
        # Tightening the completion deadline must never move the chosen
        # early exit *later* — accuracy degrades monotonically with the
        # SLO, never recovers as it tightens.
        "exit_never_later_as_deadline_tightens": {
            "held": exits["never_later"],
            "skipped": False,
            "model": exits["model"],
            "bandwidth_mbps": exits["bandwidth_mbps"],
            "exit_indices": exits["exit_indices"],
        },
        # A generous enough deadline must always pick the full network:
        # the final exit, feasible, at the model's full accuracy.
        "generous_deadline_picks_full_network": {
            "held": exits["generous_full_network"],
            "skipped": False,
            "final_choice": exits["sweep"][-1],
        },
    }
    claims_hold = all(
        claim["held"] for claim in claims.values() if not claim["skipped"]
    )

    from repro.nn.backend import active_backend_name, blas_info, effective_threads

    payload = {
        "campaign": "quick" if quick else "full",
        "cpu_count": cpu_count,
        "platform": platform.platform(),
        "python": platform.python_version(),
        # Hardware/library context so cross-box trajectories are
        # interpretable (the skipped parallel claim, GEMM speedups, and
        # the tuned backend's thread budget all depend on it).
        "environment": {
            "backend": active_backend_name(),
            "backend_threads": effective_threads(),
            "blas": blas_info(),
            "cpu_count": cpu_count,
        },
        "stages": {
            "serial": {"wall_seconds": round(serial_wall, 3),
                       **serial.engine_stats.as_dict()},
            "parallel": {"wall_seconds": round(parallel_wall, 3),
                         **parallel.engine_stats.as_dict()},
            "cache_cold": {"wall_seconds": round(cold_wall, 3),
                           **cold.engine_stats.as_dict()},
            "cache_warm": {"wall_seconds": round(warm_wall, 3),
                           **warm.engine_stats.as_dict()},
            "optimized_forward": forward,
            "dag_forward": dag,
            "plan_cache": plan_cache,
            "fleet": fleet,
            "serving": serving,
            "backend": backend,
            "modelstore": modelstore,
            "exits": exits,
        },
        "speedup": {
            "parallel_vs_serial": round(serial_wall / parallel_wall, 3),
            "warm_cache_vs_serial": round(serial_wall / warm_wall, 3),
            "cold_cache_overhead": round(cold_wall / serial_wall, 3),
            "optimized_vs_reference": forward["googlenet_speedup"],
            "batched_vs_looped": forward["batch_per_image_speedup"],
            "plan_cache_warm_vs_cold": plan_cache["warm_speedup"],
        },
        "cache": {
            "cold_hits": cold.engine_stats.cache_hits,
            "warm_hits": warm.engine_stats.cache_hits,
            "warm_total": len(warm.engine_stats.tasks),
        },
        "reports_identical": identical,
        "claims": claims,
        "all_claims_hold": claims_hold and all(
            r.all_claims_hold for r in (serial, parallel, cold, warm)
        ),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nresults written to {args.out}")

    failures = [name for name, same in identical.items() if not same]
    if failures:
        print(f"ERROR: reports diverged from serial baseline: {failures}",
              file=sys.stderr)
        return 1
    if warm.engine_stats.cache_hits != len(warm.engine_stats.tasks):
        print("ERROR: warm cache run recomputed sections", file=sys.stderr)
        return 1
    failed_claims = [
        name for name, claim in claims.items()
        if not claim["skipped"] and not claim["held"]
    ]
    if failed_claims:
        print(f"ERROR: performance claims failed: {failed_claims}",
              file=sys.stderr)
        return 1
    skipped = [name for name, claim in claims.items() if claim["skipped"]]
    skip_note = f" (skipped: {', '.join(skipped)})" if skipped else ""
    print(
        f"parallel {payload['speedup']['parallel_vs_serial']:.2f}x, "
        f"warm cache {payload['speedup']['warm_cache_vs_serial']:.2f}x, "
        f"optimized forward {forward['googlenet_speedup']:.2f}x, "
        f"batch-8 {forward['batch_per_image_speedup']:.2f}x per-image; "
        f"all reports byte-identical{skip_note}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
