#!/usr/bin/env python
"""Campaign wall-clock benchmark: serial vs parallel vs result-cached.

Runs the same reproduction campaign four ways —

1. serial, no cache           (the baseline everything is measured against)
2. ``--jobs N`` process pool  (N defaults to the machine's core count)
3. serial into a cold cache   (baseline + cache-write overhead)
4. serial against a warm cache (every section served from disk)

— verifies the four reports are byte-identical, and writes the timings,
speedups and cache statistics to ``BENCH_perf.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--full] [--jobs N]

``--quick`` mode (the default) is the CI-sized campaign (one model,
truncated sweeps); ``--full`` runs all three paper models.  Note the
parallel speedup is bounded by the machine: on a single-core container
the process pool only adds overhead, which the JSON records honestly
(``cpu_count`` is part of the output).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.eval.campaign import run_campaign  # noqa: E402


def _timed_campaign(label: str, **kwargs):
    """One campaign run; returns (wall_seconds, result)."""
    print(f"-- {label} ...", flush=True)
    started = time.perf_counter()
    result = run_campaign(**kwargs)
    wall = time.perf_counter() - started
    stats = result.engine_stats
    print(
        f"   {wall:6.2f}s wall  (jobs={stats.jobs}, "
        f"{stats.cache_hits}/{len(stats.tasks)} cached, "
        f"compute {stats.compute_seconds:.2f}s)",
        flush=True,
    )
    return wall, result


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full campaign (all paper models) instead of --quick",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the parallel stage (default: cpu count)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_perf.json"),
        help="where to write the JSON results (default: repo-root BENCH_perf.json)",
    )
    args = parser.parse_args(argv)

    quick = not args.full
    jobs = args.jobs or (os.cpu_count() or 1)
    common = {"quick": quick}

    # One unrecorded run first so every measured stage sees the same
    # process state (model zoo + conv caches warm) — otherwise whichever
    # stage runs first eats the one-time build cost.
    _timed_campaign("warmup (unrecorded)", jobs=1, **common)
    serial_wall, serial = _timed_campaign("serial (jobs=1)", jobs=1, **common)
    parallel_wall, parallel = _timed_campaign(
        f"parallel (jobs={jobs})", jobs=jobs, **common
    )
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as cache_dir:
        cold_wall, cold = _timed_campaign(
            "cache cold", jobs=1, cache_dir=cache_dir, **common
        )
        warm_wall, warm = _timed_campaign(
            "cache warm", jobs=1, cache_dir=cache_dir, **common
        )

    reports = {
        "serial": serial.report_markdown,
        "parallel": parallel.report_markdown,
        "cache_cold": cold.report_markdown,
        "cache_warm": warm.report_markdown,
    }
    baseline = _digest(reports["serial"])
    identical = {name: _digest(text) == baseline for name, text in reports.items()}

    payload = {
        "campaign": "quick" if quick else "full",
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "stages": {
            "serial": {"wall_seconds": round(serial_wall, 3),
                       **serial.engine_stats.as_dict()},
            "parallel": {"wall_seconds": round(parallel_wall, 3),
                         **parallel.engine_stats.as_dict()},
            "cache_cold": {"wall_seconds": round(cold_wall, 3),
                           **cold.engine_stats.as_dict()},
            "cache_warm": {"wall_seconds": round(warm_wall, 3),
                           **warm.engine_stats.as_dict()},
        },
        "speedup": {
            "parallel_vs_serial": round(serial_wall / parallel_wall, 3),
            "warm_cache_vs_serial": round(serial_wall / warm_wall, 3),
            "cold_cache_overhead": round(cold_wall / serial_wall, 3),
        },
        "cache": {
            "cold_hits": cold.engine_stats.cache_hits,
            "warm_hits": warm.engine_stats.cache_hits,
            "warm_total": len(warm.engine_stats.tasks),
        },
        "reports_identical": identical,
        "all_claims_hold": all(
            r.all_claims_hold for r in (serial, parallel, cold, warm)
        ),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nresults written to {args.out}")

    failures = [name for name, same in identical.items() if not same]
    if failures:
        print(f"ERROR: reports diverged from serial baseline: {failures}",
              file=sys.stderr)
        return 1
    if warm.engine_stats.cache_hits != len(warm.engine_stats.tasks):
        print("ERROR: warm cache run recomputed sections", file=sys.stderr)
        return 1
    print(
        f"parallel {payload['speedup']['parallel_vs_serial']:.2f}x, "
        f"warm cache {payload['speedup']['warm_cache_vs_serial']:.2f}x "
        f"vs serial; all reports byte-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
