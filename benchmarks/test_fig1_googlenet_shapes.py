"""Fig. 1 — regenerate the GoogLeNet architecture walk.

Paper: 224x224 input -> (224x224x3) -> stem -> (56x56x64) -> inception
stack -> (7x7x1024) -> 1000 scores.  We regenerate the dimensions (with a
real numpy forward pass verifying them) and the feature sizes at every
spine position.
"""

from repro.eval.fig1 import format_fig1, run_fig1


def test_fig1_googlenet_architecture(benchmark, archive):
    rows = benchmark.pedantic(
        lambda: run_fig1("googlenet", verify_numerically=True),
        rounds=1,
        iterations=1,
    )
    by_name = {row.name: row for row in rows}

    # The paper's Fig. 1 checkpoints.
    assert by_name["input"].output_shape == (3, 224, 224)
    assert by_name["conv1_7x7_s2"].output_shape == (64, 112, 112)
    assert by_name["pool1_3x3_s2"].output_shape == (64, 56, 56)
    assert by_name["pool2_3x3_s2"].output_shape == (192, 28, 28)
    assert by_name["inception_3a"].output_shape == (256, 28, 28)
    assert by_name["pool4_3x3_s2"].output_shape == (832, 7, 7)
    assert by_name["inception_5b"].output_shape == (1024, 7, 7)
    assert by_name["prob"].output_shape == (1000,)

    # The feature sizes quoted in §IV.B (14.7 MB / 2.9 MB).
    assert by_name["conv1_7x7_s2"].feature_text_mb == pytest_approx(14.7, 0.25)
    assert by_name["pool1_3x3_s2"].feature_text_mb == pytest_approx(2.9, 0.35)

    archive("fig1_googlenet", format_fig1(rows))


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
