"""Fig. 7 — breakdown of the inference time.

Regenerates the stacked bars for offload-after-ACK and partial inference
across the three apps, and asserts the paper's findings: the snapshot
capture/restore overhead is negligible next to DNN execution, and server
execution dominates the inference time.
"""

import pytest

from repro.eval.fig7 import check_fig7_shape, format_fig7, run_fig7
from repro.nn.zoo import PAPER_MODELS


@pytest.fixture(scope="module")
def fig7_bars():
    return run_fig7(models=PAPER_MODELS)


def test_fig7_regenerate_and_check_shape(benchmark, archive, fig7_bars):
    bars = benchmark.pedantic(lambda: fig7_bars, rounds=1, iterations=1)
    violations = check_fig7_shape(bars)
    archive("fig7_breakdown", format_fig7(bars))
    assert violations == [], violations


def test_fig7_snapshot_overhead_negligible(fig7_bars):
    for bar in fig7_bars:
        assert bar.snapshot_overhead() < 0.1 * bar.total, (
            f"{bar.model}/{bar.configuration}: snapshot overhead "
            f"{bar.snapshot_overhead():.3f}s vs total {bar.total:.3f}s"
        )


def test_fig7_server_exec_dominates_full_offload(fig7_bars):
    for bar in fig7_bars:
        if bar.configuration == "offload_after_ack":
            assert bar.segments["server_exec"] > 0.5 * bar.total


def test_fig7_partial_shifts_time_to_client(fig7_bars):
    by_key = {(bar.model, bar.configuration): bar for bar in fig7_bars}
    for model in PAPER_MODELS:
        full = by_key[(model, "offload_after_ack")]
        partial = by_key[(model, "offload_partial")]
        assert partial.segments["client_exec"] > full.segments["client_exec"]
        assert partial.segments["server_exec"] < full.segments["server_exec"]
