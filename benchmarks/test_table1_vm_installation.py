"""Table 1 — overhead of VM-based installation for snapshot offloading.

Regenerates every row of the paper's Table 1 and asserts the magnitudes:
overlays of ~65/82/82 MB synthesized in ~19/24/24 s; sub-second snapshot
migration with pre-sending vs 7-12 s without; tiny snapshot-minus-feature
sizes.  Also runs the *protocol-level* installation (VM_OVERLAY message
into a server without the offloading system) to confirm the analytic
estimate matches the simulated timeline.
"""

import pytest

from repro.eval.calibration import paper_link
from repro.eval.scenarios import Testbed, build_paper_model
from repro.eval.table1 import check_table1_shape, format_table1, run_table1
from repro.vmsynth import DiskImage, build_overlay, estimate_installation
from repro.vmsynth.synthesis import deliver_overlay

PAPER_TABLE1 = {
    # model: (synthesis s, overlay MB, presend migration s, no-presend migration s)
    "googlenet": (19.31, 65.0, 0.60, 7.79),
    "agenet": (24.29, 82.0, 0.34, 12.07),
    "gendernet": (24.31, 82.0, 0.34, 12.07),
}


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1()


def test_table1_regenerate_and_check_shape(benchmark, archive, table1_rows):
    rows = benchmark.pedantic(lambda: table1_rows, rounds=1, iterations=1)
    violations = check_table1_shape(rows)
    archive("table1_vm_installation", format_table1(rows))
    assert violations == [], violations


def test_table1_synthesis_matches_paper_within_10pct(table1_rows):
    for row in table1_rows:
        paper_synthesis, paper_overlay, _, _ = PAPER_TABLE1[row.model]
        assert row.synthesis_seconds == pytest.approx(paper_synthesis, rel=0.10)
        assert row.overlay_mb == pytest.approx(paper_overlay, rel=0.10)


def test_table1_no_presend_migration_in_paper_band(table1_rows):
    for row in table1_rows:
        paper_value = PAPER_TABLE1[row.model][3]
        assert row.nopresend_migration_seconds == pytest.approx(paper_value, rel=0.25)


def test_table1_presend_migration_subsecond(table1_rows):
    for row in table1_rows:
        assert row.presend_migration_seconds < 1.0


def test_table1_protocol_level_installation_matches_estimate():
    """Deliver a real overlay to an uninstalled server over the network."""
    model = build_paper_model("googlenet")
    overlay = build_overlay(DiskImage.ubuntu_base(), [model])
    estimate = estimate_installation(overlay, paper_link())

    testbed = Testbed(server_installed=False)
    process = testbed.sim.spawn(
        deliver_overlay(testbed.topology.channel.end_a, overlay)
    )
    testbed.sim.run_until(lambda: process.triggered)
    assert process.ok
    assert testbed.server.installed
    assert process.value == pytest.approx(estimate.total_seconds, rel=0.05)
    assert testbed.server.store.has_complete(model.model_id)
