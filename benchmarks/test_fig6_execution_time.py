"""Fig. 6 — execution time of inference in three web apps.

Regenerates the paper's five bars (Client, Server, Offloading before ACK,
Offloading after ACK, Offloading with partial inference) for GoogLeNet,
AgeNet and GenderNet, and asserts the qualitative results:

* server ≪ client for every app;
* offloading after the ACK is comparable to server-only;
* offloading before the ACK is much slower — and for AgeNet/GenderNet
  (44 MB models) slower than local execution;
* partial inference trades some time for privacy.
"""

import pytest

from repro.eval.fig6 import check_fig6_shape, format_fig6, run_fig6
from repro.nn.zoo import PAPER_MODELS


@pytest.fixture(scope="module")
def fig6_rows():
    return run_fig6(models=PAPER_MODELS)


def test_fig6_regenerate_and_check_shape(benchmark, archive, fig6_rows):
    rows = benchmark.pedantic(lambda: fig6_rows, rounds=1, iterations=1)
    violations = check_fig6_shape(rows)
    archive("fig6_execution_time", format_fig6(rows))
    assert violations == [], violations


def test_fig6_server_much_faster_than_client(fig6_rows):
    for row in fig6_rows:
        assert row.seconds("server") < row.seconds("client") / 5


def test_fig6_after_ack_close_to_server_only(fig6_rows):
    for row in fig6_rows:
        gap = row.seconds("offload_after_ack") - row.seconds("server")
        assert gap < 1.2  # migration overhead stays ~sub-second

def test_fig6_agenet_gendernet_before_ack_slower_than_local(fig6_rows):
    for row in fig6_rows:
        if row.model in ("agenet", "gendernet"):
            assert row.seconds("offload_before_ack") > row.seconds("client")


def test_fig6_googlenet_before_ack_still_beats_local(fig6_rows):
    row = next(r for r in fig6_rows if r.model == "googlenet")
    assert row.seconds("offload_before_ack") < row.seconds("client")


def test_fig6_every_configuration_computes_correct_label(fig6_rows):
    for row in fig6_rows:
        assert row.all_correct()
