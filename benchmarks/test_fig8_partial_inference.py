"""Fig. 8 — inference time with partial inference at various offloading
points, for all three models.

Asserts the paper's §IV.B observations: non-monotonic time along the
spine, conv surge / pool dip in feature size (GoogLeNet ~14.7 MB at
1st_conv vs ~2.9 MB at 1st_pool), and 1st_pool as the best denaturing
offload point.
"""

import pytest

from repro.eval.fig8 import check_fig8_shape, format_fig8, run_fig8
from repro.nn.zoo import PAPER_MODELS


@pytest.fixture(scope="module")
def fig8_points():
    return run_fig8(models=PAPER_MODELS)


def test_fig8_regenerate_and_check_shape(benchmark, archive, fig8_points):
    points = benchmark.pedantic(lambda: fig8_points, rounds=1, iterations=1)
    violations = check_fig8_shape(points)
    archive("fig8_partial_inference", format_fig8(points))
    assert violations == [], violations


def test_fig8_googlenet_feature_sizes_match_paper(fig8_points):
    by_label = {point.label: point for point in fig8_points["googlenet"]}
    assert by_label["1st_conv"].feature_mb == pytest.approx(14.7, rel=0.25)
    assert by_label["1st_pool"].feature_mb == pytest.approx(2.9, rel=0.35)


def test_fig8_time_not_monotonic(fig8_points):
    for model, points in fig8_points.items():
        measured = [point.measured_seconds for point in points]
        assert any(b < a for a, b in zip(measured, measured[1:])), (
            f"{model}: no dip anywhere along the sweep"
        )


def test_fig8_first_pool_is_best_denaturing_point(fig8_points):
    for model, points in fig8_points.items():
        denaturing = [point for point in points if point.label != "input"]
        best = min(denaturing, key=lambda point: point.measured_seconds)
        assert best.label == "1st_pool", f"{model}: best was {best.label}"


def test_fig8_partial_slower_than_full_offload(fig8_points):
    for model, points in fig8_points.items():
        by_label = {point.label: point for point in points}
        full = by_label["input"].measured_seconds
        partial = by_label["1st_pool"].measured_seconds
        assert partial >= 0.95 * full


def test_fig8_optimizer_predictions_track_measurements(fig8_points):
    for model, points in fig8_points.items():
        for point in points:
            assert point.predicted_seconds == pytest.approx(
                point.measured_seconds, rel=0.25
            ), f"{model}@{point.label}"


def test_fig8_all_sessions_compute_correct_labels(fig8_points):
    for points in fig8_points.values():
        assert all(point.result.correct for point in points)
