"""Shared helpers for the benchmark suite.

Each figure/table benchmark runs its generator once (``pedantic`` with a
single round — these are end-to-end simulations, not microbenchmarks),
asserts the paper's shape claims, prints the rows/series the paper
reports, and archives them under ``benchmarks/results/``.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Write a report to benchmarks/results/<name>.txt and echo it."""

    def _archive(name: str, text: str) -> str:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[archived to {path}]")
        return path

    return _archive
