"""repro — snapshot-based computation offloading for ML web apps.

A complete, executable reproduction of "Computation Offloading for Machine
Learning Web Apps in the Edge Server Environment" (Jeong, Jeong, Lee, Moon
— ICDCS 2018), built in Python on a discrete-event simulator.

Subpackages:

* :mod:`repro.sim` — discrete-event simulation kernel (virtual clock,
  processes, events).
* :mod:`repro.netsim` — links/channels/topologies with netem-style shaping
  and time-varying conditions.
* :mod:`repro.devices` — calibrated device models and Neurosurgeon-style
  latency predictors.
* :mod:`repro.nn` — a numpy DNN inference framework (the CaffeJS analog)
  with a faithful model zoo, prototxt/weight-blob file formats, splitting
  and quantization.
* :mod:`repro.web` — a miniature browser: heap, DOM, events, app scripts.
* :mod:`repro.core` — the paper's contribution: snapshot capture/restore,
  the offloading protocol (pre-sending, partial inference, session cache,
  retransmission), partition optimization, privacy analysis, baselines.
* :mod:`repro.vmsynth` — VM-overlay synthesis for on-demand installation.
* :mod:`repro.eval` — the experiment harness regenerating every figure and
  table of the paper plus the ablation studies.

Entry points: ``python -m repro --help`` or the :mod:`repro.eval` modules;
see README.md for a tour and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
