"""Multi-edge fleets with load-aware offload scheduling and failover.

The paper's testbed is one client and one edge server; a deployment has a
*fleet* of edge servers with different hardware and link quality.  This
package adds the client-side machinery for that setting:

* :mod:`repro.fleet.policies` — pluggable edge-selection policies
  (round-robin, random, min-response-time, queue-aware).
* :mod:`repro.fleet.scheduler` — the :class:`FleetScheduler`: sliding
  response-time windows, queue depths, admission control, liveness.
* :mod:`repro.fleet.scenario` — :class:`FleetScenario`: whole-fleet runs
  with Poisson/trace session arrivals, digest-handshake pre-send reuse,
  and mid-run edge-kill fault injection with client-detected failover.
"""

from repro.fleet.policies import (
    POLICY_NAMES,
    MinResponseTimePolicy,
    Policy,
    PolicyError,
    QueueAwarePolicy,
    RandomPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.fleet.scheduler import EdgeState, FleetScheduler, NoEdgeAvailable
from repro.fleet.scenario import (
    EdgeSpec,
    FleetReport,
    FleetRequestRecord,
    FleetScenario,
    compare_policies,
    default_fleet,
)

__all__ = [
    "EdgeSpec",
    "EdgeState",
    "FleetReport",
    "FleetRequestRecord",
    "FleetScenario",
    "FleetScheduler",
    "MinResponseTimePolicy",
    "NoEdgeAvailable",
    "POLICY_NAMES",
    "Policy",
    "PolicyError",
    "QueueAwarePolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "compare_policies",
    "default_fleet",
    "make_policy",
]
