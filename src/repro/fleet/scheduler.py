"""Client-side load-aware scheduling over a fleet of edge servers.

The :class:`FleetScheduler` is the fleet's front-end brain: it keeps, per
edge, a sliding window of *observed* response times, the number of requests
currently outstanding (the client-observed queue depth), and a liveness
flag — and feeds those to a pluggable :class:`~repro.fleet.policies.Policy`
to pick a target per request.  Everything it knows comes from the client
side of the wire: completions feed the window, timeouts mark an edge dead,
and revivals are reported by the scenario's health probe.  All of it is
exported through the owning simulator's :mod:`repro.obs` registry
(``fleet_*`` metrics), so a campaign can interrogate scheduling behaviour
the same way it interrogates servers and links.

Admission control is a per-edge in-flight cap: when every live edge is at
``max_outstanding_per_edge``, :meth:`try_pick` returns ``None`` and the
caller backs off — bounding server queues instead of letting p99 run away.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, Iterable, List, Optional

from repro.fleet.policies import Policy, PolicyError
from repro.sim import Simulator


class NoEdgeAvailable(RuntimeError):
    """Raised when a request exhausts every live edge in the fleet."""


class EdgeState:
    """Everything the scheduler knows about one edge, client-side."""

    def __init__(self, name: str, order: int, window: int):
        self.name = name
        #: registration position — the deterministic tie-breaker
        self.order = order
        self.alive = True
        self.outstanding = 0
        #: last *server-reported* serving-queue depth (piggybacked on
        #: replies); 0 for servers without a serving loop.  Client-side
        #: ``outstanding`` only counts this gateway's in-flight requests —
        #: this is the server's own view of its backlog.
        self.server_queue_depth = 0
        self.served = 0
        self.failures = 0
        self._window: Deque[float] = deque(maxlen=window)

    def observe(self, seconds: float) -> None:
        self._window.append(seconds)

    def mean_response_seconds(self) -> float:
        """Window mean; 0.0 while unprobed so new edges get tried first."""
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    def last_response_seconds(self) -> Optional[float]:
        return self._window[-1] if self._window else None

    def window_values(self) -> List[float]:
        return list(self._window)

    def reset_window(self) -> None:
        self._window.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "DEAD"
        return (
            f"EdgeState({self.name}, {state}, out={self.outstanding}, "
            f"mean={self.mean_response_seconds():.3f}s)"
        )


class FleetScheduler:
    """Per-request edge selection from live latency and queue signals."""

    def __init__(
        self,
        sim: Simulator,
        edge_names: Iterable[str],
        policy: Policy,
        *,
        window: int = 16,
        max_outstanding_per_edge: int = 8,
    ):
        names = list(edge_names)
        if not names:
            raise PolicyError("a fleet needs at least one edge")
        if len(set(names)) != len(names):
            raise PolicyError(f"duplicate edge names in {names!r}")
        if window <= 0:
            raise PolicyError("window must be positive")
        if max_outstanding_per_edge <= 0:
            raise PolicyError("max_outstanding_per_edge must be positive")
        self.sim = sim
        self.policy = policy
        self.window = window
        self.max_outstanding_per_edge = max_outstanding_per_edge
        self._edges: Dict[str, EdgeState] = {
            name: EdgeState(name, order, window)
            for order, name in enumerate(names)
        }
        metrics = sim.metrics
        self._dispatch_counters = {
            name: metrics.counter(
                "fleet_dispatches_total",
                help="requests dispatched to this edge",
                edge=name, policy=policy.name,
            )
            for name in names
        }
        self._outstanding_gauges = {
            name: metrics.gauge(
                "fleet_edge_outstanding",
                help="requests currently in flight to this edge",
                edge=name,
            )
            for name in names
        }
        self._dead_counters = {
            name: metrics.counter(
                "fleet_edge_marked_dead_total",
                help="times the scheduler declared this edge dead",
                edge=name,
            )
            for name in names
        }
        self._server_queue_gauges = {
            name: metrics.gauge(
                "fleet_edge_server_queue_depth",
                help="last server-reported serving-queue depth",
                edge=name,
            )
            for name in names
        }
        self._admission_wait_counter = metrics.counter(
            "fleet_admission_waits_total",
            help="picks deferred because every live edge was at its "
            "in-flight cap",
        )
        self._latency_histogram = metrics.histogram(
            "fleet_request_latency_seconds",
            help="client-observed response time of dispatched requests",
            policy=policy.name,
        )

    # -- queries ---------------------------------------------------------------
    def edge(self, name: str) -> EdgeState:
        return self._edges[name]

    def edges(self) -> List[EdgeState]:
        """All edges in registration order."""
        return sorted(self._edges.values(), key=lambda state: state.order)

    def alive_edges(self) -> List[EdgeState]:
        return [state for state in self.edges() if state.alive]

    def any_alive(self) -> bool:
        return any(state.alive for state in self._edges.values())

    # -- selection ---------------------------------------------------------------
    def try_pick(
        self, exclude: FrozenSet[str] = frozenset()
    ) -> Optional[str]:
        """Pick an edge for one request, or ``None`` if none is admissible.

        Dead edges and ``exclude`` (edges this request already failed over
        from) never qualify; edges at the in-flight cap are admission-
        controlled out.  ``None`` with live-but-full edges means "back off
        and retry"; ``None`` with every edge dead or excluded means the
        caller must wait for a revival (or give up).
        """
        candidates = [
            state
            for state in self.edges()
            if state.alive
            and state.name not in exclude
            and state.outstanding < self.max_outstanding_per_edge
        ]
        if not candidates:
            if any(
                state.alive and state.name not in exclude
                for state in self._edges.values()
            ):
                self._admission_wait_counter.inc()
            return None
        return self.policy.choose(candidates).name

    # -- request lifecycle -------------------------------------------------------
    def begin(self, name: str) -> None:
        state = self._edges[name]
        state.outstanding += 1
        self._dispatch_counters[name].inc()
        self._outstanding_gauges[name].set(state.outstanding)

    def complete(self, name: str, seconds: float) -> None:
        """A dispatched request came back: feed the response-time window."""
        state = self._edges[name]
        state.outstanding = max(0, state.outstanding - 1)
        state.served += 1
        state.observe(seconds)
        self._outstanding_gauges[name].set(state.outstanding)
        self._latency_histogram.observe(seconds)

    def observe_server_queue(self, name: str, depth: int) -> None:
        """A reply reported the server's own serving-queue depth."""
        state = self._edges[name]
        state.server_queue_depth = max(0, int(depth))
        self._server_queue_gauges[name].set(state.server_queue_depth)

    def fail(self, name: str) -> None:
        """A dispatched request failed (timeout / link down): mark dead.

        The failure is the scheduler's *detection* of an edge death — no
        oracle tells it; the reply just never arrived.  All bookkeeping for
        the edge's other in-flight requests stays intact: each of them will
        fail (or complete, if the edge comes back fast) on its own.
        """
        state = self._edges[name]
        state.outstanding = max(0, state.outstanding - 1)
        state.failures += 1
        self._outstanding_gauges[name].set(state.outstanding)
        if state.alive:
            state.alive = False
            self._dead_counters[name].inc()

    def refuse(self, name: str) -> None:
        """A dispatched request was *refused* (explicit ERROR reply).

        The edge answered, so it is alive — a refusal is a state problem
        (stale handshake, evicted model, bad manifest), not a death.  The
        slot is released and the failure counted, but the edge stays
        schedulable: the client re-handshakes and retries.
        """
        state = self._edges[name]
        state.outstanding = max(0, state.outstanding - 1)
        state.failures += 1
        self._outstanding_gauges[name].set(state.outstanding)

    def mark_dead(self, name: str) -> None:
        state = self._edges[name]
        if state.alive:
            state.alive = False
            self._dead_counters[name].inc()

    def mark_alive(self, name: str) -> None:
        """Health probe says the edge is back; forget stale latency data."""
        state = self._edges[name]
        if not state.alive:
            state.alive = True
            state.reset_window()
            state.server_queue_depth = 0  # stale: the process restarted
