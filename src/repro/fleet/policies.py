"""Pluggable edge-selection policies for the fleet scheduler.

A policy answers one question: *given the live state of every admissible
edge, which one gets this request?*  The baselines (round-robin, random)
ignore the live signals; the load-aware policies use the sliding window of
observed response times and the client-observed queue depth (outstanding
requests), the pattern of OpenCDA's offloading scheduler — nearest in
coverage first, then minimum measured response time — and of the Edgent
line of work, where scheduling on live latency beats static profiles.

Policies are deterministic given their construction-time
:class:`~repro.sim.SeededRng` (only :class:`RandomPolicy` draws from it),
so a whole fleet run replays bit-for-bit from one seed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.sim import SeededRng


class PolicyError(RuntimeError):
    """Raised for unknown policy names or empty candidate sets."""


class Policy:
    """Base class: pick one edge from the admissible candidates.

    ``candidates`` is never empty and arrives in fleet registration order,
    so tie-breaking by list position is deterministic.
    """

    name = "abstract"

    def choose(self, candidates: Sequence["EdgeView"]):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RoundRobinPolicy(Policy):
    """Cycle through the fleet in registration order, skipping inadmissible
    edges — the classic load-oblivious baseline."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, candidates: Sequence["EdgeView"]):
        picked = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return picked


class RandomPolicy(Policy):
    """Uniform random choice (seeded, so replayable)."""

    name = "random"

    def __init__(self, rng: Optional[SeededRng] = None):
        self.rng = rng or SeededRng(0, "fleet/random-policy")

    def choose(self, candidates: Sequence["EdgeView"]):
        return self.rng.choice(list(candidates))


class MinResponseTimePolicy(Policy):
    """Minimum mean observed response time over the sliding window.

    Unprobed edges score 0.0 so they are tried before any measured edge —
    the optimistic-initialization trick that guarantees every edge gets
    probed instead of the first-measured one absorbing all traffic.
    """

    name = "min-response-time"

    def choose(self, candidates: Sequence["EdgeView"]):
        return min(candidates, key=lambda edge: (edge.mean_response_seconds(), edge.order))


class QueueAwarePolicy(Policy):
    """Expected-wait scoring: window mean scaled by the total queue depth.

    ``score = mean_rt * (outstanding + server_queue_depth + 1)`` — an edge
    twice as fast but with three requests already in flight loses to an
    idle slower one.  This is the signal that separates it from pure
    min-response-time under bursty load, where the fastest edge otherwise
    becomes the hotspot.  ``server_queue_depth`` is the depth the server's
    serving loop piggybacks on replies: batching servers expose backlog
    this gateway never dispatched (other clients, still-queued work), so
    the policy sees the *server's* queue, not just its own in-flight
    count.  Without a serving loop the depth is 0 and the scoring reduces
    to the original client-side form.
    """

    name = "queue-aware"

    def choose(self, candidates: Sequence["EdgeView"]):
        def score(edge):
            depth = edge.outstanding + getattr(edge, "server_queue_depth", 0)
            return (
                edge.mean_response_seconds() * (depth + 1),
                depth,
                edge.order,
            )

        return min(candidates, key=score)


#: registry used by the CLI, the benchmark stage, and the scenario config
POLICY_NAMES = ("round-robin", "random", "min-response-time", "queue-aware")

_FACTORIES: Dict[str, Callable[..., Policy]] = {
    "round-robin": lambda rng=None: RoundRobinPolicy(),
    "random": lambda rng=None: RandomPolicy(rng),
    "min-response-time": lambda rng=None: MinResponseTimePolicy(),
    "queue-aware": lambda rng=None: QueueAwarePolicy(),
}


def make_policy(name: str, rng: Optional[SeededRng] = None) -> Policy:
    """Build a policy by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise PolicyError(
            f"unknown policy {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(rng)
