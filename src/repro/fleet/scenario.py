"""Fleet scenarios: many clients, many edges, one load-aware scheduler.

A :class:`FleetScenario` places several :class:`~repro.core.server.EdgeServer`
instances — each with its own device profile and link quality — on one
:class:`~repro.netsim.topology.Topology`, then drives hundreds-to-thousands
of user sessions against them.  Each session is a real protocol client
(browser runtime, snapshots, pre-send, deltas); the shared client-side
:class:`~repro.fleet.scheduler.FleetScheduler` picks an edge per request
from live response-time windows and queue depths under a pluggable policy.

What makes it a *fleet* rather than N copies of the paper's testbed:

* **digest handshake** — before uploading a model to an edge, the client
  sends ``MODEL_QUERY`` with the model's params fingerprint; a hit (some
  earlier client already uploaded it, or the store survived a server
  restart) skips pre-send entirely.  The query also carries the model's
  manifest, so a *miss* is answered at segment granularity: the client
  uploads only the files whose bytes the edge lacks, and files shared
  with any other stored model (multi-tenant fleets, two splits of one
  network) are deduplicated by checksum instead of re-sent.
* **multi-tenant workloads** — ``tenants`` runs several models (or
  several splits of one model) through the same fleet; with a per-edge
  ``memory_budget_bytes`` the stores evict LRU under pressure, and
  ``prewarm`` starts every edge warm (models resident and attached)
  instead of cold.
* **admission control** — per-edge in-flight caps bound server queues;
  requests beyond the cap back off instead of stacking up.
* **failover** — :meth:`FleetScenario.inject_kill` makes an edge die
  mid-run (links down, server restarted, in-flight messages lost).  The
  scheduler *detects* this through reply timeouts, marks the edge dead,
  and re-routes the request — and every other in-flight request on that
  edge — to the next-best edge, re-running pre-send only if the digest
  handshake misses there.

No request is ever silently dropped: a request either completes exactly
once (the at-most-once reply cache plus per-request ids make retransmits
and failovers safe) or the scenario raises loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core import protocol
from repro.core.client import ClientAgent, OffloadError
from repro.core.server import EdgeServer
from repro.core.snapshot import CaptureOptions
from repro.devices import Device, edge_server_x86, odroid_xu4_client
from repro.eval.workloads import Interaction, generate_trace, poisson_arrivals
from repro.fleet.policies import Policy, make_policy
from repro.fleet.scheduler import FleetScheduler, NoEdgeAvailable
from repro.netsim import EdgeDown, NetemProfile, ReceiveTimeout, Topology
from repro.netsim.link import LinkDown
from repro.nn.cost import costs_for_range, network_costs
from repro.nn.model import Model
from repro.nn.zoo import build_model
from repro.serve import ServingConfig
from repro.sim import SeededRng, Simulator
from repro.web.app import make_inference_app, make_partial_inference_app
from repro.web.values import TypedArray


@dataclass(frozen=True)
class EdgeSpec:
    """Configuration of one edge server in the fleet."""

    name: str
    #: relative compute speed of the edge device (1.0 = the paper's x86 box)
    server_speedup: float = 1.0
    #: link shaping between every client and this edge
    profile: NetemProfile = field(default_factory=NetemProfile.wifi_30mbps)
    installed: bool = True
    session_cache_capacity: int = 256
    #: model-store budget; LRU eviction above it (None = unbounded)
    memory_budget_bytes: Optional[int] = None


def default_fleet(
    count: int = 3,
    skew: float = 2.0,
    memory_budget_bytes: Optional[int] = None,
) -> List[EdgeSpec]:
    """A heterogeneous fleet: server speeds spread by ``skew``.

    Edge 0 is the fastest; each subsequent edge is slower by an even step
    down to ``1/skew`` of edge 0 — the skewed-profile setup under which
    load-aware policies visibly beat round-robin on tail latency.
    """
    if count <= 0:
        raise ValueError("a fleet needs at least one edge")
    specs = []
    for index in range(count):
        fraction = index / max(1, count - 1)
        speedup = 1.0 / (1.0 + (skew - 1.0) * fraction)
        specs.append(
            EdgeSpec(
                name=f"edge-{index}",
                server_speedup=speedup,
                memory_budget_bytes=memory_budget_bytes,
            )
        )
    return specs


@dataclass
class FleetRequestRecord:
    """One completed request, as the client observed it."""

    session: str
    request_index: int
    issued_at: float
    completed_at: float
    edge: str
    #: edges this request failed over from before completing
    failovers: int
    snapshot_kind: str
    result_label: Optional[int]
    expected_label: Optional[int]
    #: the classifier's confidence, exactly as the app displayed it —
    #: lets tests assert bitwise-identical results across fleet layouts
    result_score: Optional[float] = None
    #: phase durations of the winning attempt (for fault-point injection)
    transfer_to_server_seconds: float = 0.0
    transfer_to_client_seconds: float = 0.0
    restore_seconds: float = 0.0

    @property
    def latency_seconds(self) -> float:
        return self.completed_at - self.issued_at

    @property
    def correct(self) -> bool:
        return (
            self.expected_label is not None
            and self.result_label == self.expected_label
        )


@dataclass
class EdgeReportRow:
    """Per-edge aggregate for the fleet report."""

    name: str
    served: int
    failures: int
    busy_seconds: float
    utilization: float
    mean_latency: float
    #: model-store state at report time (cold replacements reset to 0)
    store_resident_bytes: int = 0
    #: budget evictions over the run (metrics-backed: survives cold swaps)
    store_evictions: int = 0


class FleetReport:
    """Outcome of one fleet run: per-request records plus aggregates."""

    def __init__(
        self,
        policy: str,
        records: List[FleetRequestRecord],
        edges: List[EdgeReportRow],
        *,
        makespan_seconds: float,
        sessions: int,
        failovers: int,
        admission_waits: int,
        handshake_hits: int,
        handshake_misses: int,
        kills: List[Tuple[float, str]],
        serving: Optional[Dict] = None,
        presend: Optional[Dict] = None,
    ):
        self.policy = policy
        self.records = records
        self.edges = edges
        self.makespan_seconds = makespan_seconds
        self.sessions = sessions
        self.failovers = failovers
        self.admission_waits = admission_waits
        self.handshake_hits = handshake_hits
        self.handshake_misses = handshake_misses
        self.kills = kills
        #: aggregated serving-loop stats (None when serving is disabled)
        self.serving = serving
        #: model-upload accounting: files skipped / bytes deduped by the
        #: segment handshake, bytes sent by pre-send, delivery ride-alongs
        self.presend = presend or {
            "files_skipped": 0,
            "bytes_deduped": 0,
            "bytes_sent": 0,
            "delivery_bytes": 0,
        }

    @property
    def upload_bytes(self) -> int:
        """Total model bytes that crossed the wire (pre-send + deliveries)."""
        return self.presend["bytes_sent"] + self.presend["delivery_bytes"]

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def all_correct(self) -> bool:
        return all(record.correct for record in self.records)

    def latencies(self) -> List[float]:
        return sorted(record.latency_seconds for record in self.records)

    def latency_quantile(self, q: float) -> float:
        """Nearest-rank quantile of request latency (q in [0, 1])."""
        ordered = self.latencies()
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, max(0, int(np.ceil(q * len(ordered))) - 1))
        return ordered[rank]

    @property
    def p50_latency(self) -> float:
        return self.latency_quantile(0.50)

    @property
    def p99_latency(self) -> float:
        return self.latency_quantile(0.99)

    @property
    def mean_latency(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.latency_seconds for r in self.records) / len(self.records)

    def as_dict(self) -> Dict:
        return {
            "policy": self.policy,
            "sessions": self.sessions,
            "requests": self.count,
            "all_correct": self.all_correct,
            "makespan_seconds": round(self.makespan_seconds, 6),
            "latency": {
                "mean": round(self.mean_latency, 6),
                "p50": round(self.p50_latency, 6),
                "p99": round(self.p99_latency, 6),
                "max": round(self.latency_quantile(1.0), 6),
            },
            "failovers": self.failovers,
            "admission_waits": self.admission_waits,
            "handshake": {
                "hits": self.handshake_hits,
                "misses": self.handshake_misses,
            },
            "kills": [[round(at, 6), name] for at, name in self.kills],
            "serving": self.serving,
            "presend": {
                "files_skipped": self.presend["files_skipped"],
                "bytes_deduped": self.presend["bytes_deduped"],
                "bytes_sent": self.presend["bytes_sent"],
                "delivery_bytes": self.presend["delivery_bytes"],
                "upload_bytes": self.upload_bytes,
            },
            "edges": [
                {
                    "name": row.name,
                    "served": row.served,
                    "failures": row.failures,
                    "busy_seconds": round(row.busy_seconds, 6),
                    "utilization": round(row.utilization, 6),
                    "mean_latency": round(row.mean_latency, 6),
                    "store_resident_bytes": row.store_resident_bytes,
                    "store_evictions": row.store_evictions,
                }
                for row in self.edges
            ],
        }

    def render_markdown(self) -> str:
        """Deterministic plain-text report (byte-stable across runs)."""
        from repro.eval.reporting import format_table

        lines = [f"# Fleet report — policy `{self.policy}`", ""]
        lines.append(
            f"{self.sessions} sessions, {self.count} requests, "
            f"makespan {self.makespan_seconds:.3f}s virtual, "
            f"all correct: {self.all_correct}"
        )
        lines.append(
            f"latency p50 {self.p50_latency:.4f}s, "
            f"p99 {self.p99_latency:.4f}s, "
            f"mean {self.mean_latency:.4f}s, "
            f"max {self.latency_quantile(1.0):.4f}s"
        )
        lines.append(
            f"failovers {self.failovers}, admission waits "
            f"{self.admission_waits}, handshake {self.handshake_hits} hits / "
            f"{self.handshake_misses} misses"
        )
        stats = self.presend
        lines.append(
            f"model upload: {self.upload_bytes} B on the wire "
            f"({stats['bytes_sent']} B pre-sent, {stats['delivery_bytes']} B "
            f"with snapshots), {stats['files_skipped']} files / "
            f"{stats['bytes_deduped']} B deduped by the segment handshake"
        )
        if self.kills:
            killed = ", ".join(
                f"{name}@{at:.3f}s" for at, name in self.kills
            )
            lines.append(f"edge kills: {killed}")
        if self.serving is not None:
            stats = self.serving
            mean_batch = (
                stats["items"] / stats["batches"] if stats["batches"] else 0.0
            )
            mean_wait = (
                stats["queue_wait_seconds"] / stats["items"]
                if stats["items"]
                else 0.0
            )
            lines.append(
                f"serving: {stats['batches']} batches, "
                f"{stats['items']} items "
                f"({stats['batched_items']} in real batches, "
                f"max batch {stats['max_batch']}), "
                f"mean batch {mean_batch:.2f}, "
                f"mean queue wait {mean_wait * 1e3:.3f}ms, "
                f"deadline misses {stats['deadline_misses']}"
            )
        lines.append("")
        lines.append(
            format_table(
                [
                    "edge", "served", "failures", "busy_s", "util_%",
                    "mean_lat_s", "resident_B", "evictions",
                ],
                [
                    [
                        row.name,
                        row.served,
                        row.failures,
                        f"{row.busy_seconds:.3f}",
                        f"{100.0 * row.utilization:.1f}",
                        f"{row.mean_latency:.4f}",
                        row.store_resident_bytes,
                        row.store_evictions,
                    ]
                    for row in self.edges
                ],
                title="Per-edge utilization",
            )
        )
        lines.append("")
        return "\n".join(lines)


@dataclass
class _Tenant:
    """One model workload sharing the fleet: app, split, cost tables."""

    spec: str  # "smallnet" or "smallnet:3" (model:split, partial mode only)
    model: Model
    app: object  # repro.web.app.WebApp
    full_costs: object
    split_index: Optional[int] = None
    front_model: Optional[Model] = None
    rear_model: Optional[Model] = None
    front_costs: object = None
    rear_costs: object = None
    batch_hint: Optional[Dict] = None
    #: early exit serving this tenant (deadline-planned multi-exit models)
    exit_name: Optional[str] = None
    exit_accuracy: Optional[float] = None

    @property
    def presend_model(self) -> Model:
        return self.rear_model if self.rear_model is not None else self.model

    @property
    def server_costs(self):
        return self.rear_costs if self.rear_model is not None else self.full_costs


class _FleetClient:
    """Per-session client state: agent, attachment, per-edge handshakes."""

    def __init__(self, name: str, tenant: _Tenant):
        self.name = name
        self.tenant = tenant
        self.agent: Optional[ClientAgent] = None
        self.attached_edge: Optional[str] = None
        #: edge -> (channel end identity, presend manager or None); a new
        #: channel to the same edge invalidates the handshake
        self.presends: Dict[str, Tuple[object, object]] = {}
        self.expected_label: Optional[int] = None
        #: image loaded before the agent exists (first attach is lazy)
        self.pending_pixels = None


class FleetScenario:
    """N edge servers + M user sessions + one scheduling policy."""

    def __init__(
        self,
        model_name: str = "smallnet",
        edges: Optional[List[EdgeSpec]] = None,
        policy: str = "queue-aware",
        *,
        sessions: int = 40,
        requests_per_session: int = 2,
        arrivals: str = "poisson",
        arrival_rate_per_s: float = 8.0,
        mean_think_seconds: float = 1.0,
        new_image_probability: float = 0.3,
        mode: str = "offload",
        split_index: Optional[int] = None,
        seed: int = 0,
        window: int = 16,
        max_outstanding_per_edge: int = 8,
        reply_timeout: float = 5.0,
        retries: int = 0,
        backoff_seconds: float = 0.05,
        serving: Optional[ServingConfig] = None,
        tenants: Optional[List[str]] = None,
        prewarm: bool = False,
        segment_dedup: bool = True,
        deadline_s: Optional[float] = None,
    ):
        if sessions <= 0 or requests_per_session <= 0:
            raise ValueError("sessions and requests_per_session must be positive")
        if arrivals not in ("poisson", "trace"):
            raise ValueError(f"unknown arrival process {arrivals!r}")
        if mode not in ("offload", "offload-partial"):
            raise ValueError(f"unknown mode {mode!r}")
        self.model_name = model_name
        self.specs = list(edges) if edges is not None else default_fleet(3)
        self.policy_name = policy
        self.sessions = sessions
        self.requests_per_session = requests_per_session
        self.arrivals = arrivals
        self.arrival_rate_per_s = arrival_rate_per_s
        self.mean_think_seconds = mean_think_seconds
        self.new_image_probability = new_image_probability
        self.mode = mode
        self.seed = seed
        self.reply_timeout = reply_timeout
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        #: per-edge continuous-batching config (None = sequential serving)
        self.serving_config = serving
        self.prewarm = prewarm
        #: False replays the PR 6 whole-model handshake (misses re-upload
        #: everything) — kept for A/B measurement of the segment dedup
        self.segment_dedup = segment_dedup
        #: per-request completion SLO.  Rides in every snapshot (the serving
        #: loop counts misses against it); for multi-exit tenants in partial
        #: mode it also drives the joint (split, exit) plan — see
        #: :meth:`repro.core.partition.PartitionOptimizer.choose_under_deadline`.
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.deadline_s = deadline_s

        self.sim = Simulator(max_events=20_000_000)
        self.rng = SeededRng(seed, f"fleet/{model_name}/{policy}")
        self.topology = Topology(self.sim, client_name="fleet-gateway")
        self.servers: Dict[str, EdgeServer] = {}
        for spec in self.specs:
            self.topology.add_edge_host(spec.name, profile=spec.profile)
            self.servers[spec.name] = EdgeServer(
                self.sim,
                Device(self.sim, edge_server_x86(spec.server_speedup)),
                name=spec.name,
                installed=spec.installed,
                session_cache_capacity=spec.session_cache_capacity,
                serving=serving,
                memory_budget_bytes=spec.memory_budget_bytes,
            )
        self.policy: Policy = make_policy(policy, self.rng.child("policy"))
        self.scheduler = FleetScheduler(
            self.sim,
            [spec.name for spec in self.specs],
            self.policy,
            window=window,
            max_outstanding_per_edge=max_outstanding_per_edge,
        )

        # The models and their cost tables are shared by every session (they
        # never mutate parameters), exactly like the multi-client workloads.
        # A tenant spec is "model" or "model:split" (partial mode only);
        # sessions are assigned round-robin over the tenant list.
        specs_list = list(tenants) if tenants else [model_name]
        self.tenants: List[_Tenant] = [
            self._build_tenant(spec, split_index) for spec in specs_list
        ]
        # Single-tenant aliases, kept for every pre-multi-tenant caller.
        first = self.tenants[0]
        self.model = first.model
        self.app = first.app
        self.full_costs = first.full_costs
        self.split_index = first.split_index
        self.front_model = first.front_model
        self.rear_model = first.rear_model
        self.front_costs = first.front_costs
        self.rear_costs = first.rear_costs
        self.batch_hint = first.batch_hint

        self.records: List[FleetRequestRecord] = []
        #: model bytes that rode along with snapshots (unfinished pre-sends)
        self._delivery_bytes = 0
        self.kill_log: List[Tuple[float, str]] = []
        self._kills: List[Tuple[float, str, bool]] = []
        self._revivals: List[Tuple[float, str]] = []
        self._served_ends: Set[int] = set()
        self._ran = False

        metrics = self.sim.metrics
        labels = {"policy": self.policy.name}
        self._requests_counter = metrics.counter(
            "fleet_requests_total", help="requests completed fleet-wide",
            **labels,
        )
        self._failover_counter = metrics.counter(
            "fleet_failovers_total",
            help="request attempts abandoned on one edge and re-routed",
            **labels,
        )
        self._handshake_hit_counter = metrics.counter(
            "fleet_handshake_hits_total",
            help="digest handshakes answered 'model present' (pre-send skipped)",
        )
        self._handshake_miss_counter = metrics.counter(
            "fleet_handshake_misses_total",
            help="digest handshakes answered 'model missing' (pre-send ran)",
        )
        self._sessions_counter = metrics.counter(
            "fleet_sessions_total", help="user sessions completed", **labels
        )
        self._exit_counters = {
            tenant.exit_name: metrics.counter(
                "fleet_exit_requests_total",
                help="requests served from a deadline-planned exit",
                exit=tenant.exit_name,
                **labels,
            )
            for tenant in self.tenants
            if tenant.exit_name is not None
        }
        if prewarm:
            self._prewarm_stores()

    # -- tenants -----------------------------------------------------------------
    def _build_tenant(self, spec: str, default_split: Optional[int]) -> _Tenant:
        """Build one tenant's model, app and cost tables from its spec."""
        name, _, split_text = spec.partition(":")
        split: Optional[int] = default_split
        if split_text:
            if self.mode != "offload-partial":
                raise ValueError(
                    f"tenant {spec!r} names a split point but mode is "
                    f"{self.mode!r} (splits need offload-partial)"
                )
            split = int(split_text)
        model = build_model(name)
        network = model.network
        full_costs = network_costs(network)
        app_name = spec.replace(":", "@")
        if self.mode != "offload-partial":
            return _Tenant(
                spec=spec,
                model=model,
                app=make_inference_app(model, name=f"{app_name}-fleet"),
                full_costs=full_costs,
            )
        exit_name = None
        exit_accuracy = None
        if self.deadline_s is not None and len(network.exit_points()) > 1:
            # Multi-exit tenant under an SLO: plan the (split, exit) pair
            # jointly, then serve the pruned network — the trunk past the
            # chosen exit never ships, executes, or costs anything.
            choice = self._plan_deadline(network)
            exit_name = choice.exit.name
            exit_accuracy = choice.exit.accuracy
            if not choice.exit.is_final:
                network = network.at_exit(choice.exit.index)
                model = Model(network.name, network)
                full_costs = network_costs(network)
            if split is None:
                split = choice.point.index
        last = len(network.layers) - 1
        if split is None:
            split = last // 2
        front_model, rear_model = model.split(split)
        return _Tenant(
            spec=spec,
            model=model,
            app=make_partial_inference_app(
                front_model, rear_model, name=f"{app_name}-fleet-partial"
            ),
            full_costs=full_costs,
            split_index=split,
            front_model=front_model,
            rear_model=rear_model,
            front_costs=costs_for_range(network, 0, split),
            rear_costs=costs_for_range(network, split + 1, last),
            exit_name=exit_name,
            exit_accuracy=exit_accuracy,
            #: tells a batching server which stored model / restored global
            #: carry the rear-half inference, so concurrent same-model
            #: requests can share one batched forward
            batch_hint={
                "model_id": rear_model.model_id,
                "feature_global": "feature",
            },
        )

    def _plan_deadline(self, network):
        """Joint (split, exit) plan for a multi-exit tenant under the SLO.

        Predictors are fit noise-free on the fleet's client/server device
        profiles; the planning link is edge 0's (the fleet's reference
        link).  Deterministic: same seed, same plan.
        """
        from repro.core.partition import PartitionOptimizer
        from repro.devices.predictor import fit_predictor_for

        costs = network_costs(network)
        client_profile = odroid_xu4_client()
        server_profile = edge_server_x86()
        optimizer = PartitionOptimizer(
            fit_predictor_for(client_profile, costs, noise=0.0),
            fit_predictor_for(server_profile, costs, noise=0.0),
            client_profile,
            server_profile,
        )
        return optimizer.choose_under_deadline(
            network, self.specs[0].profile, self.deadline_s
        )

    def _prewarm_stores(self) -> None:
        """Start every installed edge warm: tenant models resident + attached.

        Models are pushed straight into the stores (no wire cost, as if an
        operator had staged the fleet before opening it to traffic); with a
        memory budget smaller than the tenant mix, later models evict
        earlier ones LRU — a deliberately *partially* warm fleet.
        """
        for spec in self.specs:
            server = self.servers[spec.name]
            if not server.installed:
                continue
            for tenant in self.tenants:
                model = tenant.presend_model
                server.store.begin_upload(model.model_id, model.files())
                for file in model.files():
                    server.store.receive_file(model.model_id, file)
                if server.store.has_complete(model.model_id):
                    server.store.attach_model(model.model_id, model)

    # -- fault injection ---------------------------------------------------------
    def inject_kill(
        self,
        edge_name: str,
        at_seconds: float,
        *,
        revive_at_seconds: Optional[float] = None,
        cold: bool = False,
    ) -> None:
        """Schedule an edge death at a virtual time (before :meth:`run`).

        The edge's links go down (in-flight messages lost, channels
        discarded) and its server process restarts — cached sessions and
        the at-most-once reply cache are gone; the model store survives
        unless ``cold`` (a replacement box with an empty disk).  With
        ``revive_at_seconds`` the edge later comes back and the scenario's
        health probe tells the scheduler.
        """
        if edge_name not in self.servers:
            raise KeyError(f"no edge named {edge_name!r}")
        if revive_at_seconds is not None and revive_at_seconds <= at_seconds:
            raise ValueError("revive must come after the kill")
        self._kills.append((at_seconds, edge_name, cold))
        if revive_at_seconds is not None:
            self._revivals.append((revive_at_seconds, edge_name))

    def _kill_now(self, edge_name: str, cold: bool) -> None:
        self.topology.fail_edge(edge_name)
        server = self.servers[edge_name]
        server.restart()
        if cold:
            server.store = server.fresh_store()
        self.kill_log.append((self.sim.now, edge_name))
        self.sim.metrics.counter(
            "fleet_edge_kills_total", help="injected edge deaths",
            edge=edge_name,
        ).inc()

    def _revive_now(self, edge_name: str) -> None:
        self.topology.restore_edge(edge_name)
        # The health probe's view: the edge answers again.  Its stale
        # response-time window is forgotten by mark_alive.
        self.scheduler.mark_alive(edge_name)

    # -- wiring -------------------------------------------------------------------
    def _attach(self, client: _FleetClient, edge_name: str):
        """Simulated sub-process: connect, (re)bind, digest-handshake."""
        client_end, edge_end = self.topology.connect(client.name, edge_name)
        if id(edge_end) not in self._served_ends:
            self._served_ends.add(id(edge_end))
            self.servers[edge_name].serve(edge_end)
        agent = client.agent
        if agent is None:
            agent = ClientAgent(
                self.sim,
                Device(self.sim, odroid_xu4_client()),
                client_end,
                capture_options=CaptureOptions(include_canvas_pixels=True),
            )
            agent.start_app(client.tenant.app, presend=False)
            if self.mode == "offload-partial":
                agent.mark_offload_point("front_complete")
            else:
                agent.mark_offload_point("click", "infer_btn")
            client.agent = agent
        elif agent.endpoint is not client_end:
            agent.rebind(client_end)
            if client.attached_edge != edge_name:
                # We know we switched servers; the old session baseline is
                # useless there (and would cost one failed delta round).
                agent.session_baselines.pop(agent.runtime.app_name, None)
        client.attached_edge = edge_name

        # Digest-first handshake, once per channel instance: a fresh
        # channel (first contact, or reconnect after an edge death) must
        # re-ask, because the store may have changed behind it.
        known = client.presends.get(edge_name)
        if known is not None and known[0] is client_end:
            agent.presend = known[1]
            return
        presend_model = client.tenant.presend_model
        manifest = presend_model.files() if self.segment_dedup else None
        client_end.send(
            protocol.MODEL_QUERY,
            protocol.ModelQueryPayload(
                model_id=presend_model.model_id,
                fingerprint=presend_model.fingerprint(),
                files=manifest,
            ),
        )
        reply = yield client_end.recv_kind(
            protocol.MODEL_STATUS, timeout=self.reply_timeout
        )
        if reply.payload.present:
            self._handshake_hit_counter.inc()
            manager = None
        else:
            self._handshake_miss_counter.inc()
            from repro.core.presend import PresendManager

            # Segment-level miss: the reply names exactly the missing files;
            # everything else is already resident (possibly under another
            # model id — content-addressed dedup) and is skipped up front.
            skip = None
            missing = reply.payload.missing_files
            if missing is not None and manifest is not None:
                resident = {f.name for f in manifest} - set(missing)
                if resident:
                    skip = {presend_model.model_id: resident}
            manager = PresendManager(
                self.sim, client_end, [presend_model], skip_files=skip
            )
            manager.start()
        agent.presend = manager
        client.presends[edge_name] = (client_end, manager)

    # -- the per-request scheduling loop ------------------------------------------
    def _offload_with_failover(self, client: _FleetClient, event, server_costs):
        """Dispatch one request, failing over until it completes.

        Returns ``(edge_name, outcome, failovers)``.  Raises
        :class:`NoEdgeAvailable` only when every edge is dead with no
        revival pending — a dropped request is always loud.
        """
        excluded: Set[str] = set()
        failovers = 0
        waits = 0
        while True:
            edge_name = self.scheduler.try_pick(frozenset(excluded))
            if edge_name is None:
                if not self.scheduler.any_alive() and not self._revivals_after(
                    self.sim.now
                ):
                    raise NoEdgeAvailable(
                        f"{client.name}: every edge is dead and none will "
                        "revive"
                    )
                waits += 1
                excluded.clear()  # a revived or drained edge may qualify now
                yield self.sim.timeout(
                    min(0.25, self.backoff_seconds * waits)
                )
                continue
            self.scheduler.begin(edge_name)
            issued_at = self.sim.now
            try:
                yield from self._attach(client, edge_name)
                outcome = yield from client.agent.offload(
                    event,
                    server_costs=server_costs,
                    reply_timeout=self.reply_timeout,
                    retries=self.retries,
                    batch_hint=client.tenant.batch_hint,
                    deadline_s=self.deadline_s,
                )
            except OffloadError:
                # An explicit ERROR reply: the edge is alive but refused —
                # almost always a stale handshake (the store evicted the
                # model behind our back).  Invalidate the handshake so the
                # retry re-asks at segment granularity and re-uploads only
                # what is actually gone; the edge stays schedulable.
                client.presends.pop(edge_name, None)
                self.scheduler.refuse(edge_name)
                self._failover_counter.inc()
                failovers += 1
                excluded.add(edge_name)
                continue
            except (ReceiveTimeout, LinkDown, EdgeDown):
                # The reply never came: the scheduler *detects* the edge
                # death here and re-routes.  The handshake state for this
                # edge is invalidated too — the replacement process comes
                # up with whatever store survived (or a cold one), so a
                # later retry must re-ask.
                client.presends.pop(edge_name, None)
                self.scheduler.fail(edge_name)
                self._failover_counter.inc()
                failovers += 1
                excluded.add(edge_name)
                continue
            self._delivery_bytes += outcome.delivery_bytes
            self.scheduler.complete(edge_name, self.sim.now - issued_at)
            self.scheduler.observe_server_queue(
                edge_name, outcome.server_queue_depth
            )
            self._requests_counter.inc()
            return edge_name, outcome, failovers

    def _revivals_after(self, now: float) -> List[Tuple[float, str]]:
        return [(at, name) for at, name in self._revivals if at > now]

    # -- session processes ---------------------------------------------------------
    def _interactions_for(self, session_name: str) -> List[Interaction]:
        if self.arrivals == "trace":
            return generate_trace(
                self.rng.child(f"trace/{session_name}"),
                inferences=self.requests_per_session,
                mean_think_seconds=self.mean_think_seconds,
                new_image_probability=self.new_image_probability,
            )
        rng = self.rng.child(f"think/{session_name}")
        interactions: List[Interaction] = []
        now = 0.0
        for index in range(self.requests_per_session):
            if index == 0 or rng.chance(self.new_image_probability):
                interactions.append(Interaction(at_seconds=now, action="new_image"))
            interactions.append(Interaction(at_seconds=now, action="infer"))
            now += rng.expovariate(1.0 / self.mean_think_seconds)
        return interactions

    def _session_proc(self, index: int, start_at: float):
        session_name = f"user-{index:04d}"
        yield self.sim.timeout(start_at)
        tenant = self.tenants[index % len(self.tenants)]
        client = _FleetClient(session_name, tenant)
        image_rng = self.rng.child(f"images/{session_name}")
        shape = tuple(tenant.model.network.input_shape)
        server_costs = tenant.server_costs
        interactions = self._interactions_for(session_name)
        started = self.sim.now
        request_index = 0
        for interaction in interactions:
            wait = started + interaction.at_seconds - self.sim.now
            if wait > 0:
                yield self.sim.timeout(wait)
            if interaction.action == "new_image":
                pixels = TypedArray(image_rng.uniform_array(shape, 0, 255))
                client.expected_label = int(
                    np.argmax(tenant.model.inference(pixels.data))
                )
                if client.agent is not None:
                    client.agent.runtime.globals["pending_pixels"] = pixels
                    client.agent.runtime.dispatch("click", "load_btn")
                else:
                    client.pending_pixels = pixels
                continue
            # An "infer" interaction: the client must exist (attach lazily
            # on the first request, to whatever edge the scheduler picks).
            if client.agent is None:
                # First contact: pick an edge now so the agent has a wire.
                yield from self._first_attach(client)
                client.agent.runtime.globals["pending_pixels"] = (
                    client.pending_pixels
                )
                client.agent.runtime.dispatch("click", "load_btn")
            issued_at = self.sim.now
            if self.mode == "offload-partial":
                front_seconds = client.agent.device.forward_seconds(
                    tenant.front_costs
                )
                yield client.agent.device.execute(
                    front_seconds, label="front-dnn"
                )
            client.agent.runtime.dispatch("click", "infer_btn")
            event = client.agent.take_intercepted()
            edge_name, outcome, failovers = yield from (
                self._offload_with_failover(client, event, server_costs)
            )
            self.records.append(
                FleetRequestRecord(
                    session=session_name,
                    request_index=request_index,
                    issued_at=issued_at,
                    completed_at=self.sim.now,
                    edge=edge_name,
                    failovers=failovers,
                    snapshot_kind=outcome.snapshot.kind,
                    result_label=client.agent.runtime.globals.get(
                        "result_label"
                    ),
                    expected_label=client.expected_label,
                    result_score=client.agent.runtime.globals.get(
                        "result_score"
                    ),
                    transfer_to_server_seconds=(
                        outcome.transfer_to_server_seconds
                    ),
                    transfer_to_client_seconds=(
                        outcome.transfer_to_client_seconds
                    ),
                    restore_seconds=outcome.restore_seconds,
                )
            )
            if tenant.exit_name is not None:
                self._exit_counters[tenant.exit_name].inc()
            request_index += 1
        self._sessions_counter.inc()

    def _first_attach(self, client: _FleetClient):
        """Attach a brand-new client to whichever edge the policy picks."""
        waits = 0
        while True:
            edge_name = self.scheduler.try_pick()
            if edge_name is not None:
                break
            if not self.scheduler.any_alive() and not self._revivals_after(
                self.sim.now
            ):
                raise NoEdgeAvailable(
                    f"{client.name}: no edge to attach to and none will revive"
                )
            waits += 1
            yield self.sim.timeout(min(0.25, self.backoff_seconds * waits))
        try:
            yield from self._attach(client, edge_name)
        except (ReceiveTimeout, LinkDown, EdgeDown):
            # The chosen edge died during the very first handshake: let the
            # scheduler know and try again from scratch.
            self.scheduler.mark_dead(edge_name)
            yield from self._first_attach(client)

    # -- running ---------------------------------------------------------------------
    def run(self) -> FleetReport:
        if self._ran:
            raise RuntimeError("a FleetScenario can only run once")
        self._ran = True
        arrival_rng = self.rng.child("arrivals")
        starts = poisson_arrivals(
            arrival_rng, self.arrival_rate_per_s, self.sessions
        )
        processes = [
            self.sim.spawn(
                self._session_proc(index, start_at),
                label=f"fleet-session-{index}",
            )
            for index, start_at in enumerate(starts)
        ]
        for at_seconds, edge_name, cold in sorted(self._kills):
            self.sim.schedule(
                at_seconds, self._kill_now, edge_name, cold,
                label=f"kill:{edge_name}",
            )
        for at_seconds, edge_name in sorted(self._revivals):
            self.sim.schedule(
                at_seconds, self._revive_now, edge_name,
                label=f"revive:{edge_name}",
            )
        self.sim.run_until(lambda: all(p.triggered for p in processes))
        for process in processes:
            if process.ok is False:
                raise process.value
        return self._build_report()

    def _build_report(self) -> FleetReport:
        makespan = self.sim.now
        rows: List[EdgeReportRow] = []
        for spec in self.specs:
            state = self.scheduler.edge(spec.name)
            device = self.servers[spec.name].device
            latencies = [
                r.latency_seconds for r in self.records if r.edge == spec.name
            ]
            utilization = (
                device.busy_seconds / makespan if makespan > 0 else 0.0
            )
            self.sim.metrics.gauge(
                "fleet_edge_utilization",
                help="edge device busy fraction over the run",
                edge=spec.name,
            ).set(utilization)
            rows.append(
                EdgeReportRow(
                    name=spec.name,
                    served=state.served,
                    failures=state.failures,
                    busy_seconds=device.busy_seconds,
                    utilization=utilization,
                    mean_latency=(
                        sum(latencies) / len(latencies) if latencies else 0.0
                    ),
                    store_resident_bytes=self.servers[spec.name].store.resident_bytes,
                    store_evictions=int(
                        self.sim.metrics.value(
                            "store_evictions_total", server=spec.name
                        )
                    ),
                )
            )
        registry = self.sim.metrics
        presend_stats = {
            "files_skipped": int(registry.value("presend_files_skipped_total")),
            "bytes_deduped": int(registry.value("presend_bytes_deduped_total")),
            "bytes_sent": int(registry.value("presend_bytes_sent_total")),
            "delivery_bytes": self._delivery_bytes,
        }
        serving_stats = None
        if self.serving_config is not None:
            serving_stats = {
                "batches": 0,
                "items": 0,
                "batched_items": 0,
                "max_batch": 0,
                "queue_wait_seconds": 0.0,
                "deadline_misses": 0,
                "dead_on_arrival": 0,
            }
            for spec in self.specs:
                loop = self.servers[spec.name].serving
                if loop is None:
                    continue
                for key, value in loop.stats.items():
                    if key == "max_batch":
                        serving_stats[key] = max(serving_stats[key], value)
                    else:
                        serving_stats[key] += value
            serving_stats["queue_wait_seconds"] = round(
                serving_stats["queue_wait_seconds"], 9
            )
        return FleetReport(
            self.policy.name,
            list(self.records),
            rows,
            makespan_seconds=makespan,
            sessions=self.sessions,
            failovers=int(self._failover_counter.value),
            admission_waits=int(
                registry.value("fleet_admission_waits_total") or 0
            ),
            handshake_hits=int(self._handshake_hit_counter.value),
            handshake_misses=int(self._handshake_miss_counter.value),
            kills=list(self.kill_log),
            serving=serving_stats,
            presend=presend_stats,
        )


def compare_policies(
    policies=("round-robin", "random", "min-response-time", "queue-aware"),
    **scenario_kwargs,
) -> Dict[str, FleetReport]:
    """Run the same workload under several policies (fresh sim each)."""
    reports: Dict[str, FleetReport] = {}
    for name in policies:
        scenario = FleetScenario(policy=name, **scenario_kwargs)
        reports[name] = scenario.run()
    return reports
