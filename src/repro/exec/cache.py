"""Content-addressed disk cache for task outcomes.

A cache entry is keyed by the SHA-256 of the task's full identity:

* the task function's dotted path and keyword arguments (canonical JSON,
  tuples and lists unified),
* the repro package version (``repro.__version__``),
* a *source fingerprint* — a digest over the content of every ``*.py``
  file in the installed ``repro`` package,
* the cache format version.

The source fingerprint is the invalidation rule that matters in practice:
edit any line of the simulator, the kernels, or the eval harness and every
previously cached outcome misses, because a changed source tree may change
what the task would compute.  There is deliberately no mtime or TTL logic —
identical inputs hit, everything else misses, and stale entries are just
unreferenced files (``purge()`` removes them wholesale).

Outcomes are stored pickled (payloads are plain dataclasses and metrics
registries, both picklable) and written atomically, so a crashed or
concurrent run can never leave a truncated entry that later loads.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.exec.task import Task, TaskOutcome

#: bump when the on-disk entry layout changes
CACHE_FORMAT = 1


@functools.lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Digest of every ``*.py`` file of the repro package (path + content)."""
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def task_cache_key(task: Task) -> str:
    """The content address of one task's outcome."""
    import repro

    from repro.nn.plan import optimization_enabled

    identity = {
        "fn": task.fn,
        "kwargs": task.kwargs_dict(),
        "repro_version": repro.__version__,
        "source": source_fingerprint(),
        "format": CACHE_FORMAT,
        # Plan-optimized and reference runs produce equivalent payloads but
        # must not share entries: equivalence is a *tested claim*, and a
        # shared key would mask any regression behind a cache hit.
        "optimize": optimization_enabled(),
    }
    canonical = json.dumps(identity, sort_keys=True, default=_canonical_default)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _canonical_default(value: Any) -> Any:
    if isinstance(value, (tuple, set, frozenset)):
        return list(value)
    raise TypeError(f"task kwargs must be plain data, got {type(value).__name__}")


class ResultCache:
    """Pickled task outcomes under ``dir/<key[:2]>/<key>.pkl``."""

    def __init__(self, directory: str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def load(self, task: Task) -> Optional[TaskOutcome]:
        """The cached outcome for this task, or None on a miss.

        A corrupt or unreadable entry counts as a miss (and is removed):
        the cache must never be able to fail a run that would succeed
        without it.
        """
        path = self._path_for(task_cache_key(task))
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                outcome = pickle.load(handle)
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(outcome, TaskOutcome):
            return None
        outcome.key = task.key  # the caller's key names the outcome
        outcome.cached = True
        return outcome

    def store(self, task: Task, outcome: TaskOutcome) -> None:
        """Atomically persist one outcome."""
        path = self._path_for(task_cache_key(task))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(outcome, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def purge(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for path in self.directory.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, Any]:
        entries = list(self.directory.rglob("*.pkl"))
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
        }
