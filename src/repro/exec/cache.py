"""Content-addressed disk cache for task outcomes.

A cache entry is keyed by the SHA-256 of the task's full identity:

* the task function's dotted path and keyword arguments (canonical JSON,
  tuples and lists unified),
* the repro package version (``repro.__version__``),
* a *source fingerprint* — a digest over the content of every ``*.py``
  file in the installed ``repro`` package,
* the cache format version.

The source fingerprint is the invalidation rule that matters in practice:
edit any line of the simulator, the kernels, or the eval harness and every
previously cached outcome misses, because a changed source tree may change
what the task would compute.  There is deliberately no mtime or TTL logic —
identical inputs hit, everything else misses, and stale entries are just
unreferenced files (``purge()`` removes them wholesale).

Outcomes are stored pickled (payloads are plain dataclasses and metrics
registries, both picklable) and written atomically, so a crashed or
concurrent run can never leave a truncated entry that later loads.

The same machinery backs :class:`PlanCache`, which persists *compiled
execution plans* (``repro.nn.plan``) across processes: pool workers that
would each recompile GoogLeNet's step DAG from scratch instead rehydrate
the serialized step graph and folded operands stored by whichever process
compiled first.  Plan entries share the invalidation philosophy of task
outcomes — keyed by params digest + range + source fingerprint + format
version, never by mtime — and share the hard rule that a corrupt or stale
entry degrades to a silent recompile: the cache can never fail a run that
would succeed without it.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.exec.task import Task, TaskOutcome

#: bump when the on-disk entry layout changes
CACHE_FORMAT = 1

#: bump when the serialized plan descriptor layout changes
#: (2: descriptors carry a backend name and quantized-step stats/operands;
#: 3: quantized operands carry per-channel scale/zero-point arrays)
PLAN_CACHE_FORMAT = 3

#: plan-cache directory inherited by pool workers (like REPRO_NO_OPTIMIZE);
#: empty/unset means disabled
PLAN_CACHE_ENV = "REPRO_PLAN_CACHE"


@functools.lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Digest of every ``*.py`` file of the repro package (path + content)."""
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def task_cache_key(task: Task) -> str:
    """The content address of one task's outcome."""
    import repro

    from repro.nn.backend import active_backend_name
    from repro.nn.plan import optimization_enabled

    identity = {
        "fn": task.fn,
        "kwargs": task.kwargs_dict(),
        "repro_version": repro.__version__,
        "source": source_fingerprint(),
        "format": CACHE_FORMAT,
        # Plan-optimized and reference runs produce equivalent payloads but
        # must not share entries: equivalence is a *tested claim*, and a
        # shared key would mask any regression behind a cache hit.
        "optimize": optimization_enabled(),
        # Same rule for kernel backends: reference and tuned outputs agree
        # only within a tested tolerance, so they never share entries.
        "backend": active_backend_name(),
    }
    canonical = json.dumps(identity, sort_keys=True, default=_canonical_default)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _canonical_default(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        # Set iteration order follows string hash randomization — emitting
        # it unsorted would give the same task a different key in every
        # process.  Sort for a canonical form; mixed-type sets that don't
        # define a total order are rejected rather than keyed arbitrarily.
        try:
            return sorted(value)
        except TypeError as exc:
            raise TypeError(
                "set-valued task kwargs must be order-comparable to form a "
                f"deterministic cache key: cannot sort {value!r}"
            ) from exc
    if isinstance(value, tuple):
        return list(value)
    raise TypeError(f"task kwargs must be plain data, got {type(value).__name__}")


class ResultCache:
    """Pickled task outcomes under ``dir/<key[:2]>/<key>.pkl``."""

    def __init__(self, directory: str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def load(self, task: Task) -> Optional[TaskOutcome]:
        """The cached outcome for this task, or None on a miss.

        A corrupt or unreadable entry counts as a miss (and is removed):
        the cache must never be able to fail a run that would succeed
        without it.
        """
        path = self._path_for(task_cache_key(task))
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                outcome = pickle.load(handle)
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(outcome, TaskOutcome):
            return None
        outcome.key = task.key  # the caller's key names the outcome
        outcome.cached = True
        return outcome

    def store(self, task: Task, outcome: TaskOutcome) -> None:
        """Atomically persist one outcome."""
        path = self._path_for(task_cache_key(task))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(outcome, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def purge(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        for path in self.directory.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, Any]:
        return _scan_entries(self.directory, ".pkl")


def _scan_entries(directory: Path, suffix: str) -> Dict[str, Any]:
    """Count committed cache entries under ``directory``.

    In-flight ``.tmp-*`` files (mid-``store`` scratch that ``os.replace``
    will rename or the writer will unlink) are not entries and are
    excluded.  A concurrent run may unlink or replace any file between the
    glob and the ``stat`` — vanished files are skipped, never raised.
    """
    entries = 0
    total_bytes = 0
    for path in directory.rglob(f"*{suffix}"):
        if path.name.startswith(".tmp-"):
            continue
        try:
            total_bytes += path.stat().st_size
        except OSError:
            continue
        entries += 1
    return {
        "directory": str(directory),
        "entries": entries,
        "bytes": total_bytes,
    }


# -- plan cache -------------------------------------------------------------------

_PLAN_CACHE_OVERRIDE: Optional[str] = None
_PLAN_CACHE_OVERRIDDEN = False
_PLAN_CACHES: Dict[str, "PlanCache"] = {}


def set_plan_cache(directory: Optional[str]) -> None:
    """Force the plan-cache directory process-wide.

    ``None`` restores the :data:`PLAN_CACHE_ENV` default; an empty string
    disables the cache even if the environment sets a directory.  The CLI
    sets both the override and the environment variable so forked pool
    workers inherit the choice (mirroring ``--no-optimize``).
    """
    global _PLAN_CACHE_OVERRIDE, _PLAN_CACHE_OVERRIDDEN
    _PLAN_CACHE_OVERRIDE = directory
    _PLAN_CACHE_OVERRIDDEN = directory is not None


def plan_cache_dir() -> Optional[str]:
    """The active plan-cache directory, or None when caching is off."""
    if _PLAN_CACHE_OVERRIDDEN:
        return _PLAN_CACHE_OVERRIDE or None
    return os.environ.get(PLAN_CACHE_ENV) or None


def active_plan_cache() -> Optional["PlanCache"]:
    """The :class:`PlanCache` for the configured directory (memoized)."""
    directory = plan_cache_dir()
    if directory is None:
        return None
    cache = _PLAN_CACHES.get(directory)
    if cache is None:
        cache = PlanCache(directory)
        _PLAN_CACHES[directory] = cache
    return cache


@dataclasses.dataclass
class PlanCacheStats:
    """Process-wide plan-cache accounting (hits/misses/compile cost)."""

    hits: int = 0
    misses: int = 0
    compile_seconds: float = 0.0


_PLAN_CACHE_STATS = PlanCacheStats()


def plan_cache_stats() -> PlanCacheStats:
    """The live process-wide plan-cache counters."""
    return _PLAN_CACHE_STATS


def reset_plan_cache_stats() -> None:
    global _PLAN_CACHE_STATS
    _PLAN_CACHE_STATS = PlanCacheStats()


def record_plan_cache_metrics(registry) -> None:
    """Export the plan-cache counters into a metrics registry.

    Called explicitly (``repro metrics``) rather than auto-announced, for
    the same reason plan metrics are: which process compiles which plan
    depends on worker topology, so announcing implicitly would make merged
    telemetry nondeterministic across ``--jobs``.
    """
    stats = _PLAN_CACHE_STATS
    registry.counter(
        "plan_cache_hits_total",
        help="compiled execution plans rehydrated from the plan cache",
    ).inc(stats.hits)
    registry.counter(
        "plan_cache_misses_total",
        help="plan-cache lookups that fell through to a fresh compile",
    ).inc(stats.misses)
    registry.counter(
        "plan_compile_seconds",
        help="wall seconds spent compiling execution plans in this process",
    ).inc(stats.compile_seconds)


class PlanCache:
    """Pickled plan descriptors under ``dir/<key[:2]>/<key>.plan``.

    The ``.plan`` suffix keeps entries disjoint from :class:`ResultCache`'s
    ``*.pkl`` outcomes, so both caches can share one directory without
    polluting each other's stats or purges.  Descriptors are plain dicts of
    JSON-able scalars plus numpy arrays (see
    :func:`repro.nn.plan.plan_to_descriptor`); rehydration re-binds them to
    the live network's layers and validates structure, so a poisoned entry
    raises there and the caller falls back to compiling.
    """

    def __init__(self, directory: str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.plan"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored descriptor for ``key``, or None on a miss.

        Truncated, garbage, or wrong-format entries count as a miss and
        are removed — never raised.
        """
        path = self._path_for(key)
        try:
            with open(path, "rb") as handle:
                descriptor = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self.discard(key)
            return None
        if (
            not isinstance(descriptor, dict)
            or descriptor.get("format") != PLAN_CACHE_FORMAT
        ):
            self.discard(key)
            return None
        return descriptor

    def store(self, key: str, descriptor: Dict[str, Any]) -> None:
        """Atomically persist one plan descriptor."""
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".plan"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(descriptor, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def discard(self, key: str) -> None:
        """Remove one entry (used when rehydration rejects it)."""
        try:
            self._path_for(key).unlink()
        except OSError:
            pass

    def purge(self) -> int:
        """Delete every plan entry; returns the number of files removed."""
        removed = 0
        for path in self.directory.rglob("*.plan"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, Any]:
        return _scan_entries(self.directory, ".plan")
