"""Task model of the execution engine.

A :class:`Task` names a deterministic unit of campaign work: an importable
function (dotted path) plus keyword arguments.  Referring to functions by
*name* rather than by object keeps tasks trivially picklable for worker
processes and gives the result cache a stable identity to hash.

Running a task (:func:`execute_task`) captures, alongside the payload the
function returns, the :class:`~repro.obs.metrics.MetricsRegistry` of every
simulator the task built and the wall-clock seconds it took — everything a
caller needs to merge telemetry and report timings without re-running
anything.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

from repro.obs.metrics import MetricsRegistry, collect_metrics


class TaskError(ValueError):
    """Raised on malformed task specifications."""


def _freeze_kwargs(kwargs: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(kwargs.items()))


@dataclass(frozen=True)
class Task:
    """One unit of work: ``fn(**kwargs)`` under a stable key.

    ``key`` must be unique within one engine run (it names the outcome);
    ``fn`` is the dotted path of a module-level function so worker
    processes can import it.  Keyword-argument values must be plain data
    (scalars, strings, tuples/lists of those) — they travel to workers and
    into the cache key.
    """

    key: str
    fn: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, key: str, fn: str, kwargs: Mapping[str, Any] = ()) -> "Task":
        if "." not in fn:
            raise TaskError(f"task {key!r}: fn must be a dotted path, got {fn!r}")
        return cls(key=key, fn=fn, kwargs=_freeze_kwargs(dict(kwargs)))

    def resolve(self) -> Callable[..., Any]:
        module_name, _, attr = self.fn.rpartition(".")
        module = importlib.import_module(module_name)
        try:
            return getattr(module, attr)
        except AttributeError as exc:
            raise TaskError(f"task {self.key!r}: no function {self.fn!r}") from exc

    def kwargs_dict(self) -> Dict[str, Any]:
        return dict(self.kwargs)


@dataclass
class TaskOutcome:
    """Everything one executed task produced."""

    key: str
    payload: Any
    #: registries of every simulator built while the task ran, in
    #: creation order (deterministic under the fixed experiment seeds)
    registries: List[MetricsRegistry] = field(default_factory=list)
    #: wall-clock cost of computing the payload.  Cache hits preserve the
    #: original (cold) cost, so timings always mean "cost to compute".
    wall_seconds: float = 0.0
    #: True when the engine served this outcome from the result cache
    cached: bool = False


def execute_task(task: Task) -> TaskOutcome:
    """Run one task, capturing its telemetry and wall-clock cost.

    The metrics collector is *shielding*: enclosing collectors (e.g. the
    CLI's ``--metrics-out`` scope) do not see the task's registries here.
    The engine re-announces them in task order after the run, so callers
    observe identical announcements for inline, parallel and cached
    execution.
    """
    fn = task.resolve()
    with collect_metrics(shield=True) as registries:
        started = time.perf_counter()
        payload = fn(**task.kwargs_dict())
        wall = time.perf_counter() - started
    return TaskOutcome(
        key=task.key,
        payload=payload,
        registries=list(registries),
        wall_seconds=wall,
    )
