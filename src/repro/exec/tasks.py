"""Small importable task bodies for the execution engine.

The campaign's real tasks point straight at the eval harness
(``repro.eval.fig6.run_fig6_model`` and friends); this module holds the
extra task functions that need a stable, importable home:

* :func:`session_probe` — one offloaded inference, the smallest real unit
  of work.  The engine tests and the bench harness fan it out.
* :func:`ablation_report` — run one ablation study and render its CLI
  text, so ``repro ablation`` can run (and cache) through the engine.

Task functions must be module-level (worker processes import them by
dotted path) and take only plain-data keyword arguments (the cache hashes
them).
"""

from __future__ import annotations


def session_probe(
    model_name: str = "smallnet",
    bandwidth_mbps: float = 30.0,
    wait_for_ack: bool = True,
):
    """One offloaded inference on a fresh testbed; returns SessionResult."""
    from repro.eval.scenarios import Testbed

    testbed = Testbed(bandwidth_bps=bandwidth_mbps * 1e6)
    return testbed.run_offload(model_name, wait_for_ack=wait_for_ack)


def ablation_report(which: str) -> str:
    """Run one ablation study; returns the rendered report text."""
    from repro.eval.ablations import study_report

    return study_report(which)


def failing_probe(message: str = "boom") -> None:
    """Raise immediately — the engine's fail-fast regression test uses it."""
    raise RuntimeError(message)


def slow_marker(marker_dir: str, name: str, seconds: float = 0.5) -> str:
    """Sleep, then drop a marker file proving this task ran to completion.

    The fail-fast test fans these out next to one :func:`failing_probe`
    and asserts that not every marker appears: a fail-slow engine would
    wait for all of them before re-raising.
    """
    import os
    import time

    time.sleep(seconds)
    path = os.path.join(marker_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(name)
    return name
