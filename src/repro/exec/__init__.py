"""Parallel campaign execution: engine, tasks, content-addressed cache.

``repro.exec`` is the layer between the CLI and the eval harness that
makes campaigns fast without making them different:

* :class:`~repro.exec.task.Task` / :func:`~repro.exec.task.execute_task` —
  picklable unit of work (dotted function path + kwargs) that captures its
  own telemetry and wall-clock cost;
* :class:`~repro.exec.engine.ExecutionEngine` — fans independent tasks
  across a ``ProcessPoolExecutor`` (``jobs=N``) and merges outcomes
  deterministically, so a parallel campaign report is byte-identical to
  the serial one;
* :class:`~repro.exec.cache.ResultCache` — content-addressed disk cache
  (task identity + repro version + source fingerprint), so unchanged
  scenarios are skipped entirely on re-runs.

See ``docs/PERFORMANCE.md`` for the design, the cache key scheme and the
benchmark numbers.
"""

from repro.exec.cache import CACHE_FORMAT, ResultCache, source_fingerprint, task_cache_key
from repro.exec.engine import EngineRunStats, ExecutionEngine, TaskStats
from repro.exec.task import Task, TaskError, TaskOutcome, execute_task

__all__ = [
    "CACHE_FORMAT",
    "EngineRunStats",
    "ExecutionEngine",
    "ResultCache",
    "Task",
    "TaskError",
    "TaskOutcome",
    "TaskStats",
    "execute_task",
    "source_fingerprint",
    "task_cache_key",
]
