"""Parallel campaign execution: engine, tasks, content-addressed cache.

``repro.exec`` is the layer between the CLI and the eval harness that
makes campaigns fast without making them different:

* :class:`~repro.exec.task.Task` / :func:`~repro.exec.task.execute_task` —
  picklable unit of work (dotted function path + kwargs) that captures its
  own telemetry and wall-clock cost;
* :class:`~repro.exec.engine.ExecutionEngine` — fans independent tasks
  across a ``ProcessPoolExecutor`` (``jobs=N``) and merges outcomes
  deterministically, so a parallel campaign report is byte-identical to
  the serial one;
* :class:`~repro.exec.cache.ResultCache` — content-addressed disk cache
  (task identity + repro version + source fingerprint), so unchanged
  scenarios are skipped entirely on re-runs;
* :class:`~repro.exec.cache.PlanCache` — the same content-addressed
  scheme for *compiled execution plans*, so pool workers rehydrate a
  serialized step graph instead of recompiling it once per process
  (``--plan-cache-dir`` / ``REPRO_PLAN_CACHE``).

See ``docs/PERFORMANCE.md`` for the design, the cache key scheme and the
benchmark numbers.
"""

from repro.exec.cache import (
    CACHE_FORMAT,
    PLAN_CACHE_ENV,
    PLAN_CACHE_FORMAT,
    PlanCache,
    PlanCacheStats,
    ResultCache,
    active_plan_cache,
    plan_cache_dir,
    plan_cache_stats,
    record_plan_cache_metrics,
    reset_plan_cache_stats,
    set_plan_cache,
    source_fingerprint,
    task_cache_key,
)
from repro.exec.engine import EngineRunStats, ExecutionEngine, TaskStats
from repro.exec.task import Task, TaskError, TaskOutcome, execute_task

__all__ = [
    "CACHE_FORMAT",
    "PLAN_CACHE_ENV",
    "PLAN_CACHE_FORMAT",
    "EngineRunStats",
    "ExecutionEngine",
    "PlanCache",
    "PlanCacheStats",
    "ResultCache",
    "Task",
    "TaskError",
    "TaskOutcome",
    "TaskStats",
    "active_plan_cache",
    "execute_task",
    "plan_cache_dir",
    "plan_cache_stats",
    "record_plan_cache_metrics",
    "reset_plan_cache_stats",
    "set_plan_cache",
    "source_fingerprint",
    "task_cache_key",
]
