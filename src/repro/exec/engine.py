"""The parallel execution engine.

:class:`ExecutionEngine` runs a list of :class:`~repro.exec.task.Task`
deterministically: outcomes come back in task order with merged telemetry
identical to a serial run, regardless of ``jobs`` and of which tasks were
served from the :class:`~repro.exec.cache.ResultCache`.

Determinism argument
--------------------
Every task is a pure function of its kwargs (the simulators inside are
seeded and start their virtual clocks at zero), so payloads are identical
wherever they run.  Telemetry is captured per task under a *shielding*
collector and re-announced in task order after the run — so any enclosing
``collect_metrics()`` (e.g. the CLI's ``--metrics-out``) observes the same
registries, in the same order, for inline, parallel and cached execution.
Floating-point merge order is therefore fixed, and exports are
byte-identical.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exec.cache import ResultCache
from repro.exec.task import Task, TaskError, TaskOutcome, execute_task
from repro.obs.metrics import announce_registry


@dataclass
class TaskStats:
    """One task's row in the engine's run report."""

    key: str
    wall_seconds: float
    cached: bool


@dataclass
class EngineRunStats:
    """What one ``ExecutionEngine.run`` did and what it cost."""

    jobs: int
    wall_seconds: float = 0.0
    tasks: List[TaskStats] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(1 for task in self.tasks if task.cached)

    @property
    def cache_misses(self) -> int:
        return len(self.tasks) - self.cache_hits

    @property
    def compute_seconds(self) -> float:
        """Sum of per-task costs — the serial-equivalent compute time."""
        return sum(task.wall_seconds for task in self.tasks)

    def as_dict(self) -> Dict:
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "compute_seconds": self.compute_seconds,
            "tasks": [
                {"key": t.key, "wall_seconds": t.wall_seconds, "cached": t.cached}
                for t in self.tasks
            ],
        }


class ExecutionEngine:
    """Runs tasks serially (``jobs=1``) or across a process pool.

    Parameters
    ----------
    jobs:
        Worker process count.  ``jobs=1`` executes inline (no pool, no
        pickling overhead) — the reference behaviour everything else must
        reproduce byte-for-byte.
    cache:
        Optional :class:`ResultCache`.  Hits skip execution entirely but
        still re-announce the cached telemetry and report the original
        compute cost.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.last_run: Optional[EngineRunStats] = None

    def run(self, tasks: Sequence[Task]) -> List[TaskOutcome]:
        """Execute all tasks; outcomes return in task order."""
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise TaskError(f"duplicate task keys in {keys!r}")
        started = time.perf_counter()
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)

        miss_indices: List[int] = []
        for index, task in enumerate(tasks):
            cached = self.cache.load(task) if self.cache is not None else None
            if cached is not None:
                outcomes[index] = cached
            else:
                miss_indices.append(index)

        if miss_indices:
            if self.jobs == 1 or len(miss_indices) == 1:
                for index in miss_indices:
                    outcomes[index] = execute_task(tasks[index])
            else:
                self._run_pool([tasks[i] for i in miss_indices], miss_indices, outcomes)
            if self.cache is not None:
                for index in miss_indices:
                    self.cache.store(tasks[index], outcomes[index])

        # Re-announce telemetry in task order so enclosing collectors see
        # exactly what a plain serial run would have announced.
        for outcome in outcomes:
            for registry in outcome.registries:
                announce_registry(registry)

        self.last_run = EngineRunStats(
            jobs=self.jobs,
            wall_seconds=time.perf_counter() - started,
            tasks=[
                TaskStats(o.key, o.wall_seconds, o.cached) for o in outcomes
            ],
        )
        return list(outcomes)

    def _run_pool(
        self,
        tasks: List[Task],
        indices: List[int],
        outcomes: List[Optional[TaskOutcome]],
    ) -> None:
        workers = min(self.jobs, len(tasks))
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            pending = {
                pool.submit(execute_task, task): index
                for task, index in zip(tasks, indices)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    outcomes[index] = future.result()  # re-raises task errors
        except BaseException:
            # Fail fast: a plain context exit would block until every
            # in-flight task finishes.  Drop everything not yet handed to
            # a worker, then shut down without waiting for the rest.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
