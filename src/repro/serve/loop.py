"""The event-driven serving core: enqueue, form, dispatch, resume.

:class:`ServingLoop` sits between the per-endpoint protocol loops and the
server's FIFO browser device.  A protocol loop that has restored a snapshot
no longer executes it inline; it :meth:`~ServingLoop.submit`\\ s a
:class:`~repro.serve.queue.WorkItem` and yields on ``item.done`` — a plain
simulator event.  One dispatcher process per batch queue watches arrivals,
asks its :class:`~repro.serve.former.BatchFormer` when to cut a batch, and
dispatches each batch as its own simulated process:

* **virtual time** — one ``device.execute`` for the whole batch, priced by
  :meth:`~repro.devices.device.Device.batch_forward_seconds` (the longest
  item at full cost, every other item at the profile's marginal fraction),
  queued FIFO behind whatever the device is doing;
* **real compute** — delegated to the ``compute`` callback the server
  installs (batched rows through ``EdgeServer.batch_partial_inference``
  for real batches, the untouched per-item path for batches of one, so
  single-item serving stays bitwise-identical to sequential serving);
* **accounting** — per item: queue wait (enqueue → batch execution start),
  a proportional share of the batch's device time, the batch size, and a
  deadline-miss flag; per server: the ``server_queue_depth`` gauge and the
  batch-size / queue-wait histograms.

Dispatchers never block on execution: a batch is handed to the device and
the dispatcher immediately goes back to forming, so the former's timeout
bound holds exactly — no item waits in the queue past its timeout (the
device's FIFO backlog is accounted as queue wait, not forming wait).

Determinism: dispatcher wake-ups, batch cuts, and completions are all
scheduled through the simulator's event queue at the current virtual
instant, so same-seed runs — including runs with mid-run edge kills, which
:meth:`ServingLoop.drain` folds into the ordinary error path — replay
byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.devices.device import Device
from repro.serve.former import BatchFormer, FormerError, make_former
from repro.serve.queue import SOLO_KEY, BatchQueue, WorkItem
from repro.sim import Simulator


class ServingDropped(RuntimeError):
    """A queued work item was dropped (server restart) before executing."""


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one server's continuous-batching loop."""

    #: most work items one batched forward may serve
    max_batch: int = 4
    #: longest an item may wait in the queue for a fuller batch, seconds
    batch_timeout_s: float = 0.005
    #: per-request completion deadline (enqueue-relative); None disables
    #: deadline accounting entirely
    deadline_s: Optional[float] = None
    #: batch-forming policy name (see :data:`repro.serve.FORMER_NAMES`)
    former: str = "size-timeout"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise FormerError("max_batch must be >= 1")
        if self.batch_timeout_s < 0:
            raise FormerError("batch_timeout_s must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise FormerError("deadline_s must be positive")


class ServingLoop:
    """Per-server continuous batching over the FIFO browser device."""

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        server_name: str,
        config: ServingConfig,
        *,
        compute: Optional[Callable[[List[WorkItem]], None]] = None,
    ):
        self.sim = sim
        self.device = device
        self.server_name = server_name
        self.config = config
        #: runs the real handlers for a dispatched batch; None = virtual
        #: time only (the former property tests drive the loop bare)
        self.compute = compute
        self._queues: Dict[str, BatchQueue] = {}
        self._formers: Dict[str, BatchFormer] = {}
        #: deterministic aggregates for reports (no registry scraping)
        self.stats: Dict[str, float] = {
            "batches": 0,
            "items": 0,
            "batched_items": 0,
            "max_batch": 0,
            "queue_wait_seconds": 0.0,
            "deadline_misses": 0,
            "dead_on_arrival": 0,
        }
        metrics = sim.metrics
        self._depth_gauge = metrics.gauge(
            "server_queue_depth",
            help="work items queued in the serving loop",
            server=server_name,
        )
        self._queue_wait_hist = metrics.histogram(
            "server_batch_queue_wait_seconds",
            help="enqueue-to-batch-start wait per served work item",
            server=server_name,
        )
        self._batch_items_hist = metrics.histogram(
            "server_serving_batch_items",
            help="work items per serving-loop dispatch (including solo)",
            server=server_name,
        )
        self._deadline_counter = metrics.counter(
            "server_deadline_misses_total",
            help="work items completing past their deadline",
            server=server_name,
        )
        self._doa_counter = metrics.counter(
            "server_deadline_dead_on_arrival_total",
            help="work items whose deadline had passed before dispatch",
            server=server_name,
        )

    # -- intake ---------------------------------------------------------------
    def submit(
        self,
        *,
        sender: str,
        request_id: int,
        browser: Any,
        event: Any,
        exec_seconds: float,
        model_id: Optional[str] = None,
        feature: Any = None,
        deadline_s: Optional[float] = None,
    ) -> WorkItem:
        """Enqueue one restored request; returns the item to wait on.

        ``deadline_s`` overrides the loop-wide ``config.deadline_s`` for
        this item (per-request SLOs ride in on the snapshot).
        """
        now = self.sim.now
        deadline = deadline_s if deadline_s is not None else self.config.deadline_s
        item = WorkItem(
            sender=sender,
            request_id=request_id,
            browser=browser,
            event=event,
            exec_seconds=exec_seconds,
            model_id=model_id,
            feature=feature,
            enqueued_at=now,
            deadline_at=(now + deadline if deadline is not None else None),
            done=self.sim.event(label=f"serve-done:{sender}:{request_id}"),
        )
        queue = self._queue_for(item.batch_key)
        queue.push(item)
        self._depth_gauge.set(self.depth())
        return item

    def depth(self) -> int:
        """Work items currently queued (not yet cut into a batch)."""
        return sum(len(queue) for queue in self._queues.values())

    # -- fault handling -------------------------------------------------------
    def drain(self, exc: BaseException) -> int:
        """Fail every *queued* item (server restart drops its queues).

        Items already cut into an executing batch are past the queue and
        complete normally, exactly like the sequential path's in-flight
        request surviving a restart.  Returns the number dropped.
        """
        dropped = 0
        for queue in self._queues.values():
            for item in queue.pop_prefix(len(queue)):
                item.done.fail(exc)
                dropped += 1
        self._depth_gauge.set(0)
        return dropped

    # -- dispatching ----------------------------------------------------------
    def _queue_for(self, key: str) -> BatchQueue:
        queue = self._queues.get(key)
        if queue is None:
            queue = BatchQueue(key=key)
            self._queues[key] = queue
            if key == SOLO_KEY:
                former = make_former("immediate", 1, 0.0)
            else:
                former = make_former(
                    self.config.former,
                    self.config.max_batch,
                    self.config.batch_timeout_s,
                )
            self._formers[key] = former
            self.sim.spawn(
                self._dispatcher(queue, former),
                label=f"serve-dispatch:{self.server_name}:{key}",
            )
        return queue

    def _dispatcher(self, queue: BatchQueue, former: BatchFormer):
        while True:
            if not queue.items:
                arrival = self.sim.event(
                    label=f"serve-arrival:{self.server_name}:{queue.key}"
                )
                queue.arrival = arrival
                yield arrival
                queue.arrival = None
                continue
            wait = former.wait_seconds(queue.items, self.sim.now)
            if wait > 0.0:
                # Sleep until the former's bound expires or more work
                # arrives — whichever is first re-evaluates the decision.
                arrival = self.sim.event(
                    label=f"serve-arrival:{self.server_name}:{queue.key}"
                )
                queue.arrival = arrival
                yield self.sim.any_of([self.sim.timeout(wait), arrival])
                queue.arrival = None
                continue
            batch = former.take(queue, self.sim.now)
            self._depth_gauge.set(self.depth())
            for item in batch:
                item.formed_at = self.sim.now
                item.batch_size = len(batch)
                if (
                    item.deadline_at is not None
                    and self.sim.now > item.deadline_at
                ):
                    # Dead on arrival: the deadline passed while the item
                    # sat in the queue.  Count the miss here, once — the
                    # completion check below would otherwise re-count it —
                    # and flag the item so the reply can say the result
                    # was already stale when work began.  The item still
                    # executes: a late answer beats none.
                    item.dead_on_arrival = True
                    self.stats["deadline_misses"] += 1
                    self.stats["dead_on_arrival"] += 1
                    self._deadline_counter.inc()
                    self._doa_counter.inc()
            # Hand the batch to the device and go straight back to
            # forming: the device FIFO serializes executions, and the
            # former's timeout stays a hard bound on forming wait.
            self.sim.spawn(
                self._run_batch(batch),
                label=(
                    f"serve-batch:{self.server_name}:{queue.key}"
                    f":{len(batch)}"
                ),
            )

    def _run_batch(self, batch: List[WorkItem]):
        per_item = [item.exec_seconds for item in batch]
        batch_seconds = self.device.batch_forward_seconds(per_item)
        yield self.device.execute(batch_seconds, label="batch-dnn")
        completed_at = self.sim.now
        started_at = completed_at - batch_seconds
        total = sum(per_item)
        if self.compute is not None:
            self.compute(batch)
        self.stats["batches"] += 1
        self.stats["items"] += len(batch)
        if len(batch) > 1:
            self.stats["batched_items"] += len(batch)
        self.stats["max_batch"] = max(self.stats["max_batch"], len(batch))
        self._batch_items_hist.observe(float(len(batch)))
        for item in batch:
            item.queue_seconds = max(0.0, started_at - item.enqueued_at)
            item.exec_share_seconds = (
                batch_seconds * (item.exec_seconds / total)
                if total > 0.0
                else batch_seconds / len(batch)
            )
            self.stats["queue_wait_seconds"] += item.queue_seconds
            self._queue_wait_hist.observe(item.queue_seconds)
            if (
                not item.dead_on_arrival
                and item.deadline_at is not None
                and completed_at > item.deadline_at
            ):
                self.stats["deadline_misses"] += 1
                self._deadline_counter.inc()
            item.done.succeed(item)
