"""Work items and per-model batch queues for the serving loop.

A :class:`WorkItem` is one offloaded rear-half inference after its snapshot
has been restored: everything the server needs to finish the request (the
browser runtime, the pending event, the virtual execution cost) plus the
accounting the protocol loop reads back once the item completes (queue
wait, per-item execution share, batch size, any handler error).

Items from concurrent protocol loops land in a :class:`BatchQueue` keyed by
model id — only same-model inferences can share a batched forward — and the
:class:`~repro.serve.loop.ServingLoop` dispatcher drains each queue under
its :class:`~repro.serve.former.BatchFormer` policy.  Items that carry no
batch hint (no model id / feature) go to the dedicated *solo* queue, which
dispatches immediately in batches of one, so unbatchable requests pay queue
accounting but never wait for company that cannot come.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.sim import SimEvent

#: queue key for items that cannot share a batch with anything
SOLO_KEY = "__solo__"


@dataclass
class WorkItem:
    """One enqueued rear-half inference, from restore to reply."""

    sender: str
    request_id: int
    #: the browser runtime the snapshot was restored into
    browser: Any
    #: the pending event whose handlers finish the inference
    event: Any
    #: virtual execution cost of this item alone (analytic cost model)
    exec_seconds: float
    #: model id shared by every item in this batch queue (None = solo)
    model_id: Optional[str] = None
    #: the feature tensor the rear half consumes (None = solo)
    feature: Any = None
    enqueued_at: float = 0.0
    #: absolute virtual time by which this item should complete
    deadline_at: Optional[float] = None
    #: succeeds with the item once its batch has executed
    done: SimEvent = None  # type: ignore[assignment]

    # -- filled in by the serving loop at dispatch / completion -----------
    #: when the former popped this item into a batch
    formed_at: float = 0.0
    #: enqueue -> batch execution start (forming wait + device FIFO wait)
    queue_seconds: float = 0.0
    #: this item's proportional share of the batch's device time
    exec_share_seconds: float = 0.0
    batch_size: int = 0
    #: the deadline had already passed when the former cut this item into
    #: a batch — the miss is counted once, at dequeue, not at completion
    dead_on_arrival: bool = False
    #: exception raised by the handler, if any (classified by the server)
    error: Optional[BaseException] = None

    @property
    def batchable(self) -> bool:
        return self.model_id is not None and self.feature is not None

    @property
    def batch_key(self) -> str:
        return self.model_id if self.batchable else SOLO_KEY


@dataclass
class BatchQueue:
    """FIFO of pending work items for one (server, model) pair."""

    key: str
    items: List[WorkItem] = field(default_factory=list)
    #: armed by the dispatcher while it sleeps; succeeded on push
    arrival: Optional[SimEvent] = None

    def push(self, item: WorkItem) -> None:
        self.items.append(item)
        if self.arrival is not None and not self.arrival.triggered:
            self.arrival.succeed(item)

    def pop_prefix(self, count: int) -> List[WorkItem]:
        """Remove and return the oldest ``count`` items (FIFO order)."""
        taken, self.items = self.items[:count], self.items[count:]
        return taken

    def __len__(self) -> int:
        return len(self.items)
