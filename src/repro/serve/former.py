"""Pluggable batch-forming policies for the serving loop.

A :class:`BatchFormer` answers one question per dispatcher wake-up: *given
the queued work items, dispatch a batch now, or sleep — and for how long?*
The contract mirrors :mod:`repro.fleet.policies`: formers are registered by
name (:data:`FORMER_NAMES` / :func:`make_former`), deterministic, and pure
functions of the queue and the virtual clock — no wall time, no randomness
— so serving runs replay bit-for-bit from one seed.

The two-method protocol keeps the dispatcher loop trivially non-spinning:

* :meth:`BatchFormer.wait_seconds` returns ``0.0`` to dispatch immediately,
  or a positive upper bound on how long to wait for more work.  Returning
  ``0.0`` **guarantees** :meth:`BatchFormer.take` pops at least one item.
* :meth:`BatchFormer.take` removes the batch (always a FIFO *prefix* of the
  queue, so per-client request order is preserved by construction).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.serve.queue import BatchQueue, WorkItem

#: tolerance for "the timeout has expired" on the float virtual clock
_EPS = 1e-9


class FormerError(RuntimeError):
    """Raised for unknown former names or invalid knobs."""


class BatchFormer:
    """Base class: decide when a queue's pending items become a batch."""

    name = "abstract"

    def wait_seconds(self, items: List[WorkItem], now: float) -> float:
        """``0.0`` = dispatch now; ``> 0`` = wait at most this long."""
        raise NotImplementedError

    def take(self, queue: BatchQueue, now: float) -> List[WorkItem]:
        """Pop the batch to dispatch (a non-empty FIFO prefix)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SizeTimeoutFormer(BatchFormer):
    """Dispatch on a full batch or when the oldest item's wait expires.

    The classic continuous-batching policy: a batch goes out as soon as
    ``max_batch`` items are queued, and no item ever waits more than
    ``timeout_s`` for company — under light load the timeout bounds added
    latency, under heavy load the size cap keeps batches forming
    back-to-back.
    """

    name = "size-timeout"

    def __init__(self, max_batch: int, timeout_s: float):
        if max_batch < 1:
            raise FormerError("max_batch must be >= 1")
        if timeout_s < 0:
            raise FormerError("timeout_s must be >= 0")
        self.max_batch = max_batch
        self.timeout_s = timeout_s

    def wait_seconds(self, items: List[WorkItem], now: float) -> float:
        if len(items) >= self.max_batch:
            return 0.0
        oldest_wait = now - items[0].enqueued_at
        remaining = self.timeout_s - oldest_wait
        return remaining if remaining > _EPS else 0.0

    def take(self, queue: BatchQueue, now: float) -> List[WorkItem]:
        return queue.pop_prefix(self.max_batch)


class DeadlineAwareFormer(SizeTimeoutFormer):
    """Size-timeout forming plus per-request deadline pressure.

    Identical to :class:`SizeTimeoutFormer`, except that a queued item
    whose deadline slack (time left minus its own execution cost) has run
    out forces an immediate dispatch — a request at risk of missing its
    deadline stops waiting for a fuller batch.
    """

    name = "deadline"

    def wait_seconds(self, items: List[WorkItem], now: float) -> float:
        wait = super().wait_seconds(items, now)
        if wait <= 0.0:
            return 0.0
        for item in items:
            if item.deadline_at is None:
                continue
            slack = item.deadline_at - now - item.exec_seconds
            if slack <= _EPS:
                return 0.0
            wait = min(wait, slack)
        return wait


class ImmediateFormer(BatchFormer):
    """Never wait: dispatch whatever is queued, up to the size cap.

    With ``max_batch=1`` this is exactly sequential serving — the solo
    queue uses it so unbatchable items pay no forming delay.
    """

    name = "immediate"

    def __init__(self, max_batch: int = 1):
        if max_batch < 1:
            raise FormerError("max_batch must be >= 1")
        self.max_batch = max_batch

    def wait_seconds(self, items: List[WorkItem], now: float) -> float:
        return 0.0

    def take(self, queue: BatchQueue, now: float) -> List[WorkItem]:
        return queue.pop_prefix(self.max_batch)


#: registry used by the CLI, the benchmark stage, and the serving config
FORMER_NAMES = ("size-timeout", "deadline", "immediate")

_FACTORIES: Dict[str, Callable[[int, float], BatchFormer]] = {
    "size-timeout": lambda max_batch, timeout_s: SizeTimeoutFormer(
        max_batch, timeout_s
    ),
    "deadline": lambda max_batch, timeout_s: DeadlineAwareFormer(
        max_batch, timeout_s
    ),
    "immediate": lambda max_batch, timeout_s: ImmediateFormer(max_batch),
}


def make_former(
    name: str, max_batch: int, timeout_s: float
) -> BatchFormer:
    """Build a batch former by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise FormerError(
            f"unknown former {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(max_batch, timeout_s)
