"""Continuous batching for the edge server (the RRTO-style serving core).

Under heavy traffic many clients offload the *same* rear-half model at
once; serving them one blocking request at a time walks N identical layer
stacks N times while the batched kernels sit idle.  This package is the
transparent layer between the protocol loops and the model that fixes
that: restored requests become :class:`~repro.serve.queue.WorkItem`\\ s in
per-model :class:`~repro.serve.queue.BatchQueue`\\ s, a pluggable
:class:`~repro.serve.former.BatchFormer` decides when queued items become
a batch, and the :class:`~repro.serve.loop.ServingLoop` dispatches each
batch through one amortized device execution plus one batched forward.

See ``docs/SERVING.md`` for the design and the determinism contract.
"""

from repro.serve.former import (
    BatchFormer,
    DeadlineAwareFormer,
    FORMER_NAMES,
    FormerError,
    ImmediateFormer,
    SizeTimeoutFormer,
    make_former,
)
from repro.serve.loop import ServingConfig, ServingDropped, ServingLoop
from repro.serve.queue import SOLO_KEY, BatchQueue, WorkItem

__all__ = [
    "BatchFormer",
    "BatchQueue",
    "DeadlineAwareFormer",
    "FORMER_NAMES",
    "FormerError",
    "ImmediateFormer",
    "SOLO_KEY",
    "ServingConfig",
    "ServingDropped",
    "ServingLoop",
    "SizeTimeoutFormer",
    "WorkItem",
    "make_former",
]
