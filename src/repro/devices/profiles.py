"""Calibrated device profiles.

Throughputs are *effective* GFLOP/s for DNN layers executed by a JavaScript
ML framework (CaffeJS on WebKit) — far below hardware peak, which is exactly
the regime the paper measures ("since Caffe.js cannot exploit GPUs yet, the
server execution time is much longer than it should be").

Calibration rationale (see also ``repro.eval.calibration``):

* GoogLeNet forward is ~3.2 GFLOPs.  The paper's Fig. 6 shows client-side
  inference of tens of seconds and server-side inference of a few seconds.
  ``CLIENT_CONV_GFLOPS = 0.16`` puts the Odroid client near 20 s and
  ``SERVER_CONV_GFLOPS = 1.30`` puts the x86 server near 2.5 s, preserving
  the paper's ~8x client/server gap.
* fc layers are memory-bound in JS; they get a lower effective rate.
* Snapshot capture/restore rates are tuned so that a ~0.1 MB snapshot costs
  milliseconds (the paper: "negligible") while multi-MB feature payloads
  cost a visible-but-small fraction of a second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of a machine's effective DNN performance."""

    name: str
    #: effective throughput per layer kind, in GFLOP/s
    gflops_by_kind: Mapping[str, float] = field(default_factory=dict)
    #: fallback throughput for layer kinds not listed above
    default_gflops: float = 0.5
    #: fixed dispatch overhead added per layer execution (framework cost)
    per_layer_overhead_s: float = 0.0
    #: optional memory-bandwidth term: writing a layer's output costs
    #: output_bytes / mem_bw_bps on top of the compute time.  None (the
    #: default, used by the calibrated paper profiles) disables it; synthetic
    #: memory-bound profiles use it to study predictor feature sets.
    mem_bw_bps: Optional[float] = None
    #: rate at which the browser serializes state into snapshot text, bytes/s
    snapshot_serialize_bps: float = 50e6
    #: rate at which the browser parses/executes snapshot text, bytes/s
    snapshot_restore_bps: float = 80e6
    #: fixed cost of taking / restoring any snapshot (DOM walk, page setup)
    snapshot_fixed_s: float = 0.01
    #: marginal cost of adding one more sample to a batched forward, as a
    #: fraction of that sample's standalone cost.  The batched kernels
    #: (im2col_batch + broadcast GEMM) amortize dispatch and weight-matrix
    #: reuse across the batch; the measured smallnet batch-8 speedup is
    #: ~2.3x per image, i.e. each extra sample costs ~1/2.3 ≈ 0.45 of a
    #: solo forward.  1.0 disables amortization (a batch costs the sum of
    #: its items); the first item always costs its full solo time.
    batch_marginal_fraction: float = 0.45
    memory_bytes: int = 2 * 1024**3
    cores: int = 4

    def gflops_for(self, kind: str) -> float:
        """Effective GFLOP/s for a layer kind."""
        return float(self.gflops_by_kind.get(kind, self.default_gflops))

    def seconds_for(self, kind: str, flops: float, output_bytes: int = 0) -> float:
        """Time to execute ``flops`` floating point ops of a given kind.

        When the profile has a memory-bandwidth term, writing the layer's
        output adds ``output_bytes / mem_bw_bps``.
        """
        rate = self.gflops_for(kind) * 1e9
        seconds = flops / rate + self.per_layer_overhead_s
        if self.mem_bw_bps and output_bytes:
            seconds += output_bytes / self.mem_bw_bps
        return seconds


def odroid_xu4_client() -> DeviceProfile:
    """The paper's client: Odroid-XU4 (ARM big.LITTLE 2.0/1.5 GHz, 2 GB)."""
    return DeviceProfile(
        name="odroid-xu4",
        gflops_by_kind={
            "conv": 0.16,
            "fc": 0.10,
            "pool": 0.30,
            "relu": 0.60,
            "lrn": 0.20,
            "softmax": 0.30,
            "concat": 1.00,
            "dropout": 2.00,
            "input": 10.0,
        },
        default_gflops=0.20,
        per_layer_overhead_s=0.002,
        snapshot_serialize_bps=30e6,
        snapshot_restore_bps=45e6,
        snapshot_fixed_s=0.015,
        memory_bytes=2 * 1024**3,
        cores=4,
    )


def edge_server_x86(speedup: float = 1.0) -> DeviceProfile:
    """The paper's edge server: x86 3.4 GHz quad-core, 16 GB, no GPU.

    ``speedup`` scales every throughput; used by ablations (e.g. the paper's
    remark that WebGL would give ~80x on DNN inference).
    """
    base = {
        "conv": 1.30,
        "fc": 0.80,
        "pool": 2.40,
        "relu": 5.00,
        "lrn": 1.60,
        "softmax": 2.40,
        "concat": 8.00,
        "dropout": 16.0,
        "input": 80.0,
    }
    return DeviceProfile(
        name="edge-x86" if speedup == 1.0 else f"edge-x86-{speedup:g}x",
        gflops_by_kind={kind: rate * speedup for kind, rate in base.items()},
        default_gflops=1.6 * speedup,
        per_layer_overhead_s=0.0005,
        snapshot_serialize_bps=120e6,
        snapshot_restore_bps=180e6,
        snapshot_fixed_s=0.005,
        memory_bytes=16 * 1024**3,
        cores=4,
    )


def gpu_edge_server() -> DeviceProfile:
    """A WebGL-accelerated edge server (paper §IV.A: "~80x speedup").

    Used only in forward-looking ablations; not part of the paper's testbed.
    """
    return edge_server_x86(speedup=80.0)


#: registry used by CLI-ish helpers and scenario builders
PRESETS: Dict[str, DeviceProfile] = {}


def register_preset(profile: DeviceProfile) -> DeviceProfile:
    PRESETS[profile.name] = profile
    return profile


for _factory in (odroid_xu4_client, edge_server_x86, gpu_edge_server):
    register_preset(_factory())
