"""Simple client-side energy accounting (extension, not in the paper).

Offloading work like MAUI [22] motivates offloading by *energy*, not just
latency; the paper focuses on latency but the same timeline lets us account
energy for free.  The model is the standard three-state one: the client
draws ``compute_w`` while executing, ``radio_w`` while transmitting or
receiving, and ``idle_w`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyModel:
    """Average power draw per client state, in watts."""

    compute_w: float = 4.5  # Odroid-XU4 under full CPU load
    radio_w: float = 1.2  # active Wi-Fi transfer
    idle_w: float = 0.5

    def __post_init__(self) -> None:
        if min(self.compute_w, self.radio_w, self.idle_w) < 0:
            raise ValueError("power draws must be non-negative")

    def energy_joules(
        self,
        compute_s: float = 0.0,
        radio_s: float = 0.0,
        idle_s: float = 0.0,
    ) -> float:
        """Energy for a breakdown of client time."""
        if min(compute_s, radio_s, idle_s) < 0:
            raise ValueError("durations must be non-negative")
        return (
            self.compute_w * compute_s
            + self.radio_w * radio_s
            + self.idle_w * idle_s
        )

    def local_execution_joules(self, compute_s: float) -> float:
        """Energy when the client does everything itself."""
        return self.energy_joules(compute_s=compute_s)

    def offloaded_joules(
        self, client_compute_s: float, transfer_s: float, wait_s: float
    ) -> float:
        """Energy when part of the work runs remotely.

        The client computes for ``client_compute_s`` (snapshot work plus any
        front-partition inference), keeps the radio active for
        ``transfer_s`` and idles while the server computes for ``wait_s``.
        """
        return self.energy_joules(
            compute_s=client_compute_s, radio_s=transfer_s, idle_s=wait_s
        )
