"""Neurosurgeon-style per-layer latency prediction.

The paper decides partition points using "a prediction model for the DNN
layers, as used in Neurosurgeon [16]".  Neurosurgeon fits, per layer *type*,
a small regression from layer configuration features to measured latency,
then composes per-layer predictions into end-to-end estimates without ever
running the target network.

We reproduce that: :class:`LatencyPredictor` fits one linear model per layer
kind, ``t = a * GFLOPs + b``, by ordinary least squares over profiled
samples.  Samples come from profiling runs on a device (optionally with
measurement noise), so the predictor is an honest model *of* the device, not
an alias for it — prediction error is real and is itself evaluated in an
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.device import Device
from repro.devices.profiles import DeviceProfile
from repro.sim import SeededRng


@dataclass(frozen=True)
class ProfiledSample:
    """One observed (layer execution, latency) pair."""

    kind: str
    flops: float
    seconds: float
    #: layer output size, for multivariate models (0 = unknown)
    output_bytes: int = 0


@dataclass(frozen=True)
class _KindModel:
    slope_s_per_gflop: float
    intercept_s: float

    def predict(self, flops: float) -> float:
        return max(0.0, self.slope_s_per_gflop * (flops / 1e9) + self.intercept_s)


class LatencyPredictor:
    """Per-layer-kind linear latency models fit by least squares."""

    def __init__(self) -> None:
        self._models: Dict[str, _KindModel] = {}
        self._fallback: Optional[_KindModel] = None

    # -- fitting ---------------------------------------------------------------
    def fit(self, samples: Iterable[ProfiledSample]) -> "LatencyPredictor":
        """Fit one model per layer kind present in ``samples``."""
        by_kind: Dict[str, List[ProfiledSample]] = {}
        all_samples: List[ProfiledSample] = []
        for sample in samples:
            by_kind.setdefault(sample.kind, []).append(sample)
            all_samples.append(sample)
        if not all_samples:
            raise ValueError("cannot fit a latency predictor on zero samples")
        for kind, kind_samples in by_kind.items():
            self._models[kind] = self._fit_one(kind_samples)
        self._fallback = self._fit_one(all_samples)
        return self

    @staticmethod
    def _fit_one(samples: Sequence[ProfiledSample]) -> _KindModel:
        gflops = np.array([sample.flops / 1e9 for sample in samples])
        seconds = np.array([sample.seconds for sample in samples])
        if len(samples) == 1 or np.ptp(gflops) == 0:
            # Degenerate: a single operating point; model it as pure rate.
            point = samples[0]
            if point.flops > 0:
                return _KindModel(point.seconds / (point.flops / 1e9), 0.0)
            return _KindModel(0.0, point.seconds)
        design = np.vstack([gflops, np.ones_like(gflops)]).T
        (slope, intercept), *_ = np.linalg.lstsq(design, seconds, rcond=None)
        return _KindModel(float(slope), float(intercept))

    # -- prediction ---------------------------------------------------------------
    def predict_layer(self, kind: str, flops: float, output_bytes: int = 0) -> float:
        """Predicted latency in seconds for one layer execution.

        ``output_bytes`` is accepted (and ignored) so flops-only and
        multivariate predictors are drop-in interchangeable.
        """
        model = self._models.get(kind, self._fallback)
        if model is None:
            raise RuntimeError("predictor has not been fitted")
        return model.predict(flops)

    def predict_forward(self, costs: Iterable) -> float:
        """Predicted latency for a sequence of LayerCost-like objects."""
        return sum(
            self.predict_layer(
                cost.kind, cost.flops, output_bytes=cost.output_elements * 4
            )
            for cost in costs
        )

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted(self._models))


@dataclass(frozen=True)
class _KindModelMV:
    """Per-kind multivariate linear model: t = a*GFLOPs + b*out_MB + c."""

    coef_gflops: float
    coef_out_mb: float
    intercept_s: float

    def predict(self, flops: float, output_bytes: int) -> float:
        return max(
            0.0,
            self.coef_gflops * (flops / 1e9)
            + self.coef_out_mb * (output_bytes / 1e6)
            + self.intercept_s,
        )


class MultivariatePredictor:
    """Neurosurgeon-style predictor with compute *and* memory features.

    Where :class:`LatencyPredictor` regresses latency on FLOPs alone, this
    model adds the layer's output size — the feature that matters on
    memory-bandwidth-bound devices (cheap layers writing huge activations).
    Same interface; fit by per-kind least squares with ridge damping.
    """

    def __init__(self, ridge: float = 1e-8):
        self.ridge = ridge
        self._models: Dict[str, _KindModelMV] = {}
        self._fallback: Optional[_KindModelMV] = None

    def fit(self, samples: Iterable[ProfiledSample]) -> "MultivariatePredictor":
        by_kind: Dict[str, List[ProfiledSample]] = {}
        all_samples: List[ProfiledSample] = []
        for sample in samples:
            by_kind.setdefault(sample.kind, []).append(sample)
            all_samples.append(sample)
        if not all_samples:
            raise ValueError("cannot fit a latency predictor on zero samples")
        for kind, kind_samples in by_kind.items():
            self._models[kind] = self._fit_one(kind_samples)
        self._fallback = self._fit_one(all_samples)
        return self

    def _fit_one(self, samples: Sequence[ProfiledSample]) -> _KindModelMV:
        design = np.array(
            [
                [s.flops / 1e9, s.output_bytes / 1e6, 1.0]
                for s in samples
            ]
        )
        target = np.array([s.seconds for s in samples])
        gram = design.T @ design + self.ridge * np.eye(3)
        coef = np.linalg.solve(gram, design.T @ target)
        return _KindModelMV(float(coef[0]), float(coef[1]), float(coef[2]))

    def predict_layer(self, kind: str, flops: float, output_bytes: int = 0) -> float:
        model = self._models.get(kind, self._fallback)
        if model is None:
            raise RuntimeError("predictor has not been fitted")
        return model.predict(flops, output_bytes)

    def predict_forward(self, costs: Iterable) -> float:
        return sum(
            self.predict_layer(
                cost.kind, cost.flops, output_bytes=cost.output_elements * 4
            )
            for cost in costs
        )

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted(self._models))


def profiling_grid(
    kinds: Sequence[str] = ("conv", "pool", "fc", "relu"),
    flops_points: Sequence[float] = (1e7, 1e8, 5e8, 2e9),
    output_element_points: Sequence[int] = (10_000, 100_000, 1_000_000),
):
    """A synthetic profiling workload decoupling compute from output size.

    Neurosurgeon profiles each layer type over a *grid* of configurations,
    not just the layers of one network — that is what lets a regression
    separate compute cost from memory cost (one network's layers tend to
    have collinear FLOPs and activation sizes).
    """
    from repro.nn.cost import LayerCost

    costs = []
    for kind in kinds:
        for flops in flops_points:
            for elements in output_element_points:
                costs.append(
                    LayerCost(
                        name=f"grid/{kind}/{flops:g}/{elements}",
                        kind=kind,
                        flops=flops,
                        params=0,
                        output_shape=(int(elements), 1, 1),
                        spine_index=0,
                    )
                )
    return costs


def profile_device(
    profile: DeviceProfile,
    costs: Iterable,
    repetitions: int = 3,
    noise: float = 0.03,
    rng: Optional[SeededRng] = None,
) -> List[ProfiledSample]:
    """Generate profiling samples by "running" layers on a device profile.

    This mimics the offline profiling stage of Neurosurgeon: each layer is
    executed ``repetitions`` times and the observed latency carries
    multiplicative measurement noise of relative magnitude ``noise``.
    """
    rng = rng or SeededRng(0, f"profiling/{profile.name}")
    samples: List[ProfiledSample] = []
    for cost in costs:
        output_bytes = cost.output_elements * 4
        true_seconds = profile.seconds_for(
            cost.kind, cost.flops, output_bytes=output_bytes
        )
        for _ in range(repetitions):
            observed = true_seconds * (1.0 + rng.gauss(0.0, noise))
            samples.append(
                ProfiledSample(
                    kind=cost.kind,
                    flops=cost.flops,
                    seconds=max(0.0, observed),
                    output_bytes=output_bytes,
                )
            )
    return samples


def fit_predictor_for(
    profile: DeviceProfile,
    costs: Iterable,
    repetitions: int = 3,
    noise: float = 0.03,
    rng: Optional[SeededRng] = None,
) -> LatencyPredictor:
    """Profile a device over ``costs`` and fit a predictor in one step."""
    samples = profile_device(profile, costs, repetitions=repetitions, noise=noise, rng=rng)
    return LatencyPredictor().fit(samples)


def prediction_error(predictor, device: Device, costs: Sequence) -> float:
    """Mean relative error of per-layer predictions against ground truth.

    Works with any predictor exposing ``predict_layer(kind, flops,
    output_bytes=...)``.
    """
    errors = []
    for cost in costs:
        truth = device.layer_seconds(cost)
        if truth <= 0:
            continue
        predicted = predictor.predict_layer(
            cost.kind, cost.flops, output_bytes=cost.output_elements * 4
        )
        errors.append(abs(predicted - truth) / truth)
    if not errors:
        return 0.0
    return float(np.mean(errors))
