"""Device models and latency prediction.

The paper's testbed is an Odroid-XU4 client (ARM big.LITTLE, 2.0/1.5 GHz)
and an x86 edge server (3.4 GHz quad-core), both running DNN inference in
JavaScript (CaffeJS on WebKit, no GPU).  We model each machine as a
:class:`~repro.devices.device.Device` with calibrated per-layer-type
effective throughputs, and reproduce the Neurosurgeon-style per-layer
latency *prediction model* the paper uses to pick partition points
(:mod:`repro.devices.predictor`).
"""

from repro.devices.profiles import (
    DeviceProfile,
    edge_server_x86,
    gpu_edge_server,
    odroid_xu4_client,
)
from repro.devices.device import Device, FifoResource
from repro.devices.predictor import LatencyPredictor, ProfiledSample
from repro.devices.energy import EnergyModel

__all__ = [
    "Device",
    "DeviceProfile",
    "EnergyModel",
    "FifoResource",
    "LatencyPredictor",
    "ProfiledSample",
    "edge_server_x86",
    "gpu_edge_server",
    "odroid_xu4_client",
]
