"""Runtime device model: executing layers and snapshots on virtual time.

A :class:`Device` combines a static :class:`~repro.devices.profiles.DeviceProfile`
with a simulator handle.  Work is expressed as *durations* derived from the
analytic cost model; :meth:`Device.execute` turns a duration into a simulated
busy period on the device's single FIFO execution resource (one browser tab
executes one script at a time, like a real JS main thread).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Iterable, Optional

from repro.devices.profiles import DeviceProfile
from repro.sim import SimEvent, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.nn.cost import LayerCost


class FifoResource:
    """A capacity-1 resource with FIFO waiters (a mutex on virtual time)."""

    def __init__(self, sim: Simulator, name: str = "resource"):
        self.sim = sim
        self.name = name
        self._busy = False
        self._waiters: Deque[SimEvent] = deque()

    @property
    def busy(self) -> bool:
        return self._busy

    def acquire(self) -> SimEvent:
        """Returns an event that succeeds once the resource is held."""
        event = self.sim.event(label=f"acquire:{self.name}")
        if not self._busy:
            self._busy = True
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if not self._busy:
            raise RuntimeError(f"release of idle resource {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._busy = False


class Device:
    """A simulated machine executing DNN layers and snapshot operations."""

    def __init__(self, sim: Simulator, profile: DeviceProfile):
        self.sim = sim
        self.profile = profile
        self.cpu = FifoResource(sim, name=f"cpu:{profile.name}")
        self.busy_seconds = 0.0
        self._queue_wait = sim.metrics.histogram(
            "device_queue_wait_seconds",
            help="time work items waited for the device's FIFO resource",
            device=profile.name,
        )
        self._busy_counter = sim.metrics.counter(
            "device_busy_seconds_total", help="seconds the device was executing",
            device=profile.name,
        )

    @property
    def name(self) -> str:
        return self.profile.name

    # -- analytic durations ---------------------------------------------------
    def layer_seconds(self, cost: "LayerCost") -> float:
        """Predicted wall time for one layer on this device."""
        return self.profile.seconds_for(
            cost.kind, cost.flops, output_bytes=cost.output_elements * 4
        )

    def forward_seconds(self, costs: Iterable["LayerCost"]) -> float:
        """Wall time for a sequence of layers."""
        return sum(self.layer_seconds(cost) for cost in costs)

    def batch_forward_seconds(self, item_seconds: Iterable[float]) -> float:
        """Wall time for one *batched* forward serving several work items.

        The longest item pays full price; every other item pays only the
        profile's marginal fraction of its own solo cost (the batched
        kernels amortize dispatch and weight-matrix reuse).  A batch of
        one therefore costs exactly :meth:`forward_seconds` of that item,
        which keeps single-item serving identical to sequential serving.
        """
        seconds = list(item_seconds)
        if not seconds:
            return 0.0
        longest = max(seconds)
        marginal = self.profile.batch_marginal_fraction
        return longest + marginal * (sum(seconds) - longest)

    def snapshot_capture_seconds(self, size_bytes: int) -> float:
        """Time to serialize ``size_bytes`` of snapshot text."""
        return (
            self.profile.snapshot_fixed_s
            + size_bytes / self.profile.snapshot_serialize_bps
        )

    def snapshot_restore_seconds(self, size_bytes: int) -> float:
        """Time to parse and execute ``size_bytes`` of snapshot text."""
        return (
            self.profile.snapshot_fixed_s
            + size_bytes / self.profile.snapshot_restore_bps
        )

    # -- simulated execution -----------------------------------------------------
    def execute(self, seconds: float, label: str = "work") -> SimEvent:
        """Occupy the device for ``seconds``; returns a completion event.

        Work items queue FIFO behind whatever the device is already doing,
        so e.g. a server busy restoring one client's snapshot delays the
        next client's request — the behaviour multi-tenant ablations need.
        """
        if seconds < 0:
            raise ValueError(f"cannot execute negative work ({seconds!r}s)")
        done = self.sim.event(label=f"{self.name}:{label}")
        requested_at = self.sim.now

        def run(_event: Optional[SimEvent]) -> None:
            self._queue_wait.observe(self.sim.now - requested_at)

            def finish() -> None:
                self.busy_seconds += seconds
                self._busy_counter.inc(seconds)
                self.cpu.release()
                done.succeed(seconds)

            self.sim.schedule(seconds, finish, label=f"{self.name}:{label}:done")

        self.cpu.acquire().add_callback(run)
        return done

    def execute_layers(self, costs: Iterable["LayerCost"], label: str = "dnn") -> SimEvent:
        """Occupy the device for a whole forward pass."""
        return self.execute(self.forward_seconds(costs), label=label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.name})"
