"""The event system: listeners, dispatch, custom events.

Two properties matter for offloading:

* Listeners are registered as *(element id, event type) → handler function
  name* — names, not closures — so the listener table serializes into a
  snapshot and rebinds cleanly after restore (the paper's snapshot must
  re-register ``addEventListener`` calls on the server).
* Dispatch can be *intercepted*: the offloading client agent marks certain
  event types (e.g. the ``front_complete`` custom event in Fig. 5) as
  offload points; when such an event fires, the runtime does not run the
  handler locally but hands the event to the interceptor, which snapshots
  and ships it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """A dispatched event instance."""

    event_type: str
    target_id: str
    payload: Any = None


@dataclass
class Listener:
    element_id: str
    event_type: str
    handler_name: str


class EventSystem:
    """Listener table plus dispatch with interception support."""

    def __init__(self) -> None:
        self._listeners: List[Listener] = []
        #: event types whose dispatch is diverted to the interceptor
        self.offload_event_types: set = set()
        self._interceptor: Optional[Callable[[Event], None]] = None
        self.dispatch_log: List[Event] = []

    # -- registration ------------------------------------------------------------
    def add_listener(self, element_id: str, event_type: str, handler_name: str) -> None:
        listener = Listener(element_id, event_type, handler_name)
        if not self.has_listener(element_id, event_type, handler_name):
            self._listeners.append(listener)

    def remove_listener(self, element_id: str, event_type: str, handler_name: str) -> None:
        self._listeners = [
            listener
            for listener in self._listeners
            if not (
                listener.element_id == element_id
                and listener.event_type == event_type
                and listener.handler_name == handler_name
            )
        ]

    def has_listener(self, element_id: str, event_type: str, handler_name: str) -> bool:
        return any(
            listener.element_id == element_id
            and listener.event_type == event_type
            and listener.handler_name == handler_name
            for listener in self._listeners
        )

    def handlers_for(self, element_id: str, event_type: str) -> List[str]:
        return [
            listener.handler_name
            for listener in self._listeners
            if listener.element_id == element_id and listener.event_type == event_type
        ]

    def all_listeners(self) -> List[Tuple[str, str, str]]:
        """Serializable listener table."""
        return [
            (listener.element_id, listener.event_type, listener.handler_name)
            for listener in self._listeners
        ]

    def restore_listeners(self, listeners) -> None:
        self._listeners = [Listener(*entry) for entry in listeners]

    # -- interception --------------------------------------------------------------
    def mark_offload_event(self, event_type: str, target_id: Optional[str] = None) -> None:
        """Divert future dispatches to the interceptor.

        ``target_id=None`` intercepts the event type on any element;
        otherwise only dispatches targeting that element are diverted.
        """
        self.offload_event_types.add((event_type, target_id))

    def unmark_offload_event(self, event_type: str, target_id: Optional[str] = None) -> None:
        self.offload_event_types.discard((event_type, target_id))

    def set_interceptor(self, interceptor: Optional[Callable[[Event], None]]) -> None:
        self._interceptor = interceptor

    def should_intercept(self, event: Event) -> bool:
        if self._interceptor is None:
            return False
        return (
            (event.event_type, event.target_id) in self.offload_event_types
            or (event.event_type, None) in self.offload_event_types
        )

    def intercept(self, event: Event) -> None:
        if self._interceptor is None:
            raise RuntimeError("no interceptor installed")
        self._interceptor(event)
