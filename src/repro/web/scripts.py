"""App scripts: handler functions stored and shipped as source text.

A web app's code travels inside its snapshot ("the snapshot will contain
... the functions of the app"), so handlers are kept as *source*, compiled
into callables inside a restricted namespace on whatever runtime executes
them — client or edge server.  A handler is any top-level function taking
the single ``ctx`` argument (:class:`ScriptContext`), through which it
reaches the DOM, the global heap, the loaded models, and event dispatch —
mirroring the paper's Fig. 2 / Fig. 5 example code.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Any, Callable, Dict, List

import numpy as np

from repro.web.values import UNDEFINED, JSArray, JSClosure, JSObject, TypedArray

if TYPE_CHECKING:  # pragma: no cover
    from repro.web.runtime import WebRuntime


class ScriptError(RuntimeError):
    """Raised when app script source cannot be compiled or executed."""


#: builtins exposed to app scripts — enough for app logic, no I/O, no import
_SCRIPT_BUILTINS = {
    name: __builtins__[name] if isinstance(__builtins__, dict) else getattr(__builtins__, name)
    for name in (
        "abs", "all", "any", "bool", "dict", "enumerate", "float", "int",
        "len", "list", "max", "min", "range", "round", "sorted", "str",
        "sum", "tuple", "zip", "print", "isinstance", "ValueError",
        "RuntimeError", "KeyError",
    )
}


def _script_namespace() -> Dict[str, Any]:
    return {
        "__builtins__": dict(_SCRIPT_BUILTINS),
        "np": np,
        "JSObject": JSObject,
        "JSArray": JSArray,
        "TypedArray": TypedArray,
        "UNDEFINED": UNDEFINED,
    }


def compile_functions(source: str) -> Dict[str, Callable]:
    """Compile app script source into its top-level handler functions."""
    namespace = _script_namespace()
    try:
        exec(compile(source, "<app-script>", "exec"), namespace)
    except SyntaxError as exc:
        raise ScriptError(f"app script does not parse: {exc}") from exc
    return {
        name: value
        for name, value in namespace.items()
        if callable(value) and getattr(value, "__module__", None) is None
        and not name.startswith("_") and name not in ("JSObject", "JSArray", "TypedArray")
    }


def split_functions(source: str) -> Dict[str, str]:
    """Map each top-level function to its own source segment.

    Used by the snapshot size optimizations that drop functions unreachable
    from any registered event listener.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ScriptError(f"app script does not parse: {exc}") from exc
    segments: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            segment = ast.get_source_segment(source, node)
            if segment is None:  # pragma: no cover - only for synthetic ASTs
                continue
            segments[node.name] = segment
    return segments


def referenced_names(function_source: str) -> List[str]:
    """All identifiers a function's body mentions (callees, globals)."""
    tree = ast.parse(function_source)
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Handler names are passed as string literals to
            # add_listener/dispatch; treat them as references too.
            names.add(node.value)
    return sorted(names)


class Console:
    """Captured console.log output."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def log(self, *parts: Any) -> None:
        self.lines.append(" ".join(str(part) for part in parts))


class ScriptContext:
    """What a handler sees as ``ctx``: the app's window object, roughly."""

    def __init__(self, runtime: "WebRuntime"):
        self._runtime = runtime

    @property
    def globals(self) -> Dict[str, Any]:
        """The app's global variables (the JS heap roots)."""
        return self._runtime.globals

    @property
    def document(self):
        return self._runtime.document

    @property
    def models(self):
        """Loaded NN models, keyed by the app's local name for them."""
        return self._runtime.app_models

    @property
    def console(self) -> Console:
        return self._runtime.console

    @property
    def event(self):
        """The event currently being handled (or None)."""
        return self._runtime.current_event

    def dispatch_event(self, event_type: str, target_id: str, payload: Any = None) -> None:
        """dispatchEvent: runs synchronously, may be intercepted for offload."""
        self._runtime.dispatch(event_type, target_id, payload)

    def add_listener(self, element_id: str, event_type: str, handler_name: str) -> None:
        self._runtime.add_listener(element_id, event_type, handler_name)

    def make_closure(self, function_name: str, **env: Any) -> JSClosure:
        """Create a closure over a named script function (see [11])."""
        if function_name not in self._runtime.functions:
            raise ScriptError(
                f"cannot close over unknown function {function_name!r}"
            )
        return JSClosure(function_name, env)

    def call(self, closure: JSClosure, *args: Any) -> Any:
        """Invoke a closure: its function receives (ctx, env, *args)."""
        return self._runtime.call_closure(closure, *args)
