"""The web runtime: one browser page executing one app.

A :class:`WebRuntime` is the unit the offloading system snapshots: its
global heap, DOM, listener table, app script source, model references and
any pending event together *are* the app execution state.  Runtimes exist
on the client and on the edge server; restoring a snapshot into a fresh
server-side runtime and dispatching the pending event is exactly "running
the snapshot on its browser".

Models are deliberately held *by reference* (app-local name → model id →
installed model object).  Snapshots carry only the references; the actual
model must already be installed on the executing runtime — which is what
pre-sending arranges, and why offloading before the ACK must ship the model
alongside the snapshot.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.nn.model import Model
from repro.web.dom import Document, Element
from repro.web.events import Event, EventSystem
from repro.web.scripts import Console, ScriptContext, ScriptError, compile_functions


class MissingModelError(RuntimeError):
    """An app referenced a model that is not installed on this runtime."""

    def __init__(self, local_name: str, model_id: str):
        super().__init__(
            f"model {local_name!r} ({model_id}) is not installed on this runtime"
        )
        self.local_name = local_name
        self.model_id = model_id


class _ModelView:
    """Dict-like resolver from app-local model names to installed models."""

    def __init__(self, runtime: "WebRuntime"):
        self._runtime = runtime

    def __getitem__(self, local_name: str) -> Model:
        refs = self._runtime.app_model_refs
        if local_name not in refs:
            raise KeyError(f"app declares no model named {local_name!r}")
        model_id = refs[local_name]
        model = self._runtime.installed_models.get(model_id)
        if model is None:
            raise MissingModelError(local_name, model_id)
        return model

    def __contains__(self, local_name: str) -> bool:
        return local_name in self._runtime.app_model_refs


class WebRuntime:
    """A browser page: heap + DOM + events + compiled app script."""

    def __init__(self, name: str = "browser"):
        self.name = name
        self.document = Document()
        self.globals: Dict[str, Any] = {}
        self.console = Console()
        self.events = EventSystem()
        self.script_source: str = ""
        self.functions: Dict[str, Callable] = {}
        self.app_name: str = ""
        #: app-local model name -> model id (serialized into snapshots)
        self.app_model_refs: Dict[str, str] = {}
        #: model id -> installed Model (NOT serialized; shipped separately)
        self.installed_models: Dict[str, Model] = {}
        self.app_models = _ModelView(self)
        self.handler_log: List[str] = []
        #: the event currently being handled (transient, never snapshotted)
        self.current_event: Optional[Event] = None

    # -- model installation ----------------------------------------------------
    def install_model(self, model: Model) -> str:
        """Make a model available to apps on this runtime; returns its id."""
        self.installed_models[model.model_id] = model
        return model.model_id

    def has_model(self, model_id: str) -> bool:
        return model_id in self.installed_models

    # -- app loading --------------------------------------------------------------
    def load_app(self, app) -> None:
        """Load a :class:`~repro.web.app.WebApp`: DOM, script, models, onload."""
        self.app_name = app.name
        self.document = Document()
        self.globals = {}
        self.events = EventSystem()
        self.handler_log = []
        self._build_dom(app.body_spec, self.document.body)
        self.set_script(app.script)
        self.app_model_refs = {}
        for local_name, model in app.models.items():
            self.app_model_refs[local_name] = self.install_model(model)
        for element_id, event_type, handler_name in app.listeners:
            self.add_listener(element_id, event_type, handler_name)
        if app.onload:
            self.run_handler(app.onload)

    def _build_dom(self, specs: List[dict], parent: Element) -> None:
        for spec in specs:
            element = self.document.create_element(
                spec["tag"],
                element_id=spec.get("id", ""),
                **spec.get("attributes", {}),
            )
            parent.append_child(element)
            if "text" in spec:
                element.append_text(spec["text"])
            self._build_dom(spec.get("children", []), element)

    def set_script(self, source: str) -> None:
        """(Re)compile the app script source."""
        self.script_source = source
        self.functions = compile_functions(source) if source else {}

    # -- events -----------------------------------------------------------------
    def add_listener(self, element_id: str, event_type: str, handler_name: str) -> None:
        if handler_name not in self.functions:
            raise ScriptError(
                f"cannot listen with unknown handler {handler_name!r}"
            )
        self.events.add_listener(element_id, event_type, handler_name)

    def dispatch(self, event_type: str, target_id: str, payload: Any = None) -> None:
        """dispatchEvent: intercepted for offloading, or run synchronously."""
        event = Event(event_type=event_type, target_id=target_id, payload=payload)
        self.events.dispatch_log.append(event)
        if self.events.should_intercept(event):
            self.events.intercept(event)
            return
        self.run_event(event)

    def run_event(self, event: Event) -> None:
        """Run an event's handlers locally (no interception check)."""
        handler_names = self.events.handlers_for(event.target_id, event.event_type)
        for handler_name in handler_names:
            self.run_handler(handler_name, event)

    def call_closure(self, closure, *args: Any) -> Any:
        """Invoke a closure value: function_name(ctx, env, *args)."""
        function = self.functions.get(closure.function_name)
        if function is None:
            raise ScriptError(
                f"closure references unknown function {closure.function_name!r}"
            )
        self.handler_log.append(f"closure:{closure.function_name}")
        context = ScriptContext(self)
        return function(context, closure.env, *args)

    def run_handler(self, handler_name: str, event: Optional[Event] = None) -> Any:
        function = self.functions.get(handler_name)
        if function is None:
            raise ScriptError(f"no handler named {handler_name!r}")
        self.handler_log.append(handler_name)
        context = ScriptContext(self)
        previous = self.current_event
        self.current_event = event
        try:
            return function(context)
        finally:
            self.current_event = previous

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WebRuntime({self.name!r}, app={self.app_name!r}, "
            f"globals={len(self.globals)})"
        )
