"""A miniature web-app runtime (the reproduction's "browser").

The paper's mechanism only needs a browser to be four things: a JS-like
heap of global variables and objects (:mod:`repro.web.values`,
:mod:`repro.web.heap`), a DOM tree (:mod:`repro.web.dom`), an event system
with ``addEventListener`` / ``dispatchEvent`` including custom events
(:mod:`repro.web.events`), and app code stored as *source text* executed in
a sandboxed namespace (:mod:`repro.web.scripts`).  :class:`~repro.web.runtime.WebRuntime`
binds them together and :class:`~repro.web.app.WebApp` packages an app the
way HTML + script tags would.

State lives in plain inspectable structures so the snapshot subsystem
(:mod:`repro.core.snapshot`) can walk, serialize and faithfully rebuild it
— including shared references and cycles, which real JS heaps are full of.
"""

from repro.web.values import UNDEFINED, ImageData, JSArray, JSObject, TypedArray
from repro.web.dom import Document, Element, TextNode
from repro.web.events import Event, EventSystem
from repro.web.scripts import ScriptContext, ScriptError, compile_functions
from repro.web.runtime import MissingModelError, WebRuntime
from repro.web.app import WebApp

__all__ = [
    "Document",
    "Element",
    "Event",
    "EventSystem",
    "ImageData",
    "JSArray",
    "JSObject",
    "MissingModelError",
    "ScriptContext",
    "ScriptError",
    "TextNode",
    "TypedArray",
    "UNDEFINED",
    "WebApp",
    "WebRuntime",
    "compile_functions",
]
