"""JS-like values: objects, arrays, typed arrays, undefined.

Snapshot codegen needs to reconstruct *identity*, not just structure — two
variables pointing at the same object must still alias after restore, and
cycles must close.  That requires heap values to be distinguishable mutable
nodes, so objects and arrays are small wrapper classes rather than plain
dicts/lists.

Scalars map directly: Python ``None`` is JS ``null``; bools, numbers and
strings are themselves; :data:`UNDEFINED` stands in for JS ``undefined``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np


class _Undefined:
    """The JS ``undefined`` singleton."""

    _instance: Optional["_Undefined"] = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _Undefined()


class JSObject:
    """A mutable property bag, like a plain JS object."""

    __slots__ = ("properties",)

    def __init__(self, **properties: Any):
        self.properties: Dict[str, Any] = dict(properties)

    def __getitem__(self, key: str) -> Any:
        return self.properties.get(key, UNDEFINED)

    def __setitem__(self, key: str, value: Any) -> None:
        self.properties[key] = value

    def __delitem__(self, key: str) -> None:
        self.properties.pop(key, None)

    def __contains__(self, key: str) -> bool:
        return key in self.properties

    def keys(self) -> List[str]:
        return list(self.properties)

    def items(self) -> Iterator[Tuple[str, Any]]:
        return iter(self.properties.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JSObject({list(self.properties)})"


class JSArray:
    """A mutable sequence, like a JS array."""

    __slots__ = ("items",)

    def __init__(self, items: Optional[List[Any]] = None):
        self.items: List[Any] = list(items) if items is not None else []

    def __getitem__(self, index: int) -> Any:
        return self.items[index]

    def __setitem__(self, index: int, value: Any) -> None:
        self.items[index] = value

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.items)

    def push(self, value: Any) -> None:
        self.items.append(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JSArray(len={len(self.items)})"


class TypedArray:
    """A Float32Array analog wrapping a numpy array.

    Image pixel data, DNN feature tensors and inference outputs all live in
    typed arrays; they dominate snapshot size, exactly as in the paper.
    """

    __slots__ = ("data",)

    def __init__(self, data):
        array = np.asarray(data, dtype=np.float32)
        self.data: np.ndarray = array

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def size(self) -> int:
        return int(self.data.size)

    def __len__(self) -> int:
        return int(self.data.shape[0]) if self.data.ndim else 1

    def equals(self, other: "TypedArray") -> bool:
        return (
            isinstance(other, TypedArray)
            and self.shape == other.shape
            and bool(np.array_equal(self.data, other.data))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TypedArray(shape={self.shape})"


class JSClosure:
    """A function value with captured environment (closure).

    Real JS snapshots must reconstruct closures — the hard case solved by
    "Web Application Migration with Closure Reconstruction" (WWW'17, the
    paper's reference [11]).  We model a closure as a *named* function from
    the app script plus a mutable captured environment; the snapshot
    serializes the pair, and the restored closure rebinds to the (also
    shipped) function source.  Closure functions take ``(ctx, env)``.
    """

    __slots__ = ("function_name", "env")

    def __init__(self, function_name: str, env: Optional[Dict[str, Any]] = None):
        if not function_name:
            raise ValueError("closure needs a function name")
        self.function_name = function_name
        self.env: Dict[str, Any] = dict(env) if env else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JSClosure({self.function_name!r}, env={list(self.env)})"


class ImageData(TypedArray):
    """Decoded image pixels whose *serialized* form is a compressed blob.

    Browsers never serialize canvas/image content as float literals — a
    snapshot carries it as a data URL (PNG/JPEG bytes).  We keep the exact
    decoded pixels for computation but charge ``encoded_bytes`` when the
    value crosses the network, defaulting to an 8-bit-per-channel PNG-like
    estimate.  This matches the paper's sub-second migration times for the
    full-offload case, where the "feature data" is the input photo itself.
    """

    __slots__ = ("encoded_bytes",)

    def __init__(self, data, encoded_bytes: Optional[int] = None):
        super().__init__(data)
        if encoded_bytes is None:
            # ~1 byte per pixel-channel plus container overhead.
            encoded_bytes = int(self.data.size) + 1024
        if encoded_bytes <= 0:
            raise ValueError(f"encoded_bytes must be positive, got {encoded_bytes}")
        self.encoded_bytes = int(encoded_bytes)


def is_heap_value(value: Any) -> bool:
    """True for values that live on the heap (have identity)."""
    return isinstance(value, (JSObject, JSArray, TypedArray, JSClosure))


def is_scalar(value: Any) -> bool:
    """True for identity-free values that serialize as literals."""
    return value is None or value is UNDEFINED or isinstance(value, (bool, int, float, str))


def deep_equal(a: Any, b: Any, _seen: Optional[set] = None) -> bool:
    """Structural equality over the JS value model (cycle-safe).

    Aliasing-insensitive: two structurally identical graphs compare equal
    even if their sharing differs.  Used by round-trip tests alongside the
    alias-sensitive checks they add on top.
    """
    if _seen is None:
        _seen = set()
    if is_scalar(a) or is_scalar(b):
        if isinstance(a, bool) != isinstance(b, bool):
            return False
        return a is b if (a is UNDEFINED or b is UNDEFINED) else a == b
    pair = (id(a), id(b))
    if pair in _seen:
        return True  # assume equal along cycles
    _seen.add(pair)
    if isinstance(a, JSObject) and isinstance(b, JSObject):
        if set(a.properties) != set(b.properties):
            return False
        return all(deep_equal(a[key], b[key], _seen) for key in a.properties)
    if isinstance(a, JSArray) and isinstance(b, JSArray):
        if len(a) != len(b):
            return False
        return all(deep_equal(x, y, _seen) for x, y in zip(a, b))
    if isinstance(a, TypedArray) and isinstance(b, TypedArray):
        return a.equals(b)
    if isinstance(a, JSClosure) and isinstance(b, JSClosure):
        if a.function_name != b.function_name:
            return False
        if set(a.env) != set(b.env):
            return False
        return all(deep_equal(a.env[key], b.env[key], _seen) for key in a.env)
    return False
