"""Web app bundles: what HTML + script tags + model files add up to.

A :class:`WebApp` is the installable unit — a declarative DOM body spec
(the HTML), a script source string (the ``<script>`` tag), static listener
registrations (``onclick`` attributes), model references, and an optional
onload handler.  :func:`make_inference_app` builds the paper's Fig. 2
example; :func:`make_partial_inference_app` builds the Fig. 5 variant with
``front()`` / ``rear()`` handlers and the custom ``front_complete`` event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.nn.model import Model


@dataclass
class WebApp:
    """An installable web app."""

    name: str
    body_spec: List[dict]
    script: str
    models: Dict[str, Model] = field(default_factory=dict)
    listeners: List[Tuple[str, str, str]] = field(default_factory=list)
    onload: Optional[str] = None
    #: local names of the models to pre-send (None = all).  Partial-
    #: inference apps list only "rear": withholding the front model is the
    #: paper's defense against feature inversion.
    presend_names: Optional[List[str]] = None

    def model_list(self) -> List[Model]:
        """All models the app carries, in declaration order."""
        return list(self.models.values())

    def presend_models(self) -> List[Model]:
        """Models that should be pre-sent to the edge server."""
        if self.presend_names is None:
            return self.model_list()
        return [self.models[name] for name in self.presend_names]


# --------------------------------------------------------------------------
# The paper's example apps
# --------------------------------------------------------------------------

_INFERENCE_APP_SCRIPT = '''
def load_image(ctx):
    """Fig. 2 image-loading handler: draw pixels, remember them."""
    canvas = ctx.document.get("canvas")
    canvas.draw_image(ctx.globals["pending_pixels"])
    ctx.globals["image_loaded"] = True

def on_inference(ctx):
    """Fig. 2 inference handler: classify and show the result."""
    canvas = ctx.document.get("canvas")
    image = canvas.get_image_data()
    probs = ctx.models["classifier"].inference(image.data)
    best = int(np.argmax(probs))
    ctx.globals["result_label"] = best
    ctx.globals["result_score"] = float(probs[best])
    result = ctx.document.get("result")
    result.set_text("label " + str(best) + " (" + str(round(float(probs[best]), 4)) + ")")
'''

_PARTIAL_APP_SCRIPT = '''
def load_image(ctx):
    canvas = ctx.document.get("canvas")
    canvas.draw_image(ctx.globals["pending_pixels"])
    ctx.globals["image_loaded"] = True

def front(ctx):
    """Fig. 5 front(): local partial inference, then the custom event."""
    canvas = ctx.document.get("canvas")
    image = canvas.get_image_data()
    feature = ctx.models["front"].inference(image.data)
    ctx.globals["feature"] = TypedArray(feature)
    ctx.dispatch_event("front_complete", "infer_btn")

def rear(ctx):
    """Fig. 5 rear(): finish inference from the feature data."""
    feature = ctx.globals["feature"]
    probs = ctx.models["rear"].inference(feature.data)
    best = int(np.argmax(probs))
    ctx.globals["result_label"] = best
    result = ctx.document.get("result")
    result.set_text("label " + str(best))
'''

_DEMOGRAPHICS_SCRIPT = '''
def load_image(ctx):
    canvas = ctx.document.get("canvas")
    canvas.draw_image(ctx.globals["pending_pixels"])
    ctx.globals["image_loaded"] = True

def on_inference(ctx):
    """One click, two DNNs: the snapshot's flexibility argument — any
    computation (here: two models plus post-processing) can offload."""
    canvas = ctx.document.get("canvas")
    image = canvas.get_image_data()
    age_probs = ctx.models["age"].inference(image.data)
    gender_probs = ctx.models["gender"].inference(image.data)
    age = int(np.argmax(age_probs))
    gender = int(np.argmax(gender_probs))
    ctx.globals["result_label"] = age * 2 + gender  # combined demographic bin
    ctx.globals["age_label"] = age
    ctx.globals["gender_label"] = gender
    result = ctx.document.get("result")
    result.set_text("age " + str(age) + " gender " + str(gender))
'''

_APP_BODY = [
    {"tag": "button", "id": "load_btn", "text": "Load image"},
    {"tag": "button", "id": "infer_btn", "text": "Inference"},
    {"tag": "canvas", "id": "canvas"},
    {"tag": "div", "id": "result"},
]


def make_inference_app(model: Model, name: Optional[str] = None) -> WebApp:
    """The Fig. 2 app: load an image, classify it with one DNN."""
    return WebApp(
        name=name or f"{model.name}-app",
        body_spec=list(_APP_BODY),
        script=_INFERENCE_APP_SCRIPT,
        models={"classifier": model},
        listeners=[
            ("load_btn", "click", "load_image"),
            ("infer_btn", "click", "on_inference"),
        ],
    )


_VIDEO_APP_SCRIPT = '''
def start_camera(ctx):
    ctx.globals["frame_log"] = JSArray()

def on_frame(ctx):
    """Classify the current camera frame and append to the result log."""
    frame = ctx.globals["frame"]
    probs = ctx.models["classifier"].inference(frame.data)
    label = int(np.argmax(probs))
    ctx.globals["result_label"] = label
    log = ctx.globals["frame_log"]
    log.push(label)
    result = ctx.document.get("result")
    result.set_text("frame " + str(len(log)) + ": label " + str(label))
'''


def make_video_app(model: Model, name: Optional[str] = None) -> WebApp:
    """A continuous-processing app: classify every camera frame.

    The paper's §I motivating example for specialized edge servers (video
    surveillance / streaming); here it is an ordinary web app whose
    ``frame`` events offload through the generic snapshot mechanism — with
    the session cache, each frame travels as a small delta.
    """
    return WebApp(
        name=name or f"{model.name}-video",
        body_spec=[
            {"tag": "video", "id": "camera"},
            {"tag": "div", "id": "result"},
        ],
        script=_VIDEO_APP_SCRIPT,
        models={"classifier": model},
        listeners=[("camera", "frame", "on_frame")],
        onload="start_camera",
    )


def make_demographics_app(
    age_model: Model, gender_model: Model, name: str = "demographics-app"
) -> WebApp:
    """An app running TWO DNNs per interaction (age + gender on one photo).

    Exercises multi-model pre-sending and snapshots whose model_refs list
    several models — the "more flexible offloading" the paper claims over
    ML-specialized servers.
    """
    return WebApp(
        name=name,
        body_spec=list(_APP_BODY),
        script=_DEMOGRAPHICS_SCRIPT,
        models={"age": age_model, "gender": gender_model},
        listeners=[
            ("load_btn", "click", "load_image"),
            ("infer_btn", "click", "on_inference"),
        ],
    )


def make_partial_inference_app(
    front_model: Model, rear_model: Model, name: str = "partial-app"
) -> WebApp:
    """The Fig. 5 app: front() locally, rear() offloaded at front_complete."""
    return WebApp(
        name=name,
        body_spec=list(_APP_BODY),
        script=_PARTIAL_APP_SCRIPT,
        models={"front": front_model, "rear": rear_model},
        listeners=[
            ("load_btn", "click", "load_image"),
            ("infer_btn", "click", "front"),
            ("infer_btn", "front_complete", "rear"),
        ],
        presend_names=["rear"],
    )
