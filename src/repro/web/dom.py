"""A small DOM: document, elements, text nodes, canvas image data.

The example app in the paper's Fig. 2 needs exactly this much DOM: elements
addressable by id (buttons, a canvas, a result div), attributes, text
content, and tree mutation (the inference handler "adds the result text to
the DOM-tree to update the screen").  Canvas elements carry pixel data
(``image_data``) because the app's input image enters the DNN through
``canvas.getImageData()``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.web.values import TypedArray


class DOMError(RuntimeError):
    """Raised on invalid tree operations or unknown element lookups."""


class TextNode:
    """A leaf holding text content."""

    __slots__ = ("text", "parent")

    def __init__(self, text: str):
        self.text = str(text)
        self.parent: Optional["Element"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TextNode({self.text!r})"


class Element:
    """An element node: tag, attributes, children, optional image data."""

    def __init__(self, tag: str, element_id: str = "", **attributes: Any):
        self.tag = tag.lower()
        self.element_id = element_id
        self.attributes: Dict[str, Any] = dict(attributes)
        self.children: List[Any] = []  # Element | TextNode
        self.parent: Optional["Element"] = None
        #: canvas pixel buffer (set by drawImage-style operations)
        self.image_data: Optional[TypedArray] = None

    # -- tree operations -----------------------------------------------------
    def append_child(self, node) -> None:
        if not isinstance(node, (Element, TextNode)):
            raise DOMError(f"cannot append {type(node).__name__} to <{self.tag}>")
        if isinstance(node, Element) and self._would_create_cycle(node):
            raise DOMError("appending this element would create a DOM cycle")
        if node.parent is not None:
            node.parent.remove_child(node)
        node.parent = self
        self.children.append(node)

    def _would_create_cycle(self, node: "Element") -> bool:
        ancestor: Optional[Element] = self
        while ancestor is not None:
            if ancestor is node:
                return True
            ancestor = ancestor.parent
        return False

    def remove_child(self, node) -> None:
        try:
            self.children.remove(node)
        except ValueError:
            raise DOMError(f"node is not a child of <{self.tag}>") from None
        node.parent = None

    def append_text(self, text: str) -> TextNode:
        node = TextNode(text)
        node.parent = self
        self.children.append(node)
        return node

    def set_text(self, text: str) -> None:
        """Replace all children with a single text node (innerText=)."""
        for child in self.children:
            child.parent = None
        self.children = []
        self.append_text(text)

    # -- content access -----------------------------------------------------------
    @property
    def text_content(self) -> str:
        """Concatenated text of the subtree (innerText)."""
        parts = []
        for child in self.children:
            if isinstance(child, TextNode):
                parts.append(child.text)
            else:
                parts.append(child.text_content)
        return "".join(parts)

    def get_attribute(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    # -- canvas --------------------------------------------------------------------
    def draw_image(self, pixels) -> None:
        """Load pixel data into a canvas element."""
        if self.tag != "canvas":
            raise DOMError(f"draw_image on <{self.tag}>; only canvas holds pixels")
        self.image_data = pixels if isinstance(pixels, TypedArray) else TypedArray(pixels)

    def get_image_data(self) -> TypedArray:
        """The canvas pixel buffer (canvas.getImageData analog)."""
        if self.tag != "canvas":
            raise DOMError(f"get_image_data on <{self.tag}>")
        if self.image_data is None:
            raise DOMError(f"canvas {self.element_id!r} has no image drawn")
        return self.image_data

    # -- traversal --------------------------------------------------------------------
    def walk(self) -> Iterator["Element"]:
        """All element descendants including self, depth-first."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ident = f"#{self.element_id}" if self.element_id else ""
        return f"<{self.tag}{ident} children={len(self.children)}>"


class Document:
    """The DOM root: a <body> plus an id index."""

    def __init__(self) -> None:
        self.body = Element("body", element_id="__body__")

    def create_element(self, tag: str, element_id: str = "", **attributes: Any) -> Element:
        return Element(tag, element_id=element_id, **attributes)

    def get(self, element_id: str) -> Element:
        """getElementById; raises :class:`DOMError` when absent."""
        element = self.find(element_id)
        if element is None:
            raise DOMError(f"no element with id {element_id!r}")
        return element

    def find(self, element_id: str) -> Optional[Element]:
        for element in self.body.walk():
            if element.element_id == element_id:
                return element
        return None

    def all_elements(self) -> List[Element]:
        return list(self.body.walk())

    def element_count(self) -> int:
        return sum(1 for _ in self.body.walk())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Document({self.element_count()} elements)"
