"""Baseline offloading approaches the paper positions itself against.

Two comparator classes from §I / §V, implemented as real protocol agents
on the same simulator so they are compared apples-to-apples:

* :class:`SpecializedEdgeService` — "a computation server for video
  processing": the service is *fixed at deployment* (one model, one task).
  Clients stream inputs and receive results.  Minimal per-request
  overhead, zero flexibility: requests for any other app are refused, and
  a new service area only helps if the same service happens to run there.
* :class:`MauiServer` — MAUI/CloneCloud/ThinkAir-style offloading: "the
  app executable is pre-installed" at the server; the client transfers
  method state, the server resumes the method and returns the result
  state.  Per-request cost resembles snapshots, but every new server
  requires an installation step first, and only installed apps work.

The snapshot approach's selling points — any app on any generic server, no
pre-installation, stateless handover — show up as the *capability* columns
of the comparison study in :func:`repro.eval.ablations.baseline_comparison_study`,
while the latency columns show it costs little to get them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.devices.device import Device
from repro.netsim.channel import ChannelEnd
from repro.netsim.message import Message
from repro.nn.cost import network_costs
from repro.nn.model import Model
from repro.sim import Simulator

SVC_INPUT = "SVC_INPUT"
SVC_RESULT = "SVC_RESULT"
SVC_ERROR = "SVC_ERROR"
MAUI_INSTALL = "MAUI_INSTALL"
MAUI_INSTALLED = "MAUI_INSTALLED"
MAUI_EXEC = "MAUI_EXEC"
MAUI_REPLY = "MAUI_REPLY"

#: nominal bytes of an app executable (script + harness), MAUI installs it
APP_EXECUTABLE_BYTES = 2 * 1024 * 1024


@dataclass
class ServiceInput:
    """SVC_INPUT body: the raw input for the fixed service."""

    service: str
    pixels: np.ndarray
    #: transfer size: the serialized input (text pixels, like the apps)
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.size_bytes:
            from repro.nn.tensor import text_serialized_bytes

            self.size_bytes = text_serialized_bytes(tuple(self.pixels.shape))


@dataclass
class ServiceResult:
    """SVC_RESULT body: label + score (tiny)."""

    label: int
    score: float

    @property
    def size_bytes(self) -> int:
        return 64


class SpecializedEdgeService:
    """A fixed-function inference service (e.g. 'traffic surveillance')."""

    def __init__(self, sim: Simulator, device: Device, model: Model, service: str):
        self.sim = sim
        self.device = device
        self.model = model
        self.service = service
        self.requests_served = 0
        self.refused = 0

    def serve(self, endpoint: ChannelEnd) -> None:
        self.sim.spawn(self._loop(endpoint), label=f"svc:{self.service}")

    def _loop(self, endpoint: ChannelEnd):
        costs = network_costs(self.model.network)
        while True:
            message: Message = yield endpoint.recv_kind(SVC_INPUT)
            request: ServiceInput = message.payload
            if request.service != self.service:
                self.refused += 1
                endpoint.send(
                    SVC_ERROR,
                    f"this server only provides {self.service!r}",
                )
                continue
            seconds = self.device.forward_seconds(costs)
            yield self.device.execute(seconds, label="svc-inference")
            probs = self.model.inference(request.pixels)
            label = int(np.argmax(probs))
            self.requests_served += 1
            endpoint.send(
                SVC_RESULT, ServiceResult(label=label, score=float(probs[label]))
            )


def specialized_request(endpoint: ChannelEnd, service: str, pixels: np.ndarray):
    """Simulated process: one request/response against a fixed service.

    Returns ``(label, elapsed_seconds)``; raises RuntimeError on refusal.
    """
    from repro.sim import SimEvent

    start = endpoint.sim.now
    endpoint.send(SVC_INPUT, ServiceInput(service=service, pixels=pixels))
    result_wait = endpoint.recv_kind(SVC_RESULT)
    error_wait = endpoint.recv_kind(SVC_ERROR)
    yield endpoint.sim.any_of([result_wait, error_wait])
    if error_wait.triggered:
        endpoint.cancel_wait(result_wait)
        raise RuntimeError(error_wait.value.payload)
    endpoint.cancel_wait(error_wait)
    message = result_wait.value
    return message.payload.label, endpoint.sim.now - start


@dataclass
class MauiState:
    """MAUI_EXEC body: serialized method state (inputs to resume with)."""

    app: str
    method: str
    pixels: np.ndarray
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.size_bytes:
            from repro.nn.tensor import text_serialized_bytes

            # Method state: the input object graph, serialized.
            self.size_bytes = text_serialized_bytes(tuple(self.pixels.shape)) + 2048


@dataclass
class MauiInstallPayload:
    """MAUI_INSTALL body: the app executable plus its model files."""

    app: str
    model: Model
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.size_bytes:
            self.size_bytes = APP_EXECUTABLE_BYTES + self.model.total_bytes


class MauiServer:
    """MAUI-style server: executes methods of *pre-installed* apps."""

    def __init__(self, sim: Simulator, device: Device, name: str = "maui"):
        self.sim = sim
        self.device = device
        self.name = name
        self.installed_apps: Dict[str, Model] = {}
        self.requests_served = 0
        self.refused = 0

    def serve(self, endpoint: ChannelEnd) -> None:
        self.sim.spawn(self._loop(endpoint), label=f"maui:{self.name}")

    def _loop(self, endpoint: ChannelEnd):
        while True:
            message: Message = yield endpoint.recv()
            if message.kind == MAUI_INSTALL:
                payload: MauiInstallPayload = message.payload
                # Unpack + register the executable (small fixed cost).
                yield self.device.execute(0.2, label="maui-install")
                self.installed_apps[payload.app] = payload.model
                endpoint.send(MAUI_INSTALLED, {"app": payload.app})
            elif message.kind == MAUI_EXEC:
                state: MauiState = message.payload
                model = self.installed_apps.get(state.app)
                if model is None:
                    self.refused += 1
                    endpoint.send(
                        SVC_ERROR, f"app {state.app!r} is not installed here"
                    )
                    continue
                costs = network_costs(model.network)
                seconds = self.device.forward_seconds(costs)
                yield self.device.execute(seconds, label="maui-exec")
                probs = model.inference(state.pixels)
                label = int(np.argmax(probs))
                self.requests_served += 1
                endpoint.send(
                    MAUI_REPLY, ServiceResult(label=label, score=float(probs[label]))
                )
            else:
                endpoint.send(SVC_ERROR, f"unknown message {message.kind!r}")


def maui_install(endpoint: ChannelEnd, app: str, model: Model):
    """Simulated process: install an app at a MAUI server."""
    start = endpoint.sim.now
    endpoint.send(MAUI_INSTALL, MauiInstallPayload(app=app, model=model))
    yield endpoint.recv_kind(MAUI_INSTALLED)
    return endpoint.sim.now - start


def maui_exec(endpoint: ChannelEnd, app: str, pixels: np.ndarray):
    """Simulated process: one remote method execution.

    Returns ``(label, elapsed_seconds)``; raises RuntimeError if the app is
    not installed at this server.
    """
    start = endpoint.sim.now
    endpoint.send(MAUI_EXEC, MauiState(app=app, method="inference", pixels=pixels))
    reply_wait = endpoint.recv_kind(MAUI_REPLY)
    error_wait = endpoint.recv_kind(SVC_ERROR)
    yield endpoint.sim.any_of([reply_wait, error_wait])
    if error_wait.triggered:
        endpoint.cancel_wait(reply_wait)
        raise RuntimeError(error_wait.value.payload)
    endpoint.cancel_wait(error_wait)
    return reply_wait.value.payload.label, endpoint.sim.now - start
