"""Wire protocol between the client and the edge server.

Message kinds (all travel as :class:`repro.netsim.Message`):

=================  ==========================================================
``PING`` / ``PONG``        capability probe: does this edge server run the
                           offloading system? (``PONG`` carries a bool)
``MODEL_MANIFEST``         announces an upload: model id + file list
``MODEL_FILE``             one model file (sized by its real byte count)
``MODEL_OBJECT``           the runnable model handle, once all files are in
                           (bookkeeping-sized: its bytes were the files)
``MODEL_ACK``              server: all files stored (paper's ACK)
``MODEL_QUERY``            digest handshake: does this edge already hold a
                           model with this params fingerprint? (fleet
                           clients ask before re-running pre-send)
``MODEL_STATUS``           server's answer to ``MODEL_QUERY``
``SNAPSHOT``               a full snapshot, optionally with model deliveries
                           attached (offloading before the ACK)
``RESULT``                 the server's delta snapshot with the new state
``VM_OVERLAY``             a compressed VM overlay for on-demand install
``VM_READY``               synthesis finished; offloading system available
``ERROR``                  refusal (e.g. server without the system)
=================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.nn.model import Model, ModelFile

PING = "PING"
PONG = "PONG"
MODEL_MANIFEST = "MODEL_MANIFEST"
MODEL_FILE = "MODEL_FILE"
MODEL_OBJECT = "MODEL_OBJECT"
MODEL_ACK = "MODEL_ACK"
MODEL_QUERY = "MODEL_QUERY"
MODEL_STATUS = "MODEL_STATUS"
SNAPSHOT = "SNAPSHOT"
RESULT = "RESULT"
VM_OVERLAY = "VM_OVERLAY"
VM_READY = "VM_READY"
ERROR = "ERROR"

#: nominal wire size of pure control payloads (ids, flags)
CONTROL_BYTES = 64


@dataclass
class ManifestPayload:
    """MODEL_MANIFEST body."""

    model_id: str
    files: List[ModelFile]

    @property
    def size_bytes(self) -> int:
        # id + (name, checksum, size) per file
        return CONTROL_BYTES + 96 * len(self.files)


@dataclass
class ModelFilePayload:
    """MODEL_FILE body: one file's content."""

    model_id: str
    file: ModelFile

    @property
    def size_bytes(self) -> int:
        return self.file.size_bytes


@dataclass
class ModelObjectPayload:
    """MODEL_OBJECT body: the runnable handle (bytes already accounted)."""

    model_id: str
    model: Model

    @property
    def size_bytes(self) -> int:
        return CONTROL_BYTES


@dataclass
class ModelQueryPayload:
    """MODEL_QUERY body: model id plus its params fingerprint.

    The digest-first handshake of the fleet scheduler: before pre-sending
    to a new edge (or after failing over to one), the client asks whether
    the server already holds a model whose parameter fingerprint matches.
    A hit skips the whole upload — another client already paid for it.

    With ``files`` attached (the v2, segment-level handshake) the query
    also carries the model's manifest — name, checksum and size per file —
    so the server can answer which files it is *missing* at content-address
    granularity.  A miss then costs only the missing segments instead of
    the whole model, and files shared with any other stored model (two
    rear halves split at different layers, say) are never re-sent.
    """

    model_id: str
    fingerprint: str
    #: manifest for the segment-level answer; None keeps the v1 handshake
    files: Optional[List[ModelFile]] = None

    @property
    def size_bytes(self) -> int:
        manifest_bytes = 96 * len(self.files) if self.files else 0
        return CONTROL_BYTES + len(self.fingerprint.encode("ascii")) + manifest_bytes


@dataclass
class ModelStatusPayload:
    """MODEL_STATUS body: whether the queried model is present and matching.

    ``missing_files`` is the segment-level answer to a query that carried a
    manifest: exactly the file names whose bytes the server does not hold
    (empty when every segment is resident — the model may still need its
    runnable handle re-attached).  ``None`` means the query was v1 and the
    answer is whole-model only.
    """

    model_id: str
    present: bool
    server_name: str = ""
    missing_files: Optional[List[str]] = None

    @property
    def size_bytes(self) -> int:
        name_bytes = (
            sum(len(name.encode("utf-8")) + 2 for name in self.missing_files)
            if self.missing_files
            else 0
        )
        return CONTROL_BYTES + name_bytes


@dataclass
class ModelDelivery:
    """Model files riding along with a snapshot (pre-ACK offloading)."""

    model: Model
    files: List[ModelFile]

    @property
    def size_bytes(self) -> int:
        return sum(file.size_bytes for file in self.files)


@dataclass
class SnapshotPayload:
    """SNAPSHOT body: the snapshot plus any model deliveries."""

    snapshot: Any  # repro.core.snapshot.Snapshot
    deliveries: List[ModelDelivery] = field(default_factory=list)
    request_id: int = 0

    @property
    def size_bytes(self) -> int:
        return self.snapshot.size_bytes + sum(
            delivery.size_bytes for delivery in self.deliveries
        )

    @property
    def delivery_bytes(self) -> int:
        return sum(delivery.size_bytes for delivery in self.deliveries)


@dataclass
class ResultPayload:
    """RESULT body: the server's delta snapshot plus its timing report.

    ``fingerprint`` is the hashed signature of the state the server keeps
    cached after this request (None when session caching is off); the
    client diffs against it to send a *delta* on its next offload — the
    paper's future-work reuse of "the data and code left at the server".
    """

    delta: Any  # repro.core.snapshot.Snapshot
    request_id: int = 0
    #: server-side phase durations, for the Fig. 7 breakdown; servers with
    #: a serving loop add a ``"queue"`` entry (batching delay) so clients
    #: can attribute latency to waiting rather than execution
    timings: Dict[str, float] = field(default_factory=dict)
    fingerprint: Optional[Any] = None  # StateFingerprint
    #: work items still queued in the server's serving loop at reply time
    #: (0 without a serving loop) — the load signal the fleet scheduler's
    #: queue-aware policy folds into its scoring
    queue_depth: int = 0

    @property
    def size_bytes(self) -> int:
        fingerprint_bytes = (
            self.fingerprint.size_bytes if self.fingerprint is not None else 0
        )
        return self.delta.size_bytes + CONTROL_BYTES + fingerprint_bytes


@dataclass
class CapabilityPayload:
    """PONG body."""

    has_offloading_system: bool
    server_name: str = ""

    @property
    def size_bytes(self) -> int:
        return CONTROL_BYTES


@dataclass
class ErrorPayload:
    """ERROR body."""

    reason: str
    request_id: int = 0

    @property
    def size_bytes(self) -> int:
        return CONTROL_BYTES + len(self.reason.encode("utf-8"))


def ack_payload(model_id: str) -> Dict[str, Any]:
    """MODEL_ACK body (dict keeps it trivially sizable)."""
    return {"model_id": model_id}
