"""Code generation: heap / DOM state → executable snapshot program text.

The generated program looks like::

    RT.set_app('googlenet-app')
    RT.set_script('''...app source...''')
    RT.set_model_refs({'classifier': 'googlenet:abc123'})
    _h0 = JSObject()
    _h1 = TA('1.250000000e+00 ...', (64, 56, 56))
    _h0.properties['feature'] = _h1
    G['state'] = _h0
    _e0 = RT.create('button', 'infer_btn', {})
    RT.append('__body__', _e0)
    RT.append_text(_e0, 'Inference')
    RT.add_listener('infer_btn', 'click', 'on_inference')
    RT.set_pending('front_complete', 'infer_btn', None)

Identity is preserved by hoisting every heap node into a ``_hN`` variable
before filling contents, which makes shared references and cycles restore
exactly.  Float32 tensors serialize as full-precision decimal text (what a
JS snapshot does to a ``Float32Array``); decoded images serialize as binary
attachments referenced by index (the data-URL analog).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.web.dom import Document, Element, TextNode
from repro.web.values import (
    UNDEFINED,
    ImageData,
    JSArray,
    JSClosure,
    JSObject,
    TypedArray,
)


class CodegenError(ValueError):
    """Raised when a value cannot be serialized into a snapshot."""


def digest(text: str) -> str:
    """Short stable digest used by state fingerprints."""
    import hashlib

    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


#: printf format for tensor values; full float32 round-trip precision
_TENSOR_FORMAT = "%.10e"

#: total bytes of rendered text kept in the memo below.  A GoogLeNet
#: first-conv feature renders to ~14 MB, so the budget holds a handful of
#: large tensors — enough to cover the repeated captures of one campaign
#: section without letting a sweep hoard memory.
TEXT_CACHE_BUDGET_BYTES = 64 * 1024 * 1024

_text_cache: "OrderedDict[bytes, str]" = OrderedDict()
_text_cache_bytes = 0
_text_cache_hits = 0
_text_cache_misses = 0


def render_tensor_text(array: np.ndarray) -> str:
    """Serialize a tensor's values as space-separated decimal literals.

    Memoized by content digest: simulators snapshot the same feature
    tensor many times per session (capture, re-capture after restore,
    fingerprinting), and formatting millions of floats dominates those
    paths.  The memo is an LRU bounded by :data:`TEXT_CACHE_BUDGET_BYTES`
    of rendered text; oversized singletons are returned without caching.
    """
    global _text_cache_bytes, _text_cache_hits, _text_cache_misses
    flat = np.asarray(array, dtype=np.float32).ravel()
    key = hashlib.sha1(flat.tobytes()).digest()
    cached = _text_cache.get(key)
    if cached is not None:
        _text_cache.move_to_end(key)
        _text_cache_hits += 1
        return cached
    _text_cache_misses += 1
    text = " ".join(_TENSOR_FORMAT % value for value in flat)
    if len(text) <= TEXT_CACHE_BUDGET_BYTES:
        while _text_cache and _text_cache_bytes + len(text) > TEXT_CACHE_BUDGET_BYTES:
            _, evicted = _text_cache.popitem(last=False)
            _text_cache_bytes -= len(evicted)
        _text_cache[key] = text
        _text_cache_bytes += len(text)
    return text


def text_cache_info() -> Dict[str, int]:
    """Introspection for tests and benchmarks."""
    return {
        "entries": len(_text_cache),
        "bytes": _text_cache_bytes,
        "hits": _text_cache_hits,
        "misses": _text_cache_misses,
    }


def clear_text_cache() -> None:
    """Drop the tensor-text memo (test isolation)."""
    global _text_cache_bytes, _text_cache_hits, _text_cache_misses
    _text_cache.clear()
    _text_cache_bytes = 0
    _text_cache_hits = 0
    _text_cache_misses = 0


def parse_tensor_text(text: str, shape: Tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`render_tensor_text`."""
    if text:
        flat = np.asarray(text.split(), dtype=np.float32)
    else:
        flat = np.array([], dtype=np.float32)
    return flat.reshape(shape)


class HeapCodegen:
    """Serializes a set of root values, preserving sharing and cycles."""

    def __init__(self, attachments: Optional[Dict[int, np.ndarray]] = None):
        self._ids: Dict[int, str] = {}  # id(node) -> variable name
        self.create_lines: List[str] = []
        self.fill_lines: List[str] = []
        self.attachments: Dict[int, np.ndarray] = (
            attachments if attachments is not None else {}
        )
        self.tensor_text_bytes = 0
        self.attachment_bytes = 0

    # -- public -----------------------------------------------------------------
    def root_expression(self, value: Any) -> str:
        """Serialize one root; returns the expression that references it."""
        return self._render(value)

    @property
    def lines(self) -> List[str]:
        return self.create_lines + self.fill_lines

    # -- rendering ---------------------------------------------------------------
    def _render(self, value: Any) -> str:
        if value is UNDEFINED:
            return "UNDEFINED"
        if value is None or isinstance(value, (bool, int, float, str)):
            return repr(value)
        if isinstance(value, Element):
            if not value.element_id:
                raise CodegenError(
                    "heap references to DOM elements need an element id"
                )
            return f"RT.elem({value.element_id!r})"
        if isinstance(
            value, (JSObject, JSArray, TypedArray, JSClosure, dict, list, np.ndarray)
        ):
            return self._heap_node(value)
        raise CodegenError(
            f"cannot serialize value of type {type(value).__name__} into a snapshot"
        )

    def _heap_node(self, node: Any) -> str:
        existing = self._ids.get(id(node))
        if existing is not None:
            return existing
        name = f"_h{len(self._ids)}"
        self._ids[id(node)] = name
        if isinstance(node, ImageData):
            index = len(self.attachments)
            self.attachments[index] = node.data
            self.attachment_bytes += node.encoded_bytes
            self.create_lines.append(
                f"{name} = IMG(ATTACH[{index}], {node.shape!r}, {node.encoded_bytes})"
            )
        elif isinstance(node, TypedArray):
            text = render_tensor_text(node.data)
            self.tensor_text_bytes += len(text)
            self.create_lines.append(f"{name} = TA({text!r}, {node.shape!r})")
        elif isinstance(node, np.ndarray):
            text = render_tensor_text(node)
            self.tensor_text_bytes += len(text)
            self.create_lines.append(
                f"{name} = NP({text!r}, {tuple(node.shape)!r})"
            )
        elif isinstance(node, JSClosure):
            # Closure reconstruction [11]: the function rebinds by name to
            # the shipped script; the captured environment is rebuilt like
            # any heap structure (cycles through env included).
            self.create_lines.append(f"{name} = CL({node.function_name!r})")
            for key, value in node.env.items():
                self.fill_lines.append(
                    f"{name}.env[{key!r}] = {self._render(value)}"
                )
        elif isinstance(node, JSObject):
            self.create_lines.append(f"{name} = JSObject()")
            for key, value in node.items():
                self.fill_lines.append(
                    f"{name}.properties[{key!r}] = {self._render(value)}"
                )
        elif isinstance(node, JSArray):
            self.create_lines.append(f"{name} = JSArray()")
            for value in node:
                self.fill_lines.append(f"{name}.items.append({self._render(value)})")
        elif isinstance(node, dict):
            self.create_lines.append(f"{name} = {{}}")
            for key, value in node.items():
                if not isinstance(key, (str, int, float, bool)):
                    raise CodegenError(
                        f"dict keys must be scalars, got {type(key).__name__}"
                    )
                self.fill_lines.append(f"{name}[{key!r}] = {self._render(value)}")
        elif isinstance(node, list):
            self.create_lines.append(f"{name} = []")
            for value in node:
                self.fill_lines.append(f"{name}.append({self._render(value)})")
        else:  # pragma: no cover - guarded by _render
            raise CodegenError(f"unexpected heap node {type(node).__name__}")
        return name


def serialize_globals(
    globals_dict: Dict[str, Any],
    keep: Optional[set] = None,
    codegen: Optional[HeapCodegen] = None,
) -> Tuple[List[str], HeapCodegen]:
    """Serialize (a subset of) the global heap.

    Returns ``(root_lines, codegen)``: the ``G[...] = ...`` assignments and
    the codegen holding the heap-node definition lines.  The caller emits
    ``codegen.lines`` *before* the root lines — and may run further passes
    (e.g. DOM serialization) on the same codegen first, so shared heap
    nodes referenced from both places are defined exactly once.
    """
    codegen = codegen or HeapCodegen()
    root_lines = []
    for name in sorted(globals_dict):
        if keep is not None and name not in keep:
            continue
        expression = codegen.root_expression(globals_dict[name])
        root_lines.append(f"G[{name!r}] = {expression}")
    return root_lines, codegen


def canonical_value_code(value: Any) -> str:
    """Deterministic standalone serialization of one value.

    Used for fingerprinting (change detection between the restored baseline
    and the post-execution state).  Identity is canonicalized per-value, so
    the same structure always yields the same code.
    """
    codegen = HeapCodegen(attachments={})
    expression = codegen.root_expression(value)
    return "\n".join(codegen.lines + [f"__root__ = {expression}"])


# -- DOM ----------------------------------------------------------------------

def dom_node_key(element: Element) -> str:
    """Stable identity for DOM diffing: the id, or a path-based key."""
    if element.element_id:
        return element.element_id
    parts: List[str] = []
    node: Optional[Element] = element
    while node is not None and node.parent is not None:
        siblings = [c for c in node.parent.children if isinstance(c, Element)]
        parts.append(f"{node.tag}[{siblings.index(node)}]")
        node = node.parent
    return "/".join(reversed(parts)) or "__body__"


def serialize_dom(
    document: Document,
    codegen: HeapCodegen,
    include_canvas_pixels: bool = False,
) -> List[str]:
    """Generate program lines that rebuild the DOM tree.

    Canvas pixel buffers are skipped by default — serializing a DOM does
    not capture canvas content in real browsers either; apps keep what they
    need in heap state.  ``include_canvas_pixels`` overrides this for apps
    that rely on it, at the cost of shipping the (attached) image.
    """
    lines: List[str] = []
    counter = [0]

    def emit(element: Element, parent_ref: str) -> None:
        name = f"_e{counter[0]}"
        counter[0] += 1
        lines.append(
            f"{name} = RT.create({element.tag!r}, {element.element_id!r}, "
            f"{element.attributes!r})"
        )
        lines.append(f"RT.append({parent_ref}, {name})")
        if include_canvas_pixels and element.image_data is not None:
            # Serialized as-is: a plain TypedArray becomes decimal text (how
            # JS apps of the CaffeJS era shipped pixel arrays), an ImageData
            # becomes a compressed attachment (the data-URL optimization).
            lines.append(
                f"RT.draw({name}, {codegen.root_expression(element.image_data)})"
            )
        for child in element.children:
            if isinstance(child, TextNode):
                lines.append(f"RT.append_text({name}, {child.text!r})")
            else:
                emit(child, name)

    for child in document.body.children:
        if isinstance(child, TextNode):
            lines.append(f"RT.append_text(RT.body(), {child.text!r})")
        else:
            emit(child, "RT.body()")
    return lines


def canonical_dom_entries(document: Document) -> Dict[str, str]:
    """Canonical per-element strings for DOM diffing.

    Canvas/image content is represented by a digest of the pixel bytes, so
    drawing a *different* image on the same canvas registers as a change.
    """
    import hashlib

    entries: Dict[str, str] = {}
    for element in document.body.walk():
        if element is document.body:
            continue
        key = dom_node_key(element)
        parent_key = (
            dom_node_key(element.parent) if element.parent is not None else ""
        )
        texts = [
            child.text for child in element.children if isinstance(child, TextNode)
        ]
        attrs = sorted(element.attributes.items())
        if element.image_data is not None:
            image = hashlib.sha1(element.image_data.data.tobytes()).hexdigest()[:12]
        else:
            image = "none"
        entries[key] = (
            f"{element.tag}|parent={parent_key}|attrs={attrs!r}|"
            f"texts={texts!r}|image={image}"
        )
    return entries
