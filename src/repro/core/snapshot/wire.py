"""Binary wire format for snapshots.

The simulator normally passes :class:`~repro.core.snapshot.capture.Snapshot`
objects by reference and *accounts* their size analytically.  This module
makes the encoding real: a snapshot serializes to actual bytes (and back,
bit-exactly), which pins the analytic size model to ground truth — the
encoded length must match ``Snapshot.size_bytes`` up to a small framing
overhead, and a test enforces that.

Layout (all integers little-endian):

====  =======================================================
8 B   magic ``RPSNAP01``
4 B   header length ``H``
H B   JSON header: app_name, kind, model_refs, pending_event,
      tensor_text_bytes, attachment metadata (index, shape,
      encoded_bytes), metadata flags
4 B   program length ``P``
P B   UTF-8 snapshot program
—     per attachment: 4 B raw length + float32 payload bytes
4 B   CRC-32 of everything above
====  =======================================================

Attachments are stored as raw float32 (the decoded image); their *wire*
size accounting still uses ``encoded_bytes`` (the data-URL analog), so an
encoder that actually compressed them would only shrink this container.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict

import numpy as np

from repro.core.snapshot.capture import Snapshot

MAGIC = b"RPSNAP01"


class WireFormatError(ValueError):
    """Raised on malformed or corrupted snapshot bytes."""


def encode_snapshot(snapshot: Snapshot) -> bytes:
    """Serialize a snapshot to bytes (attached models are NOT included —
    they travel as model files in their own messages)."""
    attachments_meta = [
        {
            "index": index,
            "shape": list(array.shape),
            "encoded_bytes": _encoded_bytes_for(snapshot, index),
        }
        for index, array in sorted(snapshot.attachments.items())
    ]
    header = {
        "app_name": snapshot.app_name,
        "kind": snapshot.kind,
        "model_refs": snapshot.model_refs,
        "pending_event": snapshot.pending_event,
        "tensor_text_bytes": snapshot.tensor_text_bytes,
        "attachment_bytes": snapshot.attachment_bytes,
        "attachments": attachments_meta,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    program_bytes = snapshot.program.encode("utf-8")
    parts = [
        MAGIC,
        struct.pack("<I", len(header_bytes)),
        header_bytes,
        struct.pack("<I", len(program_bytes)),
        program_bytes,
    ]
    for index, array in sorted(snapshot.attachments.items()):
        raw = np.asarray(array, dtype=np.float32).tobytes()
        parts.append(struct.pack("<I", len(raw)))
        parts.append(raw)
    body = b"".join(parts)
    return body + struct.pack("<I", zlib.crc32(body))


def _encoded_bytes_for(snapshot: Snapshot, index: int) -> int:
    # Per-attachment encoded size is not tracked individually; distribute
    # the total proportionally to element counts (exact for one attachment,
    # which is the overwhelmingly common case).
    total_elements = sum(a.size for a in snapshot.attachments.values()) or 1
    share = snapshot.attachments[index].size / total_elements
    return int(round(snapshot.attachment_bytes * share))


def decode_snapshot(data: bytes) -> Snapshot:
    """Reconstruct a snapshot from :func:`encode_snapshot` output."""
    if len(data) < len(MAGIC) + 8:
        raise WireFormatError("snapshot bytes too short")
    body, (crc,) = data[:-4], struct.unpack("<I", data[-4:])
    if zlib.crc32(body) != crc:
        raise WireFormatError("CRC mismatch: snapshot bytes corrupted")
    if not body.startswith(MAGIC):
        raise WireFormatError("bad magic: not a snapshot")
    offset = len(MAGIC)

    def take(count: int) -> bytes:
        nonlocal offset
        if offset + count > len(body):
            raise WireFormatError("truncated snapshot")
        chunk = body[offset : offset + count]
        offset += count
        return chunk

    (header_len,) = struct.unpack("<I", take(4))
    header = json.loads(take(header_len).decode("utf-8"))
    (program_len,) = struct.unpack("<I", take(4))
    program = take(program_len).decode("utf-8")
    attachments: Dict[int, np.ndarray] = {}
    for meta in header["attachments"]:
        (raw_len,) = struct.unpack("<I", take(4))
        raw = take(raw_len)
        attachments[int(meta["index"])] = np.frombuffer(
            raw, dtype=np.float32
        ).reshape(meta["shape"])
    if offset != len(body):
        raise WireFormatError(f"{len(body) - offset} trailing bytes")
    pending = header["pending_event"]
    return Snapshot(
        app_name=header["app_name"],
        kind=header["kind"],
        program=program,
        attachments=attachments,
        pending_event=tuple(pending) if pending is not None else None,
        model_refs=dict(header["model_refs"]),
        tensor_text_bytes=int(header["tensor_text_bytes"]),
        attachment_bytes=int(header["attachment_bytes"]),
    )


def framing_overhead(snapshot: Snapshot) -> int:
    """Container bytes beyond the accounted payload.

    The accounted size (``snapshot.size_bytes``) covers the program text
    plus the attachments at their *encoded* size; the container adds the
    header/lengths/CRC and stores attachments as raw float32.
    """
    encoded = len(encode_snapshot(snapshot))
    raw_attachment = sum(
        a.size * 4 for a in snapshot.attachments.values()
    )
    return encoded - len(snapshot.program.encode("utf-8")) - raw_attachment
