"""Snapshots: saving a web app's execution state as another web app.

"We can save the execution state of the web app in the form of another web
app called the snapshot" (paper abstract).  Here a snapshot is literally an
executable *program* (source text) that, run against a fresh runtime's
restore API, rebuilds the heap (with aliasing and cycles), the DOM, the
listener table and the app script, then re-dispatches the pending event —
plus binary attachments for image data (a browser's data-URL equivalent).

* :mod:`repro.core.snapshot.codegen` — state graph → program text.
* :mod:`repro.core.snapshot.capture` — runtime → :class:`Snapshot`;
  also delta capture against a baseline fingerprint (the small
  "code to update the client execution state" sent back by the server).
* :mod:`repro.core.snapshot.restore` — program execution, fingerprinting.
* :mod:`repro.core.snapshot.optimize` — the size optimizations of [10]:
  live-state elimination and model elision.
"""

from repro.core.snapshot.capture import (
    CaptureOptions,
    Snapshot,
    SnapshotError,
    capture_delta,
    capture_snapshot,
)
from repro.core.snapshot.restore import (
    RestoreReport,
    StateFingerprint,
    fingerprint_runtime,
    restore_snapshot,
)

__all__ = [
    "CaptureOptions",
    "RestoreReport",
    "Snapshot",
    "SnapshotError",
    "StateFingerprint",
    "capture_delta",
    "capture_snapshot",
    "fingerprint_runtime",
    "restore_snapshot",
]
