"""Snapshot capture: runtime state → :class:`Snapshot`.

Two capture modes mirror the paper's two migrations:

* :func:`capture_snapshot` — the client-side capture "just before the
  time-consuming event handler is executed": the full (live) app state plus
  the code to re-dispatch the intercepted event at the server.
* :func:`capture_delta` — the server-side capture after running the
  handler: "actually JavaScript code to update the client execution state"
  — only what changed relative to the restored baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.snapshot.codegen import (
    CodegenError,
    HeapCodegen,
    canonical_dom_entries,
    canonical_value_code,
    serialize_dom,
    serialize_globals,
)
from repro.core.snapshot.optimize import select_globals
from repro.core.snapshot.restore import StateFingerprint
from repro.nn.model import Model
from repro.web.events import Event
from repro.web.runtime import WebRuntime


class SnapshotError(RuntimeError):
    """Raised when state cannot be captured into a snapshot."""


@dataclass(frozen=True)
class CaptureOptions:
    """Capture policy knobs.

    ``live_only`` applies live-state elimination for the pending event
    (the paper's offloading behaviour; turn off for conservative
    whole-state snapshots).  ``include_canvas_pixels`` serializes canvas
    bitmaps (off by default — real DOM serialization drops canvas content,
    and apps keep what they need in heap state).
    """

    live_only: bool = True
    include_canvas_pixels: bool = False


@dataclass
class Snapshot:
    """An executable snapshot: program text + attachments + metadata."""

    app_name: str
    kind: str  # "full" | "delta"
    program: str
    attachments: Dict[int, np.ndarray] = field(default_factory=dict)
    pending_event: Optional[Tuple[str, str, Any]] = None
    model_refs: Dict[str, str] = field(default_factory=dict)
    tensor_text_bytes: int = 0
    attachment_bytes: int = 0
    #: models shipped together with the snapshot (offloading before ACK)
    attached_models: List[Model] = field(default_factory=list)
    #: free-form accounting used by the session layer (e.g. server costs)
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        """On-the-wire size of the snapshot itself (models counted apart)."""
        return len(self.program.encode("utf-8")) + self.attachment_bytes

    @property
    def feature_bytes(self) -> int:
        """Bytes attributable to tensor/image payloads ("feature data")."""
        return self.tensor_text_bytes + self.attachment_bytes

    @property
    def code_bytes(self) -> int:
        """The paper's "snapshot except feature data"."""
        return self.size_bytes - self.feature_bytes

    @property
    def total_payload_bytes(self) -> int:
        """Snapshot plus any attached model files."""
        return self.size_bytes + sum(m.total_bytes for m in self.attached_models)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Snapshot({self.app_name!r}, {self.kind}, "
            f"{self.size_bytes / 1e6:.3f} MB, pending={self.pending_event})"
        )


def _event_tuple(event: Optional[Event]) -> Optional[Tuple[str, str, Any]]:
    if event is None:
        return None
    payload = event.payload
    if payload is not None and not isinstance(payload, (bool, int, float, str)):
        raise SnapshotError(
            f"pending event payload must be scalar, got {type(payload).__name__}"
        )
    return (event.event_type, event.target_id, payload)


def capture_snapshot(
    runtime: WebRuntime,
    pending_event: Optional[Event] = None,
    options: CaptureOptions = CaptureOptions(),
) -> Snapshot:
    """Capture the runtime's execution state as an executable snapshot."""
    lines: List[str] = [
        f"RT.set_app({runtime.app_name!r})",
        f"RT.set_script({runtime.script_source!r})",
        f"RT.set_model_refs({runtime.app_model_refs!r})",
    ]
    keep = select_globals(
        runtime.script_source,
        runtime.globals.keys(),
        runtime.events.all_listeners(),
        pending_event,
        live_only=options.live_only,
    )
    codegen = HeapCodegen()
    try:
        global_root_lines, codegen = serialize_globals(
            runtime.globals, keep=keep, codegen=codegen
        )
        dom_lines = serialize_dom(
            runtime.document,
            codegen,
            include_canvas_pixels=options.include_canvas_pixels,
        )
    except CodegenError as exc:
        raise SnapshotError(str(exc)) from exc
    # Heap-node definitions first: globals and DOM may share nodes.
    lines.extend(codegen.lines)
    lines.extend(global_root_lines)
    lines.extend(dom_lines)
    for element_id, event_type, handler in runtime.events.all_listeners():
        lines.append(f"RT.add_listener({element_id!r}, {event_type!r}, {handler!r})")
    event_tuple = _event_tuple(pending_event)
    if event_tuple is not None:
        lines.append(
            f"RT.set_pending({event_tuple[0]!r}, {event_tuple[1]!r}, "
            f"{event_tuple[2]!r})"
        )
    return Snapshot(
        app_name=runtime.app_name,
        kind="full",
        program="\n".join(lines) + "\n",
        attachments=codegen.attachments,
        pending_event=event_tuple,
        model_refs=dict(runtime.app_model_refs),
        tensor_text_bytes=codegen.tensor_text_bytes,
        attachment_bytes=codegen.attachment_bytes,
    )


def capture_delta(
    runtime: WebRuntime,
    baseline: StateFingerprint,
    pending_event: Optional[Event] = None,
    options: CaptureOptions = CaptureOptions(live_only=False),
) -> Snapshot:
    """Capture only state changed since ``baseline``.

    Used in both directions: the server's return snapshot ("code to update
    the client execution state") and — the paper's future work — follow-up
    offloads against the state the first offload left at the server.  With
    ``options.live_only`` and a pending event, changed-but-dead state is
    also elided.
    """
    from repro.core.snapshot.codegen import digest

    if baseline.app_name != runtime.app_name:
        raise SnapshotError(
            f"baseline is for app {baseline.app_name!r}, runtime runs "
            f"{runtime.app_name!r}"
        )
    lines: List[str] = [f"RT.expect_app({runtime.app_name!r})"]

    # -- globals ---------------------------------------------------------------
    changed = []
    for name, value in runtime.globals.items():
        try:
            hash_now = digest(canonical_value_code(value))
        except CodegenError as exc:
            raise SnapshotError(str(exc)) from exc
        if baseline.global_hash.get(name) != hash_now:
            changed.append(name)
    keep = select_globals(
        runtime.script_source,
        changed,
        runtime.events.all_listeners(),
        pending_event,
        live_only=options.live_only,
    )
    removed = [name for name in baseline.global_hash if name not in runtime.globals]
    codegen = HeapCodegen()
    global_root_lines, codegen = serialize_globals(
        runtime.globals, keep=keep, codegen=codegen
    )

    # -- DOM ----------------------------------------------------------------------
    entries_now = canonical_dom_entries(runtime.document)
    elements_by_key = {}
    from repro.core.snapshot.codegen import dom_node_key
    from repro.web.dom import TextNode

    for element in runtime.document.body.walk():
        if element is not runtime.document.body:
            elements_by_key[dom_node_key(element)] = element

    def texts_of(element) -> List[str]:
        return [c.text for c in element.children if isinstance(c, TextNode)]

    dom_lines: List[str] = []

    def draw_line(target_expr: str, element) -> None:
        if options.include_canvas_pixels and element.image_data is not None:
            dom_lines.append(
                f"RT.draw({target_expr}, "
                f"{codegen.root_expression(element.image_data)})"
            )

    # Creations must run parents-first; walk order already guarantees it.
    counter = 0
    for key, element in elements_by_key.items():
        if key not in baseline.dom_entries:
            parent = element.parent
            parent_key = dom_node_key(parent) if parent is not None else "__body__"
            name = f"_d{counter}"
            counter += 1
            dom_lines.append(
                f"{name} = RT.create({element.tag!r}, {element.element_id!r}, "
                f"{element.attributes!r})"
            )
            dom_lines.append(f"RT.append(RT.node({parent_key!r}), {name})")
            for text in texts_of(element):
                dom_lines.append(f"RT.append_text({name}, {text!r})")
            draw_line(name, element)
        elif baseline.dom_entries[key] != digest(entries_now[key]):
            dom_lines.append(f"RT.set_texts({key!r}, {texts_of(element)!r})")
            dom_lines.append(f"RT.set_attrs({key!r}, {element.attributes!r})")
            draw_line(f"RT.node({key!r})", element)

    lines.extend(codegen.lines)
    lines.extend(global_root_lines)
    lines.extend(f"RT.del_global({name!r})" for name in sorted(removed))
    lines.extend(dom_lines)
    for key in baseline.dom_entries:
        if key not in entries_now:
            lines.append(f"RT.remove_node({key!r})")

    # -- listeners -------------------------------------------------------------------
    now = set(runtime.events.all_listeners())
    before = set(baseline.listeners)
    for element_id, event_type, handler in sorted(now - before):
        lines.append(f"RT.add_listener({element_id!r}, {event_type!r}, {handler!r})")
    for element_id, event_type, handler in sorted(before - now):
        lines.append(
            f"RT.remove_listener({element_id!r}, {event_type!r}, {handler!r})"
        )

    event_tuple = _event_tuple(pending_event)
    if event_tuple is not None:
        lines.append(
            f"RT.set_pending({event_tuple[0]!r}, {event_tuple[1]!r}, "
            f"{event_tuple[2]!r})"
        )
    return Snapshot(
        app_name=runtime.app_name,
        kind="delta",
        program="\n".join(lines) + "\n",
        attachments=codegen.attachments,
        pending_event=event_tuple,
        model_refs=dict(runtime.app_model_refs),
        tensor_text_bytes=codegen.tensor_text_bytes,
        attachment_bytes=codegen.attachment_bytes,
    )
