"""Snapshot size optimizations (paper: "we reduce the snapshot code size
using various optimizations [10]").

Two passes matter for ML apps:

* **Model elision** — NN models never enter the heap serialization; apps
  hold them by reference (``model_refs``), and the actual model travels via
  pre-sending.  This is structural (see :mod:`repro.web.runtime`) and is
  what makes the with-pre-send snapshot ~0.1 MB instead of ~27-44 MB.
* **Live-state elimination** — when offloading a specific pending event,
  only the state that the remaining execution can reach needs to travel.
  We compute the set of handlers reachable from the pending event (through
  ``dispatch_event`` chains and direct calls) and keep only the globals
  those handlers mention.  This is why the paper's partial-inference
  snapshot carries the *feature data and not the original input*: ``rear()``
  references ``feature`` but not the image.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.web.events import Event
from repro.web.scripts import referenced_names, split_functions


def reachable_handlers(
    script_source: str,
    listeners: Iterable[Tuple[str, str, str]],
    pending_event: Optional[Event],
) -> Set[str]:
    """Handler names reachable once ``pending_event`` is (re-)dispatched.

    Reachability: the handlers listening for the pending event, plus —
    transitively — any function whose name a reachable function mentions,
    and the handlers of any event type a reachable function mentions (the
    static over-approximation of ``dispatch_event`` chains).
    """
    listener_list = list(listeners)
    if pending_event is None:
        return {handler for _, _, handler in listener_list}
    functions = split_functions(script_source)
    handlers_by_event: Dict[str, List[str]] = {}
    for _element_id, event_type, handler_name in listener_list:
        handlers_by_event.setdefault(event_type, []).append(handler_name)

    reached: Set[str] = set()
    # The initial frontier is exact: only handlers listening on the pending
    # event's (element, type).  Transitive steps over-approximate by event
    # type, since a mentioned type string could target any element.
    frontier = [
        handler
        for element_id, event_type, handler in listener_list
        if element_id == pending_event.target_id
        and event_type == pending_event.event_type
    ]
    while frontier:
        name = frontier.pop()
        if name in reached or name not in functions:
            continue
        reached.add(name)
        for mention in referenced_names(functions[name]):
            if mention in functions and mention not in reached:
                frontier.append(mention)
            for handler in handlers_by_event.get(mention, []):
                if handler not in reached:
                    frontier.append(handler)
    return reached


def live_globals(
    script_source: str,
    global_names: Iterable[str],
    handlers: Set[str],
) -> Set[str]:
    """Global variables mentioned by any of the given handlers."""
    functions = split_functions(script_source)
    mentioned: Set[str] = set()
    for handler in handlers:
        source = functions.get(handler)
        if source is None:
            continue
        mentioned.update(referenced_names(source))
    return {name for name in global_names if name in mentioned}


def select_globals(
    script_source: str,
    global_names: Iterable[str],
    listeners: Iterable[Tuple[str, str, str]],
    pending_event: Optional[Event],
    live_only: bool,
) -> Set[str]:
    """The set of globals a snapshot should carry.

    ``live_only=False`` is the conservative mode: everything travels (the
    original snapshot semantics of [10], correct for arbitrary later
    execution).  ``live_only=True`` applies live-state elimination for the
    given pending event — the paper's behaviour for offloading snapshots.
    """
    names = set(global_names)
    if not live_only or pending_event is None:
        return names
    handlers = reachable_handlers(script_source, listeners, pending_event)
    return live_globals(script_source, names, handlers)
