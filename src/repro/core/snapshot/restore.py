"""Snapshot restore: executing a snapshot program against a runtime.

"Execution of the snapshot will first restore exactly the same execution
state as when the client took a snapshot, and then continue the execution
for the ... event handler" (paper §III.A).  :func:`restore_snapshot` is
that execution: the program runs in a namespace whose only capability is
the :class:`RestoreAPI` bound to the target runtime, then the caller
decides what to do with the re-dispatched pending event (run it locally on
the server; or, on the client, apply the delta and continue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.snapshot.codegen import (
    canonical_dom_entries,
    canonical_value_code,
    parse_tensor_text,
)
from repro.web.dom import Element, TextNode
from repro.web.events import Event
from repro.web.runtime import WebRuntime
from repro.web.values import (
    UNDEFINED,
    ImageData,
    JSArray,
    JSClosure,
    JSObject,
    TypedArray,
)


class RestoreError(RuntimeError):
    """Raised when a snapshot program cannot be executed."""


@dataclass(frozen=True)
class StateFingerprint:
    """Hashed canonical view of a runtime's state, for delta capture.

    Per-entity digests (like an rsync signature): small enough to travel
    on the wire with every RESULT, which is what lets the *client* compute
    a delta against the state left behind on the server — the paper's
    future-work "reuse the data and code left at the server".
    """

    app_name: str
    global_hash: Dict[str, str]
    dom_entries: Dict[str, str]
    listeners: Set[Tuple[str, str, str]]

    @property
    def size_bytes(self) -> int:
        """Wire size: one short digest per tracked entity."""
        entries = len(self.global_hash) + len(self.dom_entries) + len(self.listeners)
        return 64 + 48 * entries


@dataclass
class RestoreReport:
    """Outcome of a restore."""

    pending_event: Optional[Event]
    fingerprint: StateFingerprint
    applied_lines: int = 0


def fingerprint_runtime(runtime: WebRuntime) -> StateFingerprint:
    """Take the hashed fingerprint used as a delta baseline."""
    from repro.core.snapshot.codegen import digest

    return StateFingerprint(
        app_name=runtime.app_name,
        global_hash={
            name: digest(canonical_value_code(value))
            for name, value in runtime.globals.items()
        },
        dom_entries={
            key: digest(entry)
            for key, entry in canonical_dom_entries(runtime.document).items()
        },
        listeners=set(runtime.events.all_listeners()),
    )


class RestoreAPI:
    """The capability surface a snapshot program gets as ``RT``."""

    def __init__(self, runtime: WebRuntime):
        self.runtime = runtime
        self.pending: Optional[Event] = None
        self._node_index: Dict[str, Element] = {}

    # -- app identity -----------------------------------------------------------
    def set_app(self, app_name: str) -> None:
        self.runtime.app_name = app_name

    def expect_app(self, app_name: str) -> None:
        if self.runtime.app_name != app_name:
            raise RestoreError(
                f"delta snapshot for app {app_name!r} applied to runtime "
                f"running {self.runtime.app_name!r}"
            )

    def set_script(self, source: str) -> None:
        self.runtime.set_script(source)

    def set_model_refs(self, refs: Dict[str, str]) -> None:
        self.runtime.app_model_refs = dict(refs)

    # -- globals --------------------------------------------------------------------
    def del_global(self, name: str) -> None:
        self.runtime.globals.pop(name, None)

    # -- DOM ----------------------------------------------------------------------
    def body(self) -> Element:
        return self.runtime.document.body

    def create(self, tag: str, element_id: str, attributes: Dict[str, Any]) -> Element:
        return self.runtime.document.create_element(
            tag, element_id=element_id, **attributes
        )

    def append(self, parent: Element, child: Element) -> None:
        parent.append_child(child)

    def append_text(self, element: Element, text: str) -> None:
        element.append_text(text)

    def draw(self, element: Element, pixels: TypedArray) -> None:
        element.draw_image(pixels)

    def elem(self, element_id: str) -> Element:
        return self.runtime.document.get(element_id)

    def node(self, key: str) -> Element:
        """Resolve a DOM-diff key: an element id, path key, or __body__."""
        if key == "__body__":
            return self.runtime.document.body
        found = self.runtime.document.find(key)
        if found is not None:
            return found
        index = self._path_index()
        if key in index:
            return index[key]
        raise RestoreError(f"delta references unknown DOM node {key!r}")

    def _path_index(self) -> Dict[str, Element]:
        from repro.core.snapshot.codegen import dom_node_key

        return {
            dom_node_key(element): element
            for element in self.runtime.document.body.walk()
            if element is not self.runtime.document.body
        }

    def set_texts(self, key: str, texts: List[str]) -> None:
        """Replace the text children of a node, keeping element children."""
        element = self.node(key)
        element.children = [
            child for child in element.children if not isinstance(child, TextNode)
        ]
        for text in texts:
            element.append_text(text)

    def set_attrs(self, key: str, attributes: Dict[str, Any]) -> None:
        self.node(key).attributes = dict(attributes)

    def remove_node(self, key: str) -> None:
        element = self.node(key)
        if element.parent is not None:
            element.parent.remove_child(element)

    # -- events --------------------------------------------------------------------
    def add_listener(self, element_id: str, event_type: str, handler: str) -> None:
        self.runtime.add_listener(element_id, event_type, handler)

    def remove_listener(self, element_id: str, event_type: str, handler: str) -> None:
        self.runtime.events.remove_listener(element_id, event_type, handler)

    def set_pending(self, event_type: str, target_id: str, payload: Any) -> None:
        self.pending = Event(event_type=event_type, target_id=target_id, payload=payload)


def _restore_namespace(api: RestoreAPI, attachments: Dict[int, np.ndarray]) -> dict:
    def make_typed_array(text: str, shape: tuple) -> TypedArray:
        return TypedArray(parse_tensor_text(text, shape))

    def make_ndarray(text: str, shape: tuple) -> np.ndarray:
        return parse_tensor_text(text, shape)

    def make_image(data: np.ndarray, shape: tuple, encoded_bytes: int) -> ImageData:
        pixels = np.array(data, dtype=np.float32, copy=True).reshape(shape)
        return ImageData(pixels, encoded_bytes=encoded_bytes)

    return {
        "__builtins__": {},
        "RT": api,
        "G": api.runtime.globals,
        "JSObject": JSObject,
        "JSArray": JSArray,
        "CL": JSClosure,
        "TA": make_typed_array,
        "NP": make_ndarray,
        "IMG": make_image,
        "ATTACH": attachments,
        "UNDEFINED": UNDEFINED,
    }


def restore_snapshot(snapshot, runtime: WebRuntime) -> RestoreReport:
    """Run a snapshot program against a runtime.

    Full snapshots rebuild the app from nothing; delta snapshots update an
    already-running app.  Returns the pending event (to re-dispatch) and
    the post-restore fingerprint (the baseline for the next delta).
    """
    api = RestoreAPI(runtime)
    namespace = _restore_namespace(api, snapshot.attachments)
    try:
        exec(compile(snapshot.program, "<snapshot>", "exec"), namespace)
    except RestoreError:
        raise
    except Exception as exc:
        raise RestoreError(f"snapshot program failed: {exc}") from exc
    return RestoreReport(
        pending_event=api.pending,
        fingerprint=fingerprint_runtime(runtime),
        applied_lines=snapshot.program.count("\n"),
    )
