"""The edge-server agent.

A generic edge server in the paper runs "our offloading server program for
handling network connection, a web browser for executing the snapshot, and
the support libraries".  :class:`EdgeServer` is that program: it stores
pre-sent model files, ACKs completed uploads, and serves snapshot requests
by restoring each snapshot into a browser runtime, running the pending
event, and returning a delta snapshot — all on the server device's virtual
clock.  The browser device is a FIFO resource, so concurrent clients queue
honestly behind each other.

Servers can also start *without* the offloading system installed
(``installed=False``); they then refuse snapshots until a VM overlay is
synthesized (paper §III.B.3), which is how on-demand installation is
exercised end to end.

With ``session_cache`` (default on), the browser state left behind by each
served app is kept so follow-up offloads can send deltas — the paper's
§VI future work.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import protocol
from repro.core.snapshot import capture_delta, fingerprint_runtime, restore_snapshot
from repro.devices.device import Device
from repro.netsim.channel import ChannelEnd
from repro.netsim.message import Message
from repro.nn.modelstore import ModelStore, ModelStoreError
from repro.serve import ServingConfig, ServingDropped, ServingLoop, WorkItem
from repro.sim import Simulator
from repro.web.runtime import MissingModelError, WebRuntime


class _BatchRowProxy:
    """Serves one precomputed batched-forward row as ``inference``.

    While a batched work item's pending event runs, the browser's installed
    model is swapped for this proxy so the handler's ``inference(feature)``
    call returns the row the batched forward already computed — the layer
    walk happened once for the whole batch.  Any call with a *different*
    input (a handler that infers twice, or on fresh data) falls through to
    the real model, so correctness never depends on the swap.
    """

    def __init__(self, model, feature, row):
        self._model = model
        self._feature = feature
        self._row = row

    def inference(self, x, *args, **kwargs):
        if not args and not kwargs and np.array_equal(
            np.asarray(x), self._feature
        ):
            return np.array(self._row, copy=True)
        return self._model.inference(x, *args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._model, name)


class EdgeServer:
    """One edge server: model store + browser pool + protocol loops.

    ``serve`` may be called once per connected client; each endpoint gets
    its own protocol loop, while the model store, the session cache and the
    (FIFO) browser device are shared — multiple clients contend for the
    same hardware, as on a real edge node.
    """

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        name: str = "edge",
        installed: bool = True,
        session_cache: bool = True,
        session_cache_capacity: int = 32,
        serving: Optional[ServingConfig] = None,
        memory_budget_bytes: Optional[int] = None,
    ):
        self.sim = sim
        self.device = device
        self.name = name
        self.installed = installed
        #: the continuous-batching loop; None = sequential inline serving
        #: (the seed behaviour, byte-identical by construction)
        self.serving: Optional[ServingLoop] = (
            ServingLoop(sim, device, name, serving, compute=self._compute_batch)
            if serving is not None
            else None
        )
        #: model-cache budget; None = unbounded (the seed behaviour)
        self.memory_budget_bytes = memory_budget_bytes
        self.store = self.fresh_store()
        self.served_requests = 0
        self.errors: List[str] = []
        #: the most recent browser runtime, for inspection in tests
        self.last_runtime: Optional[WebRuntime] = None
        self.endpoints: List[ChannelEnd] = []
        #: virtual times at which an overlay finished installing
        self.install_log: List[float] = []
        #: keep the browser (state + code) of each served app so follow-up
        #: offloads can send deltas (the paper's future-work reuse).
        #: Bounded: edge servers have finite memory, so sessions are
        #: evicted LRU beyond ``session_cache_capacity`` — clients whose
        #: session was evicted transparently fall back to full snapshots.
        self.session_cache = session_cache
        if session_cache_capacity <= 0:
            raise ValueError("session_cache_capacity must be positive")
        self.session_cache_capacity = session_cache_capacity
        self._sessions: "OrderedDict[tuple, WebRuntime]" = OrderedDict()
        self.evicted_sessions = 0
        #: at-most-once execution: replies cached per (sender, request_id)
        #: so a retransmitted request is answered without re-executing
        self._replies: Dict[tuple, protocol.ResultPayload] = {}
        metrics = sim.metrics
        self._requests_counter = metrics.counter(
            "server_requests_total", help="snapshot requests received",
            server=name,
        )
        self._executions_counter = metrics.counter(
            "server_executions_total",
            help="offloaded computations actually executed (at-most-once "
            "per request id: cached replies do not count)",
            server=name,
        )
        self._cached_reply_counter = metrics.counter(
            "server_replies_from_cache_total",
            help="retransmitted requests answered from the reply cache",
            server=name,
        )
        self._refused_counter = metrics.counter(
            "server_refused_requests_total",
            help="requests refused because no offloading system is installed",
            server=name,
        )
        self._error_counter = metrics.counter(
            "server_errors_total", help="ERROR replies sent", server=name
        )
        self._cache_hit_counter = metrics.counter(
            "server_session_cache_hits_total",
            help="delta requests served from a cached session", server=name,
        )
        self._cache_miss_counter = metrics.counter(
            "server_session_cache_misses_total",
            help="delta requests whose session was gone", server=name,
        )
        self._cache_evict_counter = metrics.counter(
            "server_session_cache_evictions_total",
            help="sessions evicted LRU beyond capacity", server=name,
        )
        self._cache_size_gauge = metrics.gauge(
            "server_session_cache_size", help="sessions currently cached",
            server=name,
        )

    @property
    def executions(self) -> int:
        """How many requests this server actually executed (not cached)."""
        return int(self._executions_counter.value)

    def fresh_store(self) -> ModelStore:
        """A new, empty model store with this server's budget and metrics.

        Used at construction and by cold-replacement fault injection (a
        swapped-in box with an empty disk keeps the same configuration).
        """
        return ModelStore(
            self.memory_budget_bytes, metrics=self.sim.metrics, server=self.name
        )

    def restart(self) -> None:
        """Simulate an offloading-server process restart.

        All in-memory state is lost — cached sessions and the at-most-once
        reply cache — so a client whose reply was in flight may observe a
        re-execution, and delta offloads transparently fall back to full
        snapshots.  The model store and the synthesized VM overlay survive
        (they live on disk in the paper's design).
        """
        self._sessions.clear()
        self._replies.clear()
        self._cache_size_gauge.set(0)
        if self.serving is not None:
            # Queued-but-unformed work dies with the process; each waiting
            # protocol loop resumes with the failure and answers its
            # (likely dead) channel through the ordinary error path.
            self.serving.drain(
                ServingDropped(f"server {self.name} restarted")
            )
        self.sim.metrics.counter(
            "server_restarts_total", help="simulated process restarts",
            server=self.name,
        ).inc()

    # -- wiring ---------------------------------------------------------------
    def serve(self, endpoint: ChannelEnd) -> None:
        """Attach a client channel endpoint and start its protocol loop."""
        self.endpoints.append(endpoint)
        self.sim.spawn(
            self._loop(endpoint), label=f"server:{self.name}:{len(self.endpoints)}"
        )

    def _loop(self, endpoint: ChannelEnd):
        while True:
            message = yield endpoint.recv()
            handler = {
                protocol.PING: self._on_ping,
                protocol.MODEL_MANIFEST: self._on_manifest,
                protocol.MODEL_FILE: self._on_model_file,
                protocol.MODEL_OBJECT: self._on_model_object,
                protocol.MODEL_QUERY: self._on_model_query,
                protocol.SNAPSHOT: self._on_snapshot,
                protocol.VM_OVERLAY: self._on_vm_overlay,
            }.get(message.kind)
            if handler is None:
                self._error(endpoint, f"unknown message kind {message.kind!r}")
                continue
            result = handler(endpoint, message)
            if result is not None:  # handler is a sub-process generator
                try:
                    yield from result
                except Exception as exc:  # a failed request must not kill the loop
                    request_id = getattr(message.payload, "request_id", 0)
                    self._error(endpoint, f"request failed: {exc}", request_id)

    # -- capability ---------------------------------------------------------------
    def _on_ping(self, endpoint: ChannelEnd, message: Message) -> None:
        endpoint.send(
            protocol.PONG,
            protocol.CapabilityPayload(
                has_offloading_system=self.installed, server_name=self.name
            ),
        )

    # -- model upload ---------------------------------------------------------------
    def _on_manifest(self, endpoint: ChannelEnd, message: Message) -> None:
        if not self._require_installed(endpoint, "model upload"):
            return
        manifest: protocol.ManifestPayload = message.payload
        try:
            self.store.begin_upload(manifest.model_id, manifest.files)
        except ModelStoreError as exc:
            self._error(endpoint, str(exc))

    def _on_model_file(self, endpoint: ChannelEnd, message: Message) -> None:
        if not self._require_installed(endpoint, "model upload"):
            return
        payload: protocol.ModelFilePayload = message.payload
        try:
            self.store.receive_file(payload.model_id, payload.file)
        except ModelStoreError as exc:
            self._error(endpoint, str(exc))

    def _on_model_object(self, endpoint: ChannelEnd, message: Message) -> None:
        if not self._require_installed(endpoint, "model upload"):
            return
        payload: protocol.ModelObjectPayload = message.payload
        try:
            self.store.attach_model(payload.model_id, payload.model)
        except ModelStoreError as exc:
            self._error(endpoint, str(exc))
            return
        endpoint.send(protocol.MODEL_ACK, protocol.ack_payload(payload.model_id))

    def _on_model_query(self, endpoint: ChannelEnd, message: Message) -> None:
        """Digest handshake: answer whether a matching model is stored.

        A fleet client failing over to this edge asks before re-running
        pre-send; a hit means some earlier client (or this one, before the
        server restarted — the store survives restarts) already uploaded a
        model with the same params fingerprint, so the whole upload can be
        skipped.  An uninstalled server answers ``present=False`` rather
        than erroring: the query is a probe, not a request.
        """
        payload: protocol.ModelQueryPayload = message.payload
        present = self.installed and self.store.matches_fingerprint(
            payload.model_id, payload.fingerprint
        )
        missing = None
        if payload.files is not None:
            # Segment-level (v2) answer: exactly the files whose bytes this
            # store lacks, content-addressed — a file another model already
            # uploaded under a different name is *not* missing.
            if not self.installed:
                missing = [file.name for file in payload.files]
            elif present:
                missing = []
            else:
                missing = self.store.missing_from_manifest(payload.files)
        self.sim.metrics.counter(
            "server_model_queries_total",
            help="digest-handshake queries answered",
            server=self.name,
            present=str(bool(present)).lower(),
        ).inc()
        endpoint.send(
            protocol.MODEL_STATUS,
            protocol.ModelStatusPayload(
                model_id=payload.model_id,
                present=present,
                server_name=self.name,
                missing_files=missing,
            ),
        )

    # -- snapshots --------------------------------------------------------------------
    def _on_snapshot(self, endpoint: ChannelEnd, message: Message):
        """Returns the request-serving sub-process."""
        payload: protocol.SnapshotPayload = message.payload
        self._requests_counter.inc()
        if not self.installed:
            self._refused_counter.inc()
            self._error(
                endpoint, "no offloading system installed", payload.request_id
            )
            return None
        return self._serve_snapshot(endpoint, payload, sender=message.sender)

    def _serve_snapshot(
        self,
        endpoint: ChannelEnd,
        payload: protocol.SnapshotPayload,
        sender: str = "",
    ):
        snapshot = payload.snapshot
        timings: Dict[str, float] = {}

        # At-most-once: a retransmission of an already-served request (the
        # reply was lost in flight) gets the cached reply; re-executing a
        # delta snapshot twice would corrupt the cached session.
        reply_key = (sender, payload.request_id)
        if payload.request_id and reply_key in self._replies:
            self._cached_reply_counter.inc()
            endpoint.send(protocol.RESULT, self._replies[reply_key])
            return

        # Any model files delivered with the snapshot are stored first,
        # completing uploads the pre-send did not finish.
        for delivery in payload.deliveries:
            model = delivery.model
            try:
                self.store.begin_upload(model.model_id, model.files())
                for file in delivery.files:
                    self.store.receive_file(model.model_id, file)
                entry = self.store.begin_upload(model.model_id, model.files())
                if entry.complete and entry.model is None:
                    self.store.attach_model(model.model_id, model)
            except ModelStoreError as exc:
                self._error(endpoint, str(exc), payload.request_id)
                return

        # Resolve the executing browser: a cached session for delta
        # snapshots, a fresh runtime for full snapshots.
        session_key = (sender, snapshot.app_name)
        if snapshot.kind == "delta":
            browser = self._sessions.get(session_key)
            if browser is None:
                self._cache_miss_counter.inc()
                self._error(
                    endpoint,
                    f"no cached session for app {snapshot.app_name!r}",
                    payload.request_id,
                )
                return
            self._cache_hit_counter.inc()
            self._sessions.move_to_end(session_key)  # LRU touch
        else:
            browser = WebRuntime(f"{self.name}-browser")
        for model_id in snapshot.model_refs.values():
            if self.store.has_complete(model_id):
                try:
                    browser.install_model(self.store.get_model(model_id))
                except ModelStoreError:
                    pass  # files complete but no runnable handle yet

        # 1. Restore the snapshot (virtual: parse cost; real: exec program).
        restore_seconds = self.device.snapshot_restore_seconds(snapshot.size_bytes)
        yield self.device.execute(restore_seconds, label="snapshot-restore")
        timings["restore"] = restore_seconds
        try:
            report = restore_snapshot(snapshot, browser)
        except Exception as exc:
            self._error(endpoint, f"restore failed: {exc}", payload.request_id)
            return
        self.last_runtime = browser

        # 2. Continue execution: run the pending event's handlers — inline
        # (sequential, the seed behaviour) or through the serving loop's
        # batch queue (enqueue, yield, resume on batch completion).
        exec_seconds = self._execution_seconds(snapshot)
        if self.serving is not None and report.pending_event is not None:
            model_id, feature = self._batch_target(snapshot, browser)
            item = self.serving.submit(
                sender=sender,
                request_id=payload.request_id,
                browser=browser,
                event=report.pending_event,
                exec_seconds=exec_seconds,
                model_id=model_id,
                feature=feature,
                deadline_s=snapshot.metadata.get("deadline_s"),
            )
            yield item.done
            timings["queue"] = item.queue_seconds
            timings["exec"] = item.exec_share_seconds
            if item.dead_on_arrival:
                # The reply tells the client its answer was already stale
                # when the batch was cut (timings is a float map, so a
                # flag rides as 1.0).
                timings["dead_on_arrival"] = 1.0
            self._executions_counter.inc()
            if item.error is not None:
                if isinstance(item.error, MissingModelError):
                    self._error(endpoint, str(item.error), payload.request_id)
                else:
                    self._error(
                        endpoint,
                        f"handler failed: {item.error}",
                        payload.request_id,
                    )
                return
        else:
            yield self.device.execute(exec_seconds, label="dnn-exec")
            timings["exec"] = exec_seconds
            self._executions_counter.inc()
            if report.pending_event is not None:
                try:
                    browser.run_event(report.pending_event)
                except MissingModelError as exc:
                    self._error(endpoint, str(exc), payload.request_id)
                    return
                except Exception as exc:
                    self._error(
                        endpoint, f"handler failed: {exc}", payload.request_id
                    )
                    return

        # 3. Capture the new state as a delta snapshot and send it back.
        delta = capture_delta(browser, report.fingerprint)
        capture_seconds = self.device.snapshot_capture_seconds(delta.size_bytes)
        yield self.device.execute(capture_seconds, label="snapshot-capture")
        timings["capture"] = capture_seconds
        self.served_requests += 1
        fingerprint = None
        if self.session_cache:
            # Keep the browser for follow-up delta offloads and tell the
            # client exactly what state was left behind.
            self._sessions[session_key] = browser
            self._sessions.move_to_end(session_key)
            while len(self._sessions) > self.session_cache_capacity:
                self._sessions.popitem(last=False)  # evict least recent
                self.evicted_sessions += 1
                self._cache_evict_counter.inc()
            self._cache_size_gauge.set(len(self._sessions))
            fingerprint = fingerprint_runtime(browser)
        reply = protocol.ResultPayload(
            delta=delta,
            request_id=payload.request_id,
            timings=timings,
            fingerprint=fingerprint,
            queue_depth=(
                self.serving.depth() if self.serving is not None else 0
            ),
        )
        if payload.request_id:
            self._replies[reply_key] = reply
        endpoint.send(protocol.RESULT, reply)

    def batch_partial_inference(self, model_id: str, features) -> list:
        """Run one batched rear-part forward for N concurrent sessions.

        Under heavy traffic many clients offload the *same* pre-sent model
        at once; instead of N independent layer walks, the stored model's
        compiled plan stacks all N feature tensors through one
        im2col/matmul per scheduled DAG step — branch-and-join stages
        (inception concats, residual adds) included, since the plan inlines
        composites into first-class steps (``Model.inference_batch``).
        Returns the
        per-session outputs in request order.  Originally an explicit
        server API exercised only by the throughput benchmark; with a
        :class:`~repro.serve.ServingLoop` attached it is the request path —
        the loop's batches (size >= 2) land here, so the
        ``server_batch_forwards_total`` / ``server_batch_size`` metrics
        count real serving traffic.
        """
        if not features:
            return []
        model = self.store.get_model(model_id)
        outputs = model.inference_batch(features)
        self.sim.metrics.counter(
            "server_batch_forwards_total",
            help="batched rear-part forwards executed", server=self.name,
        ).inc()
        self.sim.metrics.histogram(
            "server_batch_size",
            help="sessions per batched forward", server=self.name,
        ).observe(float(len(features)))
        return [outputs[index] for index in range(outputs.shape[0])]

    def _execution_seconds(self, snapshot) -> float:
        """Virtual duration of the offloaded computation on this device."""
        costs = snapshot.metadata.get("server_costs")
        if costs:
            return self.device.forward_seconds(costs)
        return 0.0

    def _batch_target(
        self, snapshot, browser: WebRuntime
    ) -> Tuple[Optional[str], Optional[np.ndarray]]:
        """Resolve a snapshot's batch hint against the restored state.

        Clients that offload a rear-half inference attach
        ``metadata["batch"] = {"model_id", "feature_global"}``; the feature
        tensor itself only exists *after* restore, so resolution happens
        here.  Anything missing or malformed makes the item solo — it still
        flows through the serving loop (queue accounting, batches of one)
        but never shares a forward.
        """
        hint = snapshot.metadata.get("batch")
        if not isinstance(hint, dict):
            return None, None
        model_id = hint.get("model_id")
        feature_global = hint.get("feature_global")
        if not model_id or not feature_global:
            return None, None
        value = browser.globals.get(feature_global)
        data = getattr(value, "data", None)
        if data is None:
            return None, None
        return model_id, np.asarray(data)

    def _compute_batch(self, batch: List[WorkItem]) -> None:
        """Run the real handlers for one dispatched batch.

        Real batches (>= 2 items, one shared model id by queue construction)
        go through :meth:`batch_partial_inference` — one stacked layer walk
        — and each item's handler reads its row back through a
        :class:`_BatchRowProxy`.  Batches of one take the untouched
        per-item path, which keeps single-item serving bitwise-identical to
        sequential serving (even an n=1 batched forward is only
        almost-equal).  Handler exceptions are stored per item for the
        protocol loop to classify; one bad request never poisons its
        batchmates.
        """
        rows = None
        if len(batch) > 1:
            try:
                rows = self.batch_partial_inference(
                    batch[0].model_id,
                    [item.feature for item in batch],
                )
            except Exception:
                rows = None  # fall back to independent per-item forwards
        for index, item in enumerate(batch):
            try:
                real = (
                    item.browser.installed_models.get(item.model_id)
                    if item.model_id is not None
                    else None
                )
                if rows is not None and real is not None:
                    item.browser.installed_models[item.model_id] = (
                        _BatchRowProxy(real, item.feature, rows[index])
                    )
                    try:
                        item.browser.run_event(item.event)
                    finally:
                        item.browser.installed_models[item.model_id] = real
                else:
                    item.browser.run_event(item.event)
            except Exception as exc:
                item.error = exc

    # -- on-demand installation -----------------------------------------------------
    def _on_vm_overlay(self, endpoint: ChannelEnd, message: Message):
        overlay = message.payload
        return self._synthesize(endpoint, overlay)

    def _synthesize(self, endpoint: ChannelEnd, overlay):
        """VM synthesis: decompress the overlay, apply it to the base image."""
        seconds = overlay.synthesis_seconds()
        yield self.device.execute(seconds, label="vm-synthesis")
        self.installed = True
        self.install_log.append(self.sim.now)
        for model in overlay.bundled_models:
            self.store.begin_upload(model.model_id, model.files())
            for file in model.files():
                self.store.receive_file(model.model_id, file)
            self.store.attach_model(model.model_id, model)
        endpoint.send(protocol.VM_READY, {"server": self.name})

    # -- helpers ---------------------------------------------------------------------
    def _require_installed(self, endpoint: ChannelEnd, what: str) -> bool:
        if not self.installed:
            self._refused_counter.inc()
            self._error(endpoint, f"{what} refused: no offloading system installed")
            return False
        return True

    def _error(self, endpoint: ChannelEnd, reason: str, request_id: int = 0) -> None:
        self.errors.append(reason)
        self._error_counter.inc()
        endpoint.send(protocol.ERROR, protocol.ErrorPayload(reason, request_id))
