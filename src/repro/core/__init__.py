"""The paper's contribution: snapshot-based offloading for ML web apps.

Subpackages / modules:

* :mod:`repro.core.snapshot` — capture a running web app's execution state
  into an executable *snapshot program*, restore it on another runtime, and
  capture the result as a *delta snapshot* to send back (paper §III.A).
* :mod:`repro.core.protocol` / :mod:`repro.core.presend` — the wire protocol
  and the NN-model pre-sending state machine with its ACK race (§III.B.1).
* :mod:`repro.core.partition` — the partition-point optimizer for partial
  inference, driven by a Neurosurgeon-style latency predictor and the
  runtime network status (§III.B.2).
* :mod:`repro.core.privacy` — input exposure accounting and the
  hill-climbing feature-inversion attack the design defends against.
* :mod:`repro.core.client` / :mod:`repro.core.server` — the client and edge
  server agents exchanging messages over the simulated network.
* :mod:`repro.core.session` — end-to-end offloading sessions with the phase
  timeline that Figs. 6–7 and Table 1 are computed from.
* :mod:`repro.core.decisions` — offload-vs-local policy (e.g. run locally
  while the model upload is still in flight).
"""

from repro.core.snapshot import (
    CaptureOptions,
    Snapshot,
    SnapshotError,
    capture_delta,
    capture_snapshot,
    restore_snapshot,
)
from repro.core.partition import PartitionChoice, PartitionOptimizer
from repro.core.session import OffloadingSession, SessionResult

__all__ = [
    "CaptureOptions",
    "OffloadingSession",
    "PartitionChoice",
    "PartitionOptimizer",
    "SessionResult",
    "Snapshot",
    "SnapshotError",
    "capture_delta",
    "capture_snapshot",
    "restore_snapshot",
]
