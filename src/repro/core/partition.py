"""Partition-point optimization for partial inference (paper §III.B.2).

"The partitioning point of the front/rear part can be decided dynamically
based on two factors.  One is the execution time of each DNN layer,
estimated by a prediction model for the DNN layers, as used in Neurosurgeon.
The other is the runtime network status.  We estimate the total execution
time for forward execution and select a partitioning point that can
minimize the total execution time, while including at least one layer from
the front part of the DNN to denature the input data."

:class:`PartitionOptimizer` implements exactly that: for every candidate
offload point it predicts

    client time (front layers)  +  snapshot capture  +  transfer of the
    snapshot (code + feature data at that point)  +  restore  +  server
    time (rear layers)  +  return-delta transfer

using per-device latency predictors and the current link profile, and picks
the minimum.  With ``denature=True``, points before the first parameterized
layer are excluded (the input would cross the network un-denatured).

:meth:`PartitionOptimizer.choose_under_deadline` extends the sweep to the
joint (split, exit) space of multi-exit networks (Edgent-style): among the
pairs whose predicted end-to-end time meets the deadline, pick the one with
the highest modeled accuracy; when no pair is feasible, degrade to the
fastest pair so a too-tight SLO still gets the least-late answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.devices.predictor import LatencyPredictor
from repro.devices.profiles import DeviceProfile
from repro.netsim.link import NetemProfile
from repro.nn.cost import LayerCost, exit_head_costs, network_costs
from repro.nn.network import ExitPoint, Network, OffloadPoint

#: planner's allowance for snapshot code + return delta, in bytes
SNAPSHOT_CODE_ALLOWANCE = 16 * 1024
RETURN_DELTA_ALLOWANCE = 4 * 1024


@dataclass(frozen=True)
class PartitionEstimate:
    """Predicted end-to-end time for one candidate offload point."""

    point: OffloadPoint
    client_seconds: float
    transfer_seconds: float
    server_seconds: float
    overhead_seconds: float
    feature_bytes: int

    @property
    def total_seconds(self) -> float:
        return (
            self.client_seconds
            + self.transfer_seconds
            + self.server_seconds
            + self.overhead_seconds
        )


@dataclass(frozen=True)
class PartitionChoice:
    """The optimizer's decision plus the full sweep behind it."""

    best: PartitionEstimate
    estimates: List[PartitionEstimate]

    @property
    def point(self) -> OffloadPoint:
        return self.best.point

    def estimate_for(self, label: str) -> PartitionEstimate:
        for estimate in self.estimates:
            if estimate.point.label == label:
                return estimate
        raise KeyError(f"no estimate for offload point {label!r}")


@dataclass(frozen=True)
class ExitEstimate:
    """Predicted end-to-end time for one (split, exit) pair."""

    exit: ExitPoint
    estimate: PartitionEstimate

    @property
    def accuracy(self) -> float:
        return self.exit.accuracy

    @property
    def total_seconds(self) -> float:
        return self.estimate.total_seconds

    @property
    def point(self) -> OffloadPoint:
        return self.estimate.point


@dataclass(frozen=True)
class DeadlineChoice:
    """The joint (split, exit) decision for one deadline.

    ``feasible`` is True when the chosen pair's predicted time meets the
    deadline; False means *no* pair did and ``best`` is the fastest pair
    overall (the least-late fallback).
    """

    best: ExitEstimate
    feasible: bool
    deadline_s: float
    estimates: List[ExitEstimate]

    @property
    def point(self) -> OffloadPoint:
        return self.best.point

    @property
    def exit(self) -> ExitPoint:
        return self.best.exit

    @property
    def accuracy(self) -> float:
        return self.best.accuracy


class PartitionOptimizer:
    """Chooses the offload point minimizing predicted total time."""

    def __init__(
        self,
        client_predictor: LatencyPredictor,
        server_predictor: LatencyPredictor,
        client_profile: DeviceProfile,
        server_profile: DeviceProfile,
        feature_bytes_fn=None,
        use_plan_costs: bool = False,
        quantize_bits: Optional[int] = None,
    ):
        self.client_predictor = client_predictor
        self.server_predictor = server_predictor
        self.client_profile = client_profile
        self.server_profile = server_profile
        #: price candidate splits on the *optimized* (folded/fused) graph —
        #: front and rear plans are compiled per candidate so no fusion
        #: crosses the split being priced.  Off by default: the paper's
        #: reproduced figures are calibrated against reference-graph costs.
        self.use_plan_costs = use_plan_costs
        #: when set, the feature tensor crosses the split ``bits``-bit
        #: quantized and transfers are priced at the bit-packed wire size
        #: (:func:`repro.nn.quantize.packed_feature_bytes`)
        self.quantize_bits = quantize_bits
        # Injectable for what-if studies (e.g. binary feature encoding).
        if feature_bytes_fn is not None:
            self._feature_bytes = feature_bytes_fn
        elif quantize_bits is not None:
            from repro.nn.quantize import packed_feature_bytes

            self._feature_bytes = lambda shape: packed_feature_bytes(
                shape, quantize_bits
            )
        else:
            from repro.nn.tensor import text_serialized_bytes

            self._feature_bytes = lambda shape: text_serialized_bytes(shape)

    # -- candidate filtering ---------------------------------------------------
    @staticmethod
    def denaturing_points(
        network: Network, points: Sequence[OffloadPoint]
    ) -> List[OffloadPoint]:
        """Points that keep at least one computing layer on the client.

        The input is considered denatured once it has passed the first
        parameterized (conv) layer.
        """
        first_conv = next(
            (
                index
                for index, layer in enumerate(network.layers)
                if layer.kind == "conv"
            ),
            None,
        )
        if first_conv is None:
            return list(points)
        return [point for point in points if point.index >= first_conv]

    # -- estimation ----------------------------------------------------------------
    def estimate(
        self,
        network: Network,
        point: OffloadPoint,
        link: NetemProfile,
    ) -> PartitionEstimate:
        if self.use_plan_costs:
            from repro.nn.cost import plan_costs

            front = plan_costs(network, 0, point.index)
            rear = plan_costs(network, point.index + 1, len(network.layers) - 1)
        else:
            costs = network_costs(network)
            front = [cost for cost in costs if cost.spine_index <= point.index]
            rear = [cost for cost in costs if cost.spine_index > point.index]
        client_seconds = self.client_predictor.predict_forward(front)
        server_seconds = self.server_predictor.predict_forward(rear)
        feature_shape = network.layers[point.index].out_shape
        feature_bytes = int(self._feature_bytes(tuple(feature_shape)))
        outbound = feature_bytes + SNAPSHOT_CODE_ALLOWANCE
        transfer = link.transfer_seconds(outbound) + link.transfer_seconds(
            RETURN_DELTA_ALLOWANCE
        )
        overhead = (
            self.client_profile.snapshot_fixed_s * 2
            + self.server_profile.snapshot_fixed_s * 2
            + outbound / self.client_profile.snapshot_serialize_bps
            + outbound / self.server_profile.snapshot_restore_bps
        )
        return PartitionEstimate(
            point=point,
            client_seconds=client_seconds,
            transfer_seconds=transfer,
            server_seconds=server_seconds,
            overhead_seconds=overhead,
            feature_bytes=feature_bytes,
        )

    def estimate_exit(
        self,
        network: Network,
        point: OffloadPoint,
        link: NetemProfile,
        exit: ExitPoint,
    ) -> ExitEstimate:
        """Predicted time for one (split, exit) pair.

        Like :meth:`estimate`, except the rear part stops at the exit:
        trunk layers past the attach point never run, and a non-final
        exit's classifier head is priced on the server side.
        """
        last = len(network.layers) - 1
        if self.use_plan_costs:
            from repro.nn.cost import plan_costs

            front = plan_costs(network, 0, point.index)
            if exit.is_final:
                rear = plan_costs(network, point.index + 1, last)
            else:
                rear = plan_costs(
                    network, point.index + 1, exit.index, exit_point=exit.index
                )
        else:
            costs = network_costs(network)
            front = [cost for cost in costs if cost.spine_index <= point.index]
            rear = [
                cost
                for cost in costs
                if point.index < cost.spine_index <= exit.index
            ]
            if not exit.is_final:
                rear = rear + exit_head_costs(network, exit.index)
        client_seconds = self.client_predictor.predict_forward(front)
        server_seconds = self.server_predictor.predict_forward(rear)
        feature_shape = network.layers[point.index].out_shape
        feature_bytes = int(self._feature_bytes(tuple(feature_shape)))
        outbound = feature_bytes + SNAPSHOT_CODE_ALLOWANCE
        transfer = link.transfer_seconds(outbound) + link.transfer_seconds(
            RETURN_DELTA_ALLOWANCE
        )
        overhead = (
            self.client_profile.snapshot_fixed_s * 2
            + self.server_profile.snapshot_fixed_s * 2
            + outbound / self.client_profile.snapshot_serialize_bps
            + outbound / self.server_profile.snapshot_restore_bps
        )
        return ExitEstimate(
            exit=exit,
            estimate=PartitionEstimate(
                point=point,
                client_seconds=client_seconds,
                transfer_seconds=transfer,
                server_seconds=server_seconds,
                overhead_seconds=overhead,
                feature_bytes=feature_bytes,
            ),
        )

    def sweep(
        self,
        network: Network,
        link: NetemProfile,
        points: Optional[Sequence[OffloadPoint]] = None,
    ) -> List[PartitionEstimate]:
        """Estimates for every candidate point (Fig. 8's X axis)."""
        if points is None:
            points = network.offload_points()
        return [self.estimate(network, point, link) for point in points]

    def choose(
        self,
        network: Network,
        link: NetemProfile,
        denature: bool = True,
    ) -> PartitionChoice:
        """Pick the total-time-minimizing point (optionally denaturing)."""
        points = network.offload_points()
        candidates = (
            self.denaturing_points(network, points) if denature else list(points)
        )
        if not candidates:
            raise ValueError(f"network {network.name!r} has no candidate points")
        estimates = self.sweep(network, link, candidates)
        # Ties break toward the earlier split: equal-cost points otherwise
        # resolve to whichever the sweep happened to enumerate first, and
        # an earlier split keeps more of the model server-side (smaller
        # pre-send, stronger denaturing never lost since candidates are
        # already filtered).
        best = min(
            estimates,
            key=lambda estimate: (estimate.total_seconds, estimate.point.index),
        )
        return PartitionChoice(best=best, estimates=estimates)

    def choose_under_deadline(
        self,
        network: Network,
        link: NetemProfile,
        deadline_s: float,
        denature: bool = True,
    ) -> DeadlineChoice:
        """Joint (split, exit) choice: max accuracy meeting the deadline.

        Sweeps every (offload point, exit) pair — splits must precede the
        exit they pair with — and picks the highest-accuracy pair whose
        predicted total time is within ``deadline_s``; accuracy ties break
        toward the faster pair, then the earlier split.  When no pair is
        feasible the fastest pair wins (``feasible=False`` on the result),
        so a too-tight SLO degrades to least-late instead of raising.
        """
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        points = network.offload_points()
        candidates = (
            self.denaturing_points(network, points) if denature else list(points)
        )
        if not candidates:
            raise ValueError(f"network {network.name!r} has no candidate points")
        estimates: List[ExitEstimate] = []
        for exit in network.exit_points():
            for point in candidates:
                if point.index >= exit.index:
                    continue  # nothing left to offload past the exit
                estimates.append(self.estimate_exit(network, point, link, exit))
        if not estimates:
            raise ValueError(
                f"network {network.name!r} has no (split, exit) pairs"
            )
        feasible = [
            pair for pair in estimates if pair.total_seconds <= deadline_s
        ]
        if feasible:
            best = min(
                feasible,
                key=lambda pair: (
                    -pair.accuracy,
                    pair.total_seconds,
                    pair.point.index,
                ),
            )
        else:
            best = min(
                estimates,
                key=lambda pair: (pair.total_seconds, pair.point.index),
            )
        return DeadlineChoice(
            best=best,
            feasible=bool(feasible),
            deadline_s=deadline_s,
            estimates=estimates,
        )


def predictions_by_label(
    estimates: Sequence[PartitionEstimate],
) -> Dict[str, float]:
    """Convenience: label -> predicted total seconds."""
    return {estimate.point.label: estimate.total_seconds for estimate in estimates}
