"""Partition-point optimization for partial inference (paper §III.B.2).

"The partitioning point of the front/rear part can be decided dynamically
based on two factors.  One is the execution time of each DNN layer,
estimated by a prediction model for the DNN layers, as used in Neurosurgeon.
The other is the runtime network status.  We estimate the total execution
time for forward execution and select a partitioning point that can
minimize the total execution time, while including at least one layer from
the front part of the DNN to denature the input data."

:class:`PartitionOptimizer` implements exactly that: for every candidate
offload point it predicts

    client time (front layers)  +  snapshot capture  +  transfer of the
    snapshot (code + feature data at that point)  +  restore  +  server
    time (rear layers)  +  return-delta transfer

using per-device latency predictors and the current link profile, and picks
the minimum.  With ``denature=True``, points before the first parameterized
layer are excluded (the input would cross the network un-denatured).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.devices.predictor import LatencyPredictor
from repro.devices.profiles import DeviceProfile
from repro.netsim.link import NetemProfile
from repro.nn.cost import LayerCost, network_costs
from repro.nn.network import Network, OffloadPoint

#: planner's allowance for snapshot code + return delta, in bytes
SNAPSHOT_CODE_ALLOWANCE = 16 * 1024
RETURN_DELTA_ALLOWANCE = 4 * 1024


@dataclass(frozen=True)
class PartitionEstimate:
    """Predicted end-to-end time for one candidate offload point."""

    point: OffloadPoint
    client_seconds: float
    transfer_seconds: float
    server_seconds: float
    overhead_seconds: float
    feature_bytes: int

    @property
    def total_seconds(self) -> float:
        return (
            self.client_seconds
            + self.transfer_seconds
            + self.server_seconds
            + self.overhead_seconds
        )


@dataclass(frozen=True)
class PartitionChoice:
    """The optimizer's decision plus the full sweep behind it."""

    best: PartitionEstimate
    estimates: List[PartitionEstimate]

    @property
    def point(self) -> OffloadPoint:
        return self.best.point

    def estimate_for(self, label: str) -> PartitionEstimate:
        for estimate in self.estimates:
            if estimate.point.label == label:
                return estimate
        raise KeyError(f"no estimate for offload point {label!r}")


class PartitionOptimizer:
    """Chooses the offload point minimizing predicted total time."""

    def __init__(
        self,
        client_predictor: LatencyPredictor,
        server_predictor: LatencyPredictor,
        client_profile: DeviceProfile,
        server_profile: DeviceProfile,
        feature_bytes_fn=None,
        use_plan_costs: bool = False,
        quantize_bits: Optional[int] = None,
    ):
        self.client_predictor = client_predictor
        self.server_predictor = server_predictor
        self.client_profile = client_profile
        self.server_profile = server_profile
        #: price candidate splits on the *optimized* (folded/fused) graph —
        #: front and rear plans are compiled per candidate so no fusion
        #: crosses the split being priced.  Off by default: the paper's
        #: reproduced figures are calibrated against reference-graph costs.
        self.use_plan_costs = use_plan_costs
        #: when set, the feature tensor crosses the split ``bits``-bit
        #: quantized and transfers are priced at the bit-packed wire size
        #: (:func:`repro.nn.quantize.packed_feature_bytes`)
        self.quantize_bits = quantize_bits
        # Injectable for what-if studies (e.g. binary feature encoding).
        if feature_bytes_fn is not None:
            self._feature_bytes = feature_bytes_fn
        elif quantize_bits is not None:
            from repro.nn.quantize import packed_feature_bytes

            self._feature_bytes = lambda shape: packed_feature_bytes(
                shape, quantize_bits
            )
        else:
            from repro.nn.tensor import text_serialized_bytes

            self._feature_bytes = lambda shape: text_serialized_bytes(shape)

    # -- candidate filtering ---------------------------------------------------
    @staticmethod
    def denaturing_points(
        network: Network, points: Sequence[OffloadPoint]
    ) -> List[OffloadPoint]:
        """Points that keep at least one computing layer on the client.

        The input is considered denatured once it has passed the first
        parameterized (conv) layer.
        """
        first_conv = next(
            (
                index
                for index, layer in enumerate(network.layers)
                if layer.kind == "conv"
            ),
            None,
        )
        if first_conv is None:
            return list(points)
        return [point for point in points if point.index >= first_conv]

    # -- estimation ----------------------------------------------------------------
    def estimate(
        self,
        network: Network,
        point: OffloadPoint,
        link: NetemProfile,
    ) -> PartitionEstimate:
        if self.use_plan_costs:
            from repro.nn.cost import plan_costs

            front = plan_costs(network, 0, point.index)
            rear = plan_costs(network, point.index + 1, len(network.layers) - 1)
        else:
            costs = network_costs(network)
            front = [cost for cost in costs if cost.spine_index <= point.index]
            rear = [cost for cost in costs if cost.spine_index > point.index]
        client_seconds = self.client_predictor.predict_forward(front)
        server_seconds = self.server_predictor.predict_forward(rear)
        feature_shape = network.layers[point.index].out_shape
        feature_bytes = int(self._feature_bytes(tuple(feature_shape)))
        outbound = feature_bytes + SNAPSHOT_CODE_ALLOWANCE
        transfer = link.transfer_seconds(outbound) + link.transfer_seconds(
            RETURN_DELTA_ALLOWANCE
        )
        overhead = (
            self.client_profile.snapshot_fixed_s * 2
            + self.server_profile.snapshot_fixed_s * 2
            + outbound / self.client_profile.snapshot_serialize_bps
            + outbound / self.server_profile.snapshot_restore_bps
        )
        return PartitionEstimate(
            point=point,
            client_seconds=client_seconds,
            transfer_seconds=transfer,
            server_seconds=server_seconds,
            overhead_seconds=overhead,
            feature_bytes=feature_bytes,
        )

    def sweep(
        self,
        network: Network,
        link: NetemProfile,
        points: Optional[Sequence[OffloadPoint]] = None,
    ) -> List[PartitionEstimate]:
        """Estimates for every candidate point (Fig. 8's X axis)."""
        if points is None:
            points = network.offload_points()
        return [self.estimate(network, point, link) for point in points]

    def choose(
        self,
        network: Network,
        link: NetemProfile,
        denature: bool = True,
    ) -> PartitionChoice:
        """Pick the total-time-minimizing point (optionally denaturing)."""
        points = network.offload_points()
        candidates = (
            self.denaturing_points(network, points) if denature else list(points)
        )
        if not candidates:
            raise ValueError(f"network {network.name!r} has no candidate points")
        estimates = self.sweep(network, link, candidates)
        best = min(estimates, key=lambda estimate: estimate.total_seconds)
        return PartitionChoice(best=best, estimates=estimates)


def predictions_by_label(
    estimates: Sequence[PartitionEstimate],
) -> Dict[str, float]:
    """Convenience: label -> predicted total seconds."""
    return {estimate.point.label: estimate.total_seconds for estimate in estimates}
