"""Privacy analysis of offloaded snapshots (paper §III.B.2).

Three tools:

* :func:`snapshot_exposes_input` — does a snapshot's payload contain the
  user's input image (as an attachment or as serialized tensor text)?
  Full offloading exposes it; partial inference ships only feature data.
* :func:`hill_climb_invert` — the attack the paper cites [17]: reconstruct
  the input from feature data by hill climbing, *given the front model*.
  Withholding the front part of the DNN (pre-sending only the rear) is the
  paper's defense, and :func:`inversion_study` quantifies it by running the
  attack with the true front model vs. a surrogate the attacker would have
  to guess.
* :func:`denaturing_score` — how unrecognizable the feature data is
  relative to the input (correlation-based; higher = more denatured).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.snapshot.capture import Snapshot
from repro.core.snapshot.codegen import render_tensor_text
from repro.nn.model import Model
from repro.sim import SeededRng


# -- exposure -----------------------------------------------------------------

def snapshot_exposes_input(snapshot: Snapshot, input_pixels: np.ndarray) -> bool:
    """True if the snapshot payload contains the input image."""
    flat = np.asarray(input_pixels, dtype=np.float32)
    for attachment in snapshot.attachments.values():
        if attachment.shape == flat.shape and np.array_equal(attachment, flat):
            return True
    if flat.size and flat.size * 10 < len(snapshot.program):
        # Cheap containment probe: the exact serialized text of the first
        # values would appear verbatim if the tensor was text-serialized.
        probe = render_tensor_text(flat.ravel()[: min(16, flat.size)])
        if probe in snapshot.program:
            return True
    return False


# -- feature inversion ------------------------------------------------------------

@dataclass
class InversionResult:
    """Outcome of a hill-climbing reconstruction attempt."""

    reconstruction: np.ndarray
    feature_loss: float
    initial_feature_loss: float
    input_mse: float
    #: the random starting image, kept so studies can re-score baselines
    initial_candidate: Optional[np.ndarray] = None

    @property
    def loss_reduction(self) -> float:
        """Fraction of the feature-matching loss the attack removed."""
        if self.initial_feature_loss <= 0:
            return 0.0
        return 1.0 - self.feature_loss / self.initial_feature_loss


def _feature_loss(front: Model, candidate: np.ndarray, target_feature: np.ndarray) -> float:
    produced = front.inference(candidate)
    return float(np.mean((produced - target_feature) ** 2))


def hill_climb_invert(
    front: Model,
    target_feature: np.ndarray,
    input_shape,
    iterations: int = 400,
    step: float = 16.0,
    rng: Optional[SeededRng] = None,
    true_input: Optional[np.ndarray] = None,
    value_range=(0.0, 255.0),
) -> InversionResult:
    """Reconstruct an input from feature data via hill climbing [17].

    Starts from a random image and repeatedly perturbs a random patch,
    keeping mutations that bring ``front(candidate)`` closer to the target
    feature.  The attacker needs ``front`` — which is exactly what the
    paper withholds from the server.
    """
    rng = rng or SeededRng(0, "inversion")
    low, high = value_range
    candidate = rng.uniform_array(tuple(input_shape), low, high)
    initial_candidate = candidate.copy()
    loss = _feature_loss(front, candidate, target_feature)
    initial_loss = loss
    channels, height, width = input_shape
    for iteration in range(iterations):
        patch = max(1, min(height, width) // 4)
        y = rng.randint(0, height - patch)
        x = rng.randint(0, width - patch)
        channel = rng.randint(0, channels - 1)
        mutated = candidate.copy()
        noise = rng.normal_array((patch, patch), step)
        mutated[channel, y : y + patch, x : x + patch] = np.clip(
            mutated[channel, y : y + patch, x : x + patch] + noise, low, high
        )
        mutated_loss = _feature_loss(front, mutated, target_feature)
        if mutated_loss < loss:
            candidate, loss = mutated, mutated_loss
    input_mse = (
        float(np.mean((candidate - true_input) ** 2)) if true_input is not None else float("nan")
    )
    return InversionResult(
        reconstruction=candidate,
        feature_loss=loss,
        initial_feature_loss=initial_loss,
        input_mse=input_mse,
        initial_candidate=initial_candidate,
    )


@dataclass
class InversionStudy:
    """Attack quality with vs. without the true front model."""

    with_front: InversionResult
    without_front: InversionResult

    @property
    def defense_effective(self) -> bool:
        """Withholding the front model must cripple the attack."""
        return self.with_front.loss_reduction > 2 * max(
            self.without_front.loss_reduction, 1e-9
        )


def inversion_study(
    front: Model,
    surrogate_front: Model,
    input_image: np.ndarray,
    iterations: int = 400,
    rng: Optional[SeededRng] = None,
) -> InversionStudy:
    """Run the inversion attack with and without the real front model.

    The "without" attacker holds only a surrogate (a same-architecture
    model with unknown parameters — the best it can do when the front part
    was never sent), so its loss is measured against the *true* feature it
    observed, while it optimizes through the surrogate.
    """
    rng = rng or SeededRng(0, "inversion-study")
    true_feature = front.inference(input_image)
    with_front = hill_climb_invert(
        front,
        true_feature,
        input_image.shape,
        iterations=iterations,
        rng=rng.child("with"),
        true_input=input_image,
    )
    # The blind attacker hill-climbs through the surrogate; we then score
    # its reconstruction against the real front model's feature map.
    blind = hill_climb_invert(
        surrogate_front,
        true_feature,
        input_image.shape,
        iterations=iterations,
        rng=rng.child("without"),
        true_input=input_image,
    )
    # Score the blind attacker against the *true* front model: both its
    # starting point and its final reconstruction.  Optimizing through the
    # surrogate should barely move the true loss.
    blind_true_initial = _feature_loss(front, blind.initial_candidate, true_feature)
    blind_true_loss = _feature_loss(front, blind.reconstruction, true_feature)
    without_front = InversionResult(
        reconstruction=blind.reconstruction,
        feature_loss=blind_true_loss,
        initial_feature_loss=blind_true_initial,
        input_mse=blind.input_mse,
        initial_candidate=blind.initial_candidate,
    )
    return InversionStudy(with_front=with_front, without_front=without_front)


# -- denaturing metric ----------------------------------------------------------

def denaturing_score(input_image: np.ndarray, feature: np.ndarray) -> float:
    """How unrecognizable the feature is vs. the input, in [0, 1].

    Computes the best absolute Pearson correlation between the (resampled)
    input intensity map and any feature channel, and returns one minus it.
    1.0 means no feature channel resembles the input at all.
    """
    gray = np.asarray(input_image, dtype=np.float64).mean(axis=0)
    feature = np.asarray(feature, dtype=np.float64)
    if feature.ndim == 1:
        return 1.0
    best = 0.0
    for channel in feature:
        resampled = _resample_like(gray, channel.shape)
        correlation = _pearson(resampled.ravel(), channel.ravel())
        best = max(best, abs(correlation))
    return 1.0 - best


def _resample_like(image: np.ndarray, shape) -> np.ndarray:
    ys = np.linspace(0, image.shape[0] - 1, shape[0]).astype(int)
    xs = np.linspace(0, image.shape[1] - 1, shape[1]).astype(int)
    return image[np.ix_(ys, xs)]


def _pearson(a: np.ndarray, b: np.ndarray) -> float:
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])
