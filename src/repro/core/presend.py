"""Pre-sending NN models to the edge server (paper §III.B.1).

"When a web app starts, the client device sends the NN model files
(including the description/parameters of the NN) to the server.  The server
saves the files and sends an ACK message to the client.  After receiving
the ACK, the client just needs to send the snapshot without the model."

:class:`PresendManager` runs that upload as a simulated process — manifest
first, then one message per file, then the runnable model handle — and
tracks the ACK per model.  The upload can be *cancelled between files* when
the user triggers offloading early: whatever has not been transmitted yet
rides along with the snapshot instead (see
:class:`repro.core.protocol.ModelDelivery`), so bytes are never sent twice.

``skip_files`` feeds the segment-level handshake answer back in: files the
server reported as already resident (content-addressed — possibly uploaded
under a *different* model) are marked sent up front, so only the missing
segments ever touch the wire.  The skipped byte volume is accounted in the
``presend_files_skipped_total`` / ``presend_bytes_deduped_total`` counters,
and actually-transmitted file bytes in ``presend_bytes_sent_total``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core import protocol
from repro.netsim.channel import ChannelEnd
from repro.nn.model import Model, ModelFile
from repro.sim import Interrupt, Process, SimEvent, Simulator


class PresendManager:
    """Client-side model upload state machine."""

    def __init__(
        self,
        sim: Simulator,
        endpoint: ChannelEnd,
        models: List[Model],
        *,
        skip_files: Optional[Dict[str, Set[str]]] = None,
    ):
        self.sim = sim
        self.endpoint = endpoint
        self.models = list(models)
        self._sent_files: Dict[str, set] = {model.model_id: set() for model in models}
        self._skipped_counter = sim.metrics.counter(
            "presend_files_skipped_total",
            help="model files skipped because the server already held their "
            "bytes (segment-level handshake)",
        )
        self._deduped_counter = sim.metrics.counter(
            "presend_bytes_deduped_total",
            help="file bytes never sent thanks to content-addressed dedup",
        )
        self._sent_counter = sim.metrics.counter(
            "presend_bytes_sent_total",
            help="model file bytes transmitted by pre-send uploads",
        )
        if skip_files:
            for model in self.models:
                known = skip_files.get(model.model_id)
                if not known:
                    continue
                sizes = {file.name: file.size_bytes for file in model.files()}
                for name in sorted(known):
                    if name in sizes and name not in self._sent_files[model.model_id]:
                        self._sent_files[model.model_id].add(name)
                        self._skipped_counter.inc()
                        self._deduped_counter.inc(sizes[name])
        self._acked: Dict[str, bool] = {model.model_id: False for model in models}
        self._ack_events: Dict[str, SimEvent] = {
            model.model_id: sim.event(label=f"ack:{model.model_id}")
            for model in models
        }
        self._upload_proc: Optional[Process] = None
        self._ack_proc: Optional[Process] = None
        self.started = False
        self.cancelled = False

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Begin uploading all models (call when the app starts)."""
        if self.started:
            raise RuntimeError("pre-sending already started")
        self.started = True
        self._upload_proc = self.sim.spawn(self._upload(), label="presend-upload")
        self._ack_proc = self.sim.spawn(self._await_acks(), label="presend-acks")

    def cancel(self) -> None:
        """Stop sending further files (offloading is superseding the upload)."""
        self.cancelled = True
        if self._upload_proc is not None and self._upload_proc.is_alive:
            self._upload_proc.interrupt("superseded by snapshot")

    # -- queries -----------------------------------------------------------------
    def is_acked(self, model_id: str) -> bool:
        return self._acked.get(model_id, False)

    def all_acked(self) -> bool:
        return all(self._acked.values())

    def ack_event(self, model_id: str) -> SimEvent:
        """Event that succeeds when the server ACKs this model."""
        return self._ack_events[model_id]

    def missing_files(self, model: Model) -> List[ModelFile]:
        """Files the server does not have yet (not transmitted, not ACKed)."""
        if self.is_acked(model.model_id):
            return []
        sent = self._sent_files.get(model.model_id, set())
        return [file for file in model.files() if file.name not in sent]

    def pending_deliveries(self) -> List[protocol.ModelDelivery]:
        """Model deliveries a snapshot must carry right now.

        Any un-ACKed model is included — with whatever files the server
        still lacks (possibly none: if only the final object handle was
        cancelled, the delivery is zero-byte and just completes the upload).
        """
        deliveries = []
        for model in self.models:
            if self.is_acked(model.model_id):
                continue
            deliveries.append(
                protocol.ModelDelivery(model=model, files=self.missing_files(model))
            )
        return deliveries

    def mark_delivered(self, model: Model, files: List[ModelFile]) -> None:
        """Record files that reached the server via a snapshot delivery."""
        sent = self._sent_files.setdefault(model.model_id, set())
        sent.update(file.name for file in files)

    # -- processes ----------------------------------------------------------------
    def _upload(self):
        try:
            for model in self.models:
                manifest = protocol.ManifestPayload(model.model_id, model.files())
                yield self.endpoint.send(protocol.MODEL_MANIFEST, manifest)
                for file in model.files():
                    if file.name in self._sent_files[model.model_id]:
                        continue  # already delivered via a snapshot
                    payload = protocol.ModelFilePayload(model.model_id, file)
                    # Mark at transmit time: once send() is called the bits
                    # are committed to the FIFO wire and will arrive before
                    # any later snapshot, so they must not ride along too.
                    self._sent_files[model.model_id].add(file.name)
                    self._sent_counter.inc(file.size_bytes)
                    yield self.endpoint.send(protocol.MODEL_FILE, payload)
                yield self.endpoint.send(
                    protocol.MODEL_OBJECT,
                    protocol.ModelObjectPayload(model.model_id, model),
                )
        except Interrupt:
            return  # cancelled between messages; remaining files ride along

    def _await_acks(self):
        remaining = {model.model_id for model in self.models}
        while remaining:
            message = yield self.endpoint.recv_kind(protocol.MODEL_ACK)
            model_id = message.payload["model_id"]
            if model_id in remaining:
                remaining.discard(model_id)
                self._acked[model_id] = True
                self._ack_events[model_id].succeed(self.sim.now)
