"""The client-side offloading agent.

The agent owns the client browser runtime and device, installs the event
interceptor that diverts offload-marked events ("we take a snapshot just
before executing a computation-intensive part"), runs the migration —
capture, ship (with model deliveries if the ACK has not arrived), await the
result delta, apply it — and accounts every phase on the virtual clock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core import protocol
from repro.core.snapshot import (
    CaptureOptions,
    Snapshot,
    capture_delta,
    capture_snapshot,
    restore_snapshot,
)
from repro.devices.device import Device
from repro.netsim.channel import ChannelEnd
from repro.core.presend import PresendManager
from repro.sim import Simulator
from repro.web.app import WebApp
from repro.web.events import Event
from repro.web.runtime import WebRuntime


class OffloadError(RuntimeError):
    """The server refused or failed an offloading request."""


@dataclass
class OffloadOutcome:
    """Everything observable about one completed offload round trip."""

    snapshot: Snapshot
    delta: Snapshot
    request_id: int
    #: client-side durations
    capture_seconds: float = 0.0
    restore_seconds: float = 0.0
    #: transfer durations measured off the message timestamps
    transfer_to_server_seconds: float = 0.0
    transfer_to_client_seconds: float = 0.0
    #: server-reported durations (restore / exec / capture)
    server_timings: Dict[str, float] = field(default_factory=dict)
    #: bytes of model files that rode along with the snapshot
    delivery_bytes: int = 0
    #: server-reported serving-queue depth at reply time (0 when the
    #: server runs without a serving loop)
    server_queue_depth: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.finished_at - self.started_at


class ClientAgent:
    """The embedded device: browser runtime + offloading machinery."""

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        endpoint: ChannelEnd,
        capture_options: CaptureOptions = CaptureOptions(),
    ):
        self.sim = sim
        self.device = device
        self.endpoint = endpoint
        self.capture_options = capture_options
        self.runtime = WebRuntime("client-browser")
        self.presend: Optional[PresendManager] = None
        self.intercepted: List[Event] = []
        self._request_ids = itertools.count(1)
        self.runtime.events.set_interceptor(self.intercepted.append)
        #: per-app fingerprint of the state cached on the current server;
        #: when present, follow-up offloads send deltas instead of full
        #: snapshots (the paper's future-work reuse of server-side state)
        self.session_baselines: Dict[str, Any] = {}
        metrics = sim.metrics
        labels = {"client": endpoint.name}
        self._offload_counter = metrics.counter(
            "client_offload_requests_total", help="offload round trips started",
            **labels,
        )
        self._retransmit_counter = metrics.counter(
            "client_retransmissions_total",
            help="snapshot payloads retransmitted after a reply timeout",
            **labels,
        )
        self._timeout_counter = metrics.counter(
            "client_reply_timeouts_total", help="reply waits that timed out",
            **labels,
        )
        self._fallback_counter = metrics.counter(
            "client_session_fallbacks_total",
            help="delta offloads retried as full snapshots (session lost)",
            **labels,
        )
        self._failure_counter = metrics.counter(
            "client_offload_failures_total",
            help="offload round trips abandoned with an error", **labels,
        )
        self._local_counter = metrics.counter(
            "client_local_executions_total",
            help="events executed on the client device instead of offloaded",
            **labels,
        )

    # -- attachment --------------------------------------------------------------
    def rebind(self, endpoint: ChannelEnd) -> None:
        """Point the agent at a different channel endpoint (fleet failover).

        The browser runtime and all app state stay put — only the wire
        changes, exactly as when a mobile client re-associates with a new
        edge server.  Any pre-send manager is dropped: it belonged to the
        old server's store, and the caller decides (digest handshake)
        whether the new edge needs its own upload before assigning a fresh
        one.
        """
        self.endpoint = endpoint
        self.presend = None

    # -- app lifecycle -----------------------------------------------------------
    def start_app(self, app: WebApp, presend: bool = True) -> None:
        """Load the app; begin pre-sending its models if enabled."""
        self.runtime.load_app(app)
        self.runtime.events.set_interceptor(self.intercepted.append)
        if presend:
            self.presend = PresendManager(
                self.sim, self.endpoint, app.presend_models()
            )
            self.presend.start()
        else:
            self.presend = None

    def mark_offload_point(self, event_type: str, target_id: Optional[str] = None) -> None:
        """Declare which event triggers offloading (Fig. 5's choice)."""
        self.runtime.events.mark_offload_event(event_type, target_id)

    def take_intercepted(self) -> Event:
        if not self.intercepted:
            raise OffloadError("no event was intercepted")
        return self.intercepted.pop(0)

    # -- the migration ----------------------------------------------------------------
    def _await_reply(self, request_id: int, timeout: Optional[float]):
        """Wait for this request's RESULT or ERROR, discarding stale ones.

        Returns ``("result"|"error", message)`` or ``("timeout", None)``.
        """
        from repro.netsim.channel import ReceiveTimeout

        while True:
            result_wait = self.endpoint.recv_kind(protocol.RESULT, timeout=timeout)
            error_wait = self.endpoint.recv_kind(protocol.ERROR)
            try:
                yield self.sim.any_of([result_wait, error_wait])
            except ReceiveTimeout:
                self.endpoint.cancel_wait(result_wait)
                self.endpoint.cancel_wait(error_wait)
                return ("timeout", None)
            if error_wait.triggered:
                self.endpoint.cancel_wait(result_wait)
                error_id = error_wait.value.payload.request_id
                if error_id in (0, request_id):
                    return ("error", error_wait.value)
                continue  # an old request's error; ignore it
            self.endpoint.cancel_wait(error_wait)
            reply = result_wait.value
            if reply.payload.request_id == request_id:
                return ("result", reply)
            # A stale RESULT from a slow earlier attempt; drop and re-wait.

    def offload(
        self,
        event: Event,
        server_costs: Optional[List[Any]] = None,
        attach_models_if_unacked: bool = True,
        use_session_cache: bool = True,
        reply_timeout: Optional[float] = None,
        retries: int = 0,
        batch_hint: Optional[Dict[str, str]] = None,
        deadline_s: Optional[float] = None,
    ):
        """Simulated process performing one offload round trip.

        ``batch_hint`` (``{"model_id": ..., "feature_global": ...}``) rides
        in the snapshot metadata and tells a batching server which stored
        model and which restored global hold this request's rear-half
        inference, so concurrent same-model requests can share one batched
        forward.  Servers without a serving loop ignore it.

        ``deadline_s`` is this request's completion SLO; it rides in the
        snapshot metadata and overrides the serving loop's config-wide
        deadline for this item.  Servers without a serving loop ignore it.

        Yields simulation events; the process result is an
        :class:`OffloadOutcome`.  Raises :class:`OffloadError` if the server
        replies with an ERROR (e.g. no offloading system installed).

        With ``use_session_cache`` (default), follow-up offloads of the same
        app send a *delta* against the state the previous offload left on
        the server; if the server lost that session, the agent falls back
        to a full snapshot transparently.

        ``reply_timeout`` / ``retries`` enable loss tolerance: if no reply
        arrives in time the snapshot is retransmitted (the server dedups by
        request id, so execution stays at-most-once).
        """
        started_at = self.sim.now
        self._offload_counter.inc()

        # 1. Capture the execution state: full, or a delta against the
        # state cached on the server from the previous offload.
        baseline = (
            self.session_baselines.get(self.runtime.app_name)
            if use_session_cache
            else None
        )
        if baseline is not None:
            snapshot = capture_delta(
                self.runtime,
                baseline,
                pending_event=event,
                options=CaptureOptions(
                    live_only=True,
                    include_canvas_pixels=self.capture_options.include_canvas_pixels,
                ),
            )
        else:
            snapshot = capture_snapshot(self.runtime, event, self.capture_options)
        if server_costs is not None:
            snapshot.metadata["server_costs"] = server_costs
        if batch_hint is not None:
            snapshot.metadata["batch"] = dict(batch_hint)
        if deadline_s is not None:
            snapshot.metadata["deadline_s"] = float(deadline_s)
        capture_seconds = self.device.snapshot_capture_seconds(snapshot.size_bytes)
        yield self.device.execute(capture_seconds, label="snapshot-capture")

        # 2. Decide what must ride along: any model files the server lacks.
        deliveries: List[protocol.ModelDelivery] = []
        if attach_models_if_unacked and self.presend is not None:
            deliveries = self.presend.pending_deliveries()
            if deliveries:
                # Stop the background upload; the snapshot supersedes it.
                self.presend.cancel()
                for delivery in deliveries:
                    self.presend.mark_delivered(delivery.model, delivery.files)

        # 3. Ship the snapshot and wait for the result, retransmitting the
        # whole payload on timeout (the lost message may have carried the
        # model files; the server's store and reply cache keep everything
        # idempotent).
        request_id = next(self._request_ids)
        payload = protocol.SnapshotPayload(
            snapshot=snapshot, deliveries=deliveries, request_id=request_id
        )
        attempt = 0
        send_event = self.endpoint.send(protocol.SNAPSHOT, payload)
        while True:
            status, reply = yield from self._await_reply(request_id, reply_timeout)
            if status == "result":
                break
            if status == "timeout":
                self._timeout_counter.inc()
                attempt += 1
                if attempt > retries:
                    self._failure_counter.inc()
                    raise OffloadError(
                        f"no reply to request {request_id} after "
                        f"{attempt} attempt(s)"
                    )
                self._retransmit_counter.inc()
                self.endpoint.send(protocol.SNAPSHOT, payload)
                continue
            reason = reply.payload.reason
            if baseline is not None and "no cached session" in reason:
                # The server lost our session (restart / handover): retry
                # once with a full snapshot.
                self._fallback_counter.inc()
                self.session_baselines.pop(self.runtime.app_name, None)
                outcome = yield from self.offload(
                    event,
                    server_costs=server_costs,
                    attach_models_if_unacked=attach_models_if_unacked,
                    use_session_cache=False,
                    reply_timeout=reply_timeout,
                    retries=retries,
                    batch_hint=batch_hint,
                    deadline_s=deadline_s,
                )
                return outcome
            self._failure_counter.inc()
            raise OffloadError(reason)

        # 4. Apply the delta snapshot to continue execution locally.
        delta = reply.payload.delta
        restore_seconds = self.device.snapshot_restore_seconds(delta.size_bytes)
        yield self.device.execute(restore_seconds, label="delta-restore")
        report = restore_snapshot(delta, self.runtime)
        if report.pending_event is not None:
            self.runtime.run_event(report.pending_event)
        if reply.payload.fingerprint is not None:
            self.session_baselines[self.runtime.app_name] = reply.payload.fingerprint
        else:
            self.session_baselines.pop(self.runtime.app_name, None)

        outbound = send_event.value if send_event.triggered and send_event.ok else None
        return OffloadOutcome(
            snapshot=snapshot,
            delta=delta,
            request_id=request_id,
            capture_seconds=capture_seconds,
            restore_seconds=restore_seconds,
            transfer_to_server_seconds=(
                (outbound.delivered_at - outbound.sent_at) if outbound else 0.0
            ),
            transfer_to_client_seconds=(reply.delivered_at - reply.sent_at),
            server_timings=dict(reply.payload.timings),
            delivery_bytes=payload.delivery_bytes,
            server_queue_depth=int(
                getattr(reply.payload, "queue_depth", 0) or 0
            ),
            started_at=started_at,
            finished_at=self.sim.now,
        )

    # -- local execution -----------------------------------------------------------
    def run_local(self, event: Event, costs: List[Any]):
        """Simulated process: execute the event's handlers on the client."""
        self._local_counter.inc()
        seconds = self.device.forward_seconds(costs)
        yield self.device.execute(seconds, label="local-dnn")
        self.runtime.run_event(event)
        return seconds
