"""End-to-end offloading sessions and their phase breakdowns.

One :class:`OffloadingSession` is one user interaction with a benchmark
app: the image is loaded, the inference button is clicked, and the
configured execution mode runs to completion on the virtual clock.  The
result carries the paper's Fig. 7 phase breakdown — snapshot capture (C),
transmission, restore (S), DNN execution, capture (S), transmission,
restore (C) — measured off the actual simulated timeline, plus the DOM
text the user would see (so correctness is checked, not assumed).

Modes (the paper's Fig. 6 configurations):

* ``client``  — the app runs entirely on the client.
* ``server``  — the app runs entirely on the server (:func:`run_server_only`).
* ``offload`` — snapshot-based offloading of the full inference handler;
  before the ACK the model files ride along, after the ACK only the
  snapshot travels.
* ``offload-partial`` — partial inference: ``front()`` on the client, the
  ``front_complete`` event offloads ``rear()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.client import ClientAgent, OffloadOutcome
from repro.core.snapshot import CaptureOptions
from repro.devices.device import Device
from repro.nn.cost import LayerCost
from repro.sim import Simulator
from repro.web.app import WebApp
from repro.web.events import Event
from repro.web.runtime import WebRuntime
from repro.web.values import ImageData


#: (phase key, display name, track) in execution order — the canonical
#: timeline layout shared by span emission and the chrome-trace exporter
PHASE_TRACKS: Tuple[Tuple[str, str, str], ...] = (
    ("client_exec", "DNN exec (front/local)", "client"),
    ("snapshot_capture_client", "snapshot capture", "client"),
    ("transfer_to_server", "snapshot uplink", "network"),
    ("snapshot_restore_server", "snapshot restore", "server"),
    ("server_queue", "batch queue", "server"),
    ("server_exec", "DNN exec", "server"),
    ("snapshot_capture_server", "delta capture", "server"),
    ("transfer_to_client", "delta downlink", "network"),
    ("snapshot_restore_client", "delta restore", "client"),
    ("other", "queueing / protocol", "network"),
)


@dataclass
class PhaseBreakdown:
    """Durations of each phase of one inference (Fig. 7's segments)."""

    client_exec: float = 0.0
    snapshot_capture_client: float = 0.0
    transfer_to_server: float = 0.0
    snapshot_restore_server: float = 0.0
    #: time spent queued in the server's batching loop (0 when the server
    #: executes inline); attributed from the reply's ``timings["queue"]``
    server_queue: float = 0.0
    server_exec: float = 0.0
    snapshot_capture_server: float = 0.0
    transfer_to_client: float = 0.0
    snapshot_restore_client: float = 0.0
    #: queueing, propagation residue, scheduling — everything unattributed
    other: float = 0.0

    def accounted(self) -> float:
        return (
            self.client_exec
            + self.snapshot_capture_client
            + self.transfer_to_server
            + self.snapshot_restore_server
            + self.server_queue
            + self.server_exec
            + self.snapshot_capture_server
            + self.transfer_to_client
            + self.snapshot_restore_client
        )

    def total(self) -> float:
        return self.accounted() + self.other

    def as_dict(self) -> Dict[str, float]:
        return {
            "client_exec": self.client_exec,
            "snapshot_capture_client": self.snapshot_capture_client,
            "transfer_to_server": self.transfer_to_server,
            "snapshot_restore_server": self.snapshot_restore_server,
            "server_queue": self.server_queue,
            "server_exec": self.server_exec,
            "snapshot_capture_server": self.snapshot_capture_server,
            "transfer_to_client": self.transfer_to_client,
            "snapshot_restore_client": self.snapshot_restore_client,
            "other": self.other,
        }


@dataclass
class SessionResult:
    """Outcome of one inference interaction."""

    mode: str
    model_name: str
    total_seconds: float
    phases: PhaseBreakdown
    result_text: str = ""
    result_label: Optional[int] = None
    #: label the same model computes without any offloading (ground truth)
    expected_label: Optional[int] = None
    snapshot_bytes: int = 0
    snapshot_code_bytes: int = 0
    snapshot_feature_bytes: int = 0
    delivery_bytes: int = 0
    delta_bytes: int = 0
    partition_label: Optional[str] = None
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def correct(self) -> bool:
        """Did offloading preserve the app's result?"""
        if self.expected_label is None or self.result_label is None:
            return False
        return self.result_label == self.expected_label

    @property
    def migration_seconds(self) -> float:
        """Table 1's "migration time": everything except DNN execution."""
        return self.total_seconds - self.phases.client_exec - self.phases.server_exec


def record_session_telemetry(sim: Simulator, result: "SessionResult") -> None:
    """Feed one finished session into ``sim.metrics`` and ``sim.spans``.

    Every phase duration is observed into the ``session_phase_seconds``
    histogram (labeled by phase and mode), and the positive phases are
    emitted as spans on the client / network / server tracks, reconstructed
    in execution order from ``started_at`` — the same timeline
    :mod:`repro.eval.traces` renders, now queryable as data.
    """
    registry = sim.metrics
    registry.counter(
        "sessions_total", help="finished sessions", mode=result.mode
    ).inc()
    registry.histogram(
        "session_total_seconds", help="wall time of one session",
        mode=result.mode,
    ).observe(result.total_seconds)
    phases = result.phases.as_dict()
    cursor = result.started_at
    for key, label, track in PHASE_TRACKS:
        duration = phases.get(key, 0.0)
        registry.histogram(
            "session_phase_seconds", help="duration of one session phase",
            phase=key, mode=result.mode,
        ).observe(duration)
        if duration <= 0:
            continue
        sim.spans.add(
            label,
            cursor,
            cursor + duration,
            track=track,
            category="session-phase",
            phase=key,
            mode=result.mode,
            model=result.model_name,
        )
        cursor += duration


class OffloadingSession:
    """Drives one user interaction through a configured execution mode."""

    def __init__(
        self,
        sim: Simulator,
        client: ClientAgent,
        app: WebApp,
        model_name: str,
        input_image: ImageData,
        *,
        full_costs: List[LayerCost],
        front_costs: Optional[List[LayerCost]] = None,
        rear_costs: Optional[List[LayerCost]] = None,
        expected_label: Optional[int] = None,
        partition_label: Optional[str] = None,
        reply_timeout: Optional[float] = None,
        retries: int = 0,
    ):
        self.sim = sim
        self.client = client
        self.app = app
        self.model_name = model_name
        self.input_image = input_image
        self.full_costs = full_costs
        self.front_costs = front_costs or []
        self.rear_costs = rear_costs or []
        self.expected_label = expected_label
        self.partition_label = partition_label
        #: loss tolerance for the offload modes (passed to ClientAgent.offload)
        self.reply_timeout = reply_timeout
        self.retries = retries

    # -- shared steps -----------------------------------------------------------
    def _load_image(self, runtime: WebRuntime) -> None:
        runtime.globals["pending_pixels"] = self.input_image
        runtime.dispatch("click", "load_btn")

    def _finish(
        self,
        mode: str,
        started_at: float,
        phases: PhaseBreakdown,
        runtime: WebRuntime,
        outcome: Optional[OffloadOutcome] = None,
    ) -> SessionResult:
        finished_at = self.sim.now
        total = finished_at - started_at
        phases.other = max(0.0, total - phases.accounted())
        result = SessionResult(
            mode=mode,
            model_name=self.model_name,
            total_seconds=total,
            phases=phases,
            result_text=runtime.document.get("result").text_content,
            result_label=runtime.globals.get("result_label"),
            expected_label=self.expected_label,
            partition_label=self.partition_label,
            started_at=started_at,
            finished_at=finished_at,
        )
        if outcome is not None:
            result.snapshot_bytes = outcome.snapshot.size_bytes
            result.snapshot_code_bytes = outcome.snapshot.code_bytes
            result.snapshot_feature_bytes = outcome.snapshot.feature_bytes
            result.delivery_bytes = outcome.delivery_bytes
            result.delta_bytes = outcome.delta.size_bytes
        record_session_telemetry(self.sim, result)
        return result

    # -- modes --------------------------------------------------------------------
    def run_client_only(self, presend: bool = False):
        """The app runs entirely on the client device."""
        self.client.start_app(self.app, presend=presend)
        self._load_image(self.client.runtime)
        started_at = self.sim.now
        event = Event("click", "infer_btn")
        yield from self.client.run_local(event, self.full_costs)
        phases = PhaseBreakdown(
            client_exec=self.client.device.forward_seconds(self.full_costs)
        )
        return self._finish("client", started_at, phases, self.client.runtime)

    def run_offload(
        self,
        wait_for_ack: bool,
        capture_options: CaptureOptions = CaptureOptions(include_canvas_pixels=True),
    ):
        """Full-inference offloading, before or after the pre-send ACK."""
        self.client.capture_options = capture_options
        self.client.start_app(self.app, presend=True)
        self._load_image(self.client.runtime)
        if wait_for_ack:
            acks = [
                self.client.presend.ack_event(model.model_id)
                for model in self.app.presend_models()
            ]
            yield self.sim.all_of(acks)
        started_at = self.sim.now
        self.client.mark_offload_point("click", "infer_btn")
        self.client.runtime.dispatch("click", "infer_btn")
        event = self.client.take_intercepted()
        outcome = yield from self.client.offload(
            event,
            server_costs=self.full_costs,
            reply_timeout=self.reply_timeout,
            retries=self.retries,
        )
        phases = self._offload_phases(outcome, client_exec=0.0)
        mode = "offload-after-ack" if wait_for_ack else "offload-before-ack"
        return self._finish(mode, started_at, phases, self.client.runtime, outcome)

    def run_offload_partial(
        self,
        wait_for_ack: bool = True,
        capture_options: CaptureOptions = CaptureOptions(),
    ):
        """Partial inference: front() locally, rear() on the edge server."""
        self.client.capture_options = capture_options
        self.client.start_app(self.app, presend=True)
        self._load_image(self.client.runtime)
        if wait_for_ack:
            acks = [
                self.client.presend.ack_event(model.model_id)
                for model in self.app.presend_models()
            ]
            yield self.sim.all_of(acks)
        started_at = self.sim.now
        self.client.mark_offload_point("front_complete")
        front_seconds = self.client.device.forward_seconds(self.front_costs)
        yield self.client.device.execute(front_seconds, label="front-dnn")
        self.client.runtime.dispatch("click", "infer_btn")  # front() runs here
        event = self.client.take_intercepted()
        outcome = yield from self.client.offload(
            event,
            server_costs=self.rear_costs,
            reply_timeout=self.reply_timeout,
            retries=self.retries,
        )
        phases = self._offload_phases(outcome, client_exec=front_seconds)
        return self._finish(
            "offload-partial", started_at, phases, self.client.runtime, outcome
        )

    def _offload_phases(
        self, outcome: OffloadOutcome, client_exec: float
    ) -> PhaseBreakdown:
        return PhaseBreakdown(
            client_exec=client_exec,
            snapshot_capture_client=outcome.capture_seconds,
            transfer_to_server=outcome.transfer_to_server_seconds,
            snapshot_restore_server=outcome.server_timings.get("restore", 0.0),
            server_queue=outcome.server_timings.get("queue", 0.0),
            server_exec=outcome.server_timings.get("exec", 0.0),
            snapshot_capture_server=outcome.server_timings.get("capture", 0.0),
            transfer_to_client=outcome.transfer_to_client_seconds,
            snapshot_restore_client=outcome.restore_seconds,
        )


def run_server_only(
    sim: Simulator,
    server_device: Device,
    app: WebApp,
    model_name: str,
    input_image: ImageData,
    full_costs: List[LayerCost],
    expected_label: Optional[int] = None,
):
    """Simulated process: the app runs entirely on the server.

    The paper's "Server" bar: no migration, no network — just the inference
    on server hardware (the input is assumed present, as in their setup).
    """
    runtime = WebRuntime("server-browser")
    runtime.load_app(app)
    runtime.globals["pending_pixels"] = input_image
    runtime.dispatch("click", "load_btn")
    started_at = sim.now
    seconds = server_device.forward_seconds(full_costs)
    yield server_device.execute(seconds, label="server-dnn")
    runtime.run_event(Event("click", "infer_btn"))
    phases = PhaseBreakdown(server_exec=seconds)
    finished_at = sim.now
    total = finished_at - started_at
    phases.other = max(0.0, total - phases.accounted())
    result = SessionResult(
        mode="server",
        model_name=model_name,
        total_seconds=total,
        phases=phases,
        result_text=runtime.document.get("result").text_content,
        result_label=runtime.globals.get("result_label"),
        expected_label=expected_label,
        started_at=started_at,
        finished_at=finished_at,
    )
    record_session_telemetry(sim, result)
    return result


def expected_label_for(model, input_image: ImageData) -> int:
    """Ground-truth label: what the unsplit model computes locally."""
    probs = model.inference(np.asarray(input_image.data))
    return int(np.argmax(probs))


def expected_labels_for(model, input_images) -> List[int]:
    """Ground-truth labels for N images via one batched forward."""
    if not input_images:
        return []
    probs = model.inference_batch(
        [np.asarray(image.data) for image in input_images]
    )
    return [int(np.argmax(probs[index])) for index in range(probs.shape[0])]
