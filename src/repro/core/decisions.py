"""Offload-vs-local decision making.

The paper observes (§IV.A) that "for AgeNet and GenderNet, offloading
before ACK is even slower than the local client execution due to their
large model size, so it would be better for the client to execute the DNN
locally while the model is being uploaded to the server".
:class:`OffloadPolicy` encodes that comparison: before the ACK it predicts
both options from the latency predictors, the remaining upload bytes and
the link status, and picks the faster one; after the ACK offloading always
wins on these workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.devices.predictor import LatencyPredictor
from repro.devices.profiles import DeviceProfile
from repro.netsim.link import NetemProfile
from repro.nn.cost import LayerCost

#: planner allowance for the snapshot code and the return delta
SNAPSHOT_ALLOWANCE_BYTES = 32 * 1024


@dataclass(frozen=True)
class Decision:
    """The policy's verdict, with the predictions behind it."""

    action: str  # "local" | "offload"
    predicted_local_seconds: float
    predicted_offload_seconds: float

    @property
    def speedup(self) -> float:
        """Predicted gain of the chosen action over the alternative."""
        slow = max(self.predicted_local_seconds, self.predicted_offload_seconds)
        fast = min(self.predicted_local_seconds, self.predicted_offload_seconds)
        if fast <= 0:
            return float("inf")
        return slow / fast


class OffloadPolicy:
    """Chooses between local execution and (possibly pre-ACK) offloading."""

    def __init__(
        self,
        client_predictor: LatencyPredictor,
        server_predictor: LatencyPredictor,
        client_profile: DeviceProfile,
        server_profile: DeviceProfile,
    ):
        self.client_predictor = client_predictor
        self.server_predictor = server_predictor
        self.client_profile = client_profile
        self.server_profile = server_profile

    def predict_local(self, costs: List[LayerCost]) -> float:
        return self.client_predictor.predict_forward(costs)

    def predict_offload(
        self,
        costs: List[LayerCost],
        link: NetemProfile,
        pending_model_bytes: int,
        input_bytes: int,
    ) -> float:
        """Predicted offload time: migration + server execution.

        ``pending_model_bytes`` is what the server still lacks (0 after the
        ACK); ``input_bytes`` is the serialized input/feature payload.
        """
        outbound = pending_model_bytes + input_bytes + SNAPSHOT_ALLOWANCE_BYTES
        transfer = link.transfer_seconds(outbound) + link.transfer_seconds(
            SNAPSHOT_ALLOWANCE_BYTES
        )
        snapshot_overhead = (
            self.client_profile.snapshot_fixed_s * 2
            + self.server_profile.snapshot_fixed_s * 2
            + (input_bytes + SNAPSHOT_ALLOWANCE_BYTES)
            / self.client_profile.snapshot_serialize_bps
            + (input_bytes + SNAPSHOT_ALLOWANCE_BYTES)
            / self.server_profile.snapshot_restore_bps
        )
        server = self.server_predictor.predict_forward(costs)
        return transfer + snapshot_overhead + server

    def decide(
        self,
        costs: List[LayerCost],
        link: NetemProfile,
        pending_model_bytes: int,
        input_bytes: int,
    ) -> Decision:
        local = self.predict_local(costs)
        offload = self.predict_offload(costs, link, pending_model_bytes, input_bytes)
        action = "local" if local <= offload else "offload"
        return Decision(
            action=action,
            predicted_local_seconds=local,
            predicted_offload_seconds=offload,
        )
