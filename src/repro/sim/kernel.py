"""The simulator event loop.

:class:`Simulator` binds the virtual :class:`~repro.sim.clock.Clock` to the
:class:`~repro.sim.events.EventQueue` and provides the factory methods that
processes and components use to schedule work:

>>> sim = Simulator()
>>> def hello(name):
...     print(f"{sim.now:.1f}: hello {name}")
>>> _ = sim.schedule(2.0, hello, "edge")
>>> sim.run()
2.0: hello edge
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, announce_registry
from repro.obs.spans import SpanRecorder
from repro.sim.clock import Clock
from repro.sim.events import NORMAL, EventQueue, ScheduledEvent
from repro.sim.process import AllOf, AnyOf, Process, SimEvent, Timeout


class SimulationError(RuntimeError):
    """Raised when the simulation cannot make progress safely."""


class Simulator:
    """Discrete-event simulator with a virtual clock.

    Parameters
    ----------
    start:
        Initial virtual time in seconds.
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationError` after this
        many dispatched events, which turns accidental infinite loops into
        loud failures instead of hangs.
    """

    def __init__(self, start: float = 0.0, max_events: int = 5_000_000):
        self.clock = Clock(start)
        self.queue = EventQueue()
        self.max_events = max_events
        self.dispatched = 0
        self._trace: List[Tuple[float, str]] = []
        self._tracing = False
        #: telemetry for everything running on this simulator
        self.metrics = MetricsRegistry(clock=lambda: self.clock.now)
        self.spans = SpanRecorder(clock=lambda: self.clock.now)
        announce_registry(self.metrics)
        self._dispatched_counter = self.metrics.counter(
            "sim_events_dispatched_total", help="events fired by the kernel loop"
        )
        self._spawned_counter = self.metrics.counter(
            "sim_processes_spawned_total", help="simulated processes started"
        )
        self._wakeup_counter = self.metrics.counter(
            "sim_process_wakeups_total",
            help="process resumptions (start + every wait completion)",
        )

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    # -- scheduling -----------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        return self.queue.push(
            self.now + delay, callback, args, priority=priority, label=label
        )

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when!r}, current time is {self.now!r}"
            )
        return self.queue.push(when, callback, args, priority=priority, label=label)

    # -- process / event factories -------------------------------------------
    def spawn(self, generator: Generator, label: str = "") -> Process:
        """Start a simulated process from a generator."""
        self._spawned_counter.inc()
        return Process(self, generator, label=label)

    def event(self, label: str = "") -> SimEvent:
        """Create an untriggered one-shot event."""
        return SimEvent(self, label=label)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds after ``delay`` virtual seconds."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        return AllOf(self, events)

    # -- tracing ----------------------------------------------------------------
    def enable_tracing(self) -> None:
        self._tracing = True

    def trace(self, message: str) -> None:
        """Record a timestamped trace line (no-op unless tracing is enabled)."""
        if self._tracing:
            self._trace.append((self.now, message))

    @property
    def trace_log(self) -> List[Tuple[float, str]]:
        return list(self._trace)

    # -- the loop ---------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single earliest event.  Returns False when idle."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self.dispatched += 1
        self._dispatched_counter.inc()
        if self.dispatched > self.max_events:
            raise SimulationError(
                f"dispatched more than {self.max_events} events; "
                "likely a runaway simulation"
            )
        event.fire()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock would pass ``until``.

        Returns the final virtual time.  When ``until`` is given and events
        remain beyond it, the clock is advanced exactly to ``until``.
        """
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return self.now
            self.step()
        if until is not None and until > self.now:
            self.clock.advance_to(until)
        return self.now

    def run_until(self, condition: Callable[[], bool], limit: Optional[float] = None) -> float:
        """Run until ``condition()`` holds (checked after every event)."""
        if condition():
            return self.now
        while True:
            next_time = self.queue.peek_time()
            if next_time is None:
                raise SimulationError("simulation went idle before condition held")
            if limit is not None and next_time > limit:
                raise SimulationError(
                    f"condition still false at time limit {limit!r}"
                )
            self.step()
            if condition():
                return self.now
