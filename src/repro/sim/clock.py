"""Virtual clock for the discrete-event simulator.

The clock only ever moves forward and only under the control of the event
loop.  All components read time through the clock rather than the wall clock,
so simulations are deterministic and replayable.
"""

from __future__ import annotations


class ClockError(RuntimeError):
    """Raised when the clock would move backwards."""


class Clock:
    """A monotonic virtual clock measured in seconds.

    The unit is the second because every quantity in the paper (inference
    times, migration times, synthesis times) is reported in seconds.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`ClockError` if ``when`` is in the past; equal time is
        allowed because many events share a timestamp.
        """
        if when < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now!r} to {when!r}"
            )
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta!r}")
        self._now += float(delta)

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"
