"""Discrete-event simulation kernel.

This package provides the virtual-time substrate used by every other
subsystem of the reproduction: a monotonic virtual :class:`~repro.sim.clock.Clock`,
an ordered event queue, a :class:`~repro.sim.kernel.Simulator` event loop, and
generator-based simulated processes (:mod:`repro.sim.process`) in the style of
SimPy, but small enough to reason about and to property-test.

The paper's measurements (client/server DNN execution, snapshot transfer over
a 30 Mbps netem-shaped link, VM synthesis) are all *durations*; this kernel is
what turns the analytic cost models into an end-to-end timeline with correct
interleaving (e.g. the pre-send ACK racing the first offload request).
"""

from repro.sim.clock import Clock
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.kernel import Simulator, SimulationError
from repro.sim.process import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    ProcessDied,
    SimEvent,
    Timeout,
)
from repro.sim.rng import SeededRng

__all__ = [
    "AllOf",
    "AnyOf",
    "Clock",
    "EventQueue",
    "Interrupt",
    "Process",
    "ProcessDied",
    "ScheduledEvent",
    "SeededRng",
    "SimEvent",
    "Simulator",
    "SimulationError",
    "Timeout",
]
