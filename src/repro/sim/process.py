"""Generator-based simulated processes.

A process is a Python generator that yields *waitable events*:

``Timeout(3.0)``
    resume after 3 virtual seconds,
``SimEvent``
    resume when someone calls :meth:`SimEvent.succeed` (or ``fail``),
``AnyOf([...])`` / ``AllOf([...])``
    resume when any / all of the child events have triggered,
``Process``
    resume when the child process returns (processes are themselves events).

This is a deliberately small subset of the SimPy model: enough to express
the paper's protocols (a client agent waiting for an ACK while a user event
may arrive first, a server agent serving snapshot requests, a VM synthesis
pipeline) without pulling in a dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class ProcessDied(RuntimeError):
    """Raised when interacting with a process that already terminated."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """A one-shot event that processes can wait on.

    The event is *triggered* once ``succeed`` or ``fail`` is called; waiters
    registered before or after triggering are resumed exactly once each.
    """

    def __init__(self, sim: "Simulator", label: str = ""):
        self.sim = sim
        self.label = label
        self.triggered = False
        self.ok: Optional[bool] = None
        self.value: Any = None
        self._callbacks: list[Callable[["SimEvent"], None]] = []

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "SimEvent":
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._trigger(ok=False, value=exception)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise ProcessDied(f"event {self.label or self!r} already triggered")
        self.triggered = True
        self.ok = ok
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            # Deliver on the event queue at the current instant so that
            # same-time resumptions interleave deterministically.
            self.sim.schedule(0.0, callback, self, label=f"resume:{self.label}")

    # -- waiting ----------------------------------------------------------
    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        if self.triggered:
            self.sim.schedule(0.0, callback, self, label=f"resume:{self.label}")
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {self.label!r} {state}>"


class Timeout(SimEvent):
    """An event that succeeds after a fixed virtual delay."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay!r}")
        super().__init__(sim, label=f"timeout({delay})")
        self.delay = delay
        sim.schedule(delay, self.succeed, value, label=self.label)


class _Condition(SimEvent):
    """Base for AnyOf / AllOf composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent], label: str):
        super().__init__(sim, label=label)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._child_triggered)

    def _child_triggered(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if event.ok is False:
            self.fail(event.value)
            return
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            index: event.value
            for index, event in enumerate(self.events)
            if event.triggered and event.ok
        }


class AnyOf(_Condition):
    """Succeeds as soon as any child event succeeds."""

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]):
        super().__init__(sim, events, label="any_of")

    def _satisfied(self) -> bool:
        return any(event.triggered and event.ok for event in self.events)


class AllOf(_Condition):
    """Succeeds once every child event has succeeded."""

    def __init__(self, sim: "Simulator", events: Iterable[SimEvent]):
        super().__init__(sim, events, label="all_of")

    def _satisfied(self) -> bool:
        return all(event.triggered and event.ok for event in self.events)


class Process(SimEvent):
    """A running simulated process wrapping a generator.

    The process is itself a :class:`SimEvent` that succeeds with the
    generator's return value (or fails with its uncaught exception), so
    processes can wait on each other.
    """

    def __init__(self, sim: "Simulator", generator: Generator, label: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        super().__init__(sim, label=label or getattr(generator, "__name__", "proc"))
        self._generator = generator
        self._waiting_on: Optional[SimEvent] = None
        # Kick off on the queue so construction order does not matter.
        sim.schedule(0.0, self._resume, None, label=f"start:{self.label}")

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            raise ProcessDied(f"cannot interrupt finished process {self.label!r}")
        self.sim.schedule(
            0.0, self._throw, Interrupt(cause), label=f"interrupt:{self.label}"
        )

    # -- internals ---------------------------------------------------------
    def _resume(self, event: Optional[SimEvent]) -> None:
        if self.triggered:
            return
        self.sim._wakeup_counter.inc()
        if event is self._waiting_on:
            self._waiting_on = None
        if event is not None and event.ok is False:
            self._step(lambda: self._generator.throw(event.value))
        else:
            value = event.value if event is not None else None
            self._step(lambda: self._generator.send(value))

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        self._step(lambda: self._generator.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process as a failure.
            self.fail(exc)
            return
        except Exception as exc:
            self.fail(exc)
            return
        if not isinstance(target, SimEvent):
            self.fail(
                TypeError(
                    f"process {self.label!r} yielded {target!r}; "
                    "processes must yield SimEvent instances"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)
