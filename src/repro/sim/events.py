"""Event records and the time-ordered event queue.

Events are ordered by ``(time, priority, sequence)``: earlier time first,
then lower priority value, then insertion order.  The sequence number makes
the ordering total, which keeps simulations deterministic even when many
events share a timestamp (a very common situation — e.g. an ACK arriving in
the same instant a snapshot transfer completes).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

# Priorities: NORMAL for almost everything; URGENT for bookkeeping that must
# observe state before same-time application events; LOW for idle work.
URGENT = 0
NORMAL = 1
LOW = 2


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at a point in virtual time."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True

    def fire(self) -> Any:
        return self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = self.label or getattr(self.callback, "__name__", "<fn>")
        return f"ScheduledEvent(t={self.time:.6f}, {name}, {state})"


class EventQueue:
    """A heap of :class:`ScheduledEvent` with deterministic total order."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def __bool__(self) -> bool:
        return any(not ev.cancelled for ev in self._heap)

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple = (),
        priority: int = NORMAL,
        label: str = "",
    ) -> ScheduledEvent:
        event = ScheduledEvent(
            time=time,
            priority=priority,
            seq=next(self._counter),
            callback=callback,
            args=args,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
