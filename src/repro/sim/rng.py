"""Seeded randomness helpers.

All stochastic behaviour in the simulator (jitter, loss, synthetic inputs)
flows through :class:`SeededRng` so that every experiment is reproducible
from a single integer seed, and independent subsystems can derive
non-interfering child streams.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


class SeededRng:
    """A named, seeded random stream with numpy and stdlib views."""

    def __init__(self, seed: int = 0, name: str = "root"):
        self.seed = int(seed)
        self.name = name
        self._py = random.Random(self._mix(seed, name))
        self.np = np.random.default_rng(self._mix(seed, name))

    @staticmethod
    def _mix(seed: int, name: str) -> int:
        # Stable string hash (hash() is salted per-process) folded with seed.
        acc = 1469598103934665603  # FNV-1a offset basis
        for ch in name.encode("utf-8"):
            acc = ((acc ^ ch) * 1099511628211) & ((1 << 64) - 1)
        return (acc ^ (seed * 0x9E3779B97F4A7C15)) & ((1 << 63) - 1)

    def child(self, name: str) -> "SeededRng":
        """Derive an independent stream for a named subsystem."""
        return SeededRng(self.seed, f"{self.name}/{name}")

    # -- convenience wrappers ------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        return self._py.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._py.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._py.gauss(mu, sigma)

    def randint(self, low: int, high: int) -> int:
        """Inclusive-range integer, like ``random.randint``."""
        return self._py.randint(low, high)

    def random(self) -> float:
        return self._py.random()

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0:
            return False
        if probability >= 1:
            return True
        return self._py.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        return self._py.choice(items)

    def shuffled(self, items: Sequence[T]) -> list:
        result = list(items)
        self._py.shuffle(result)
        return result

    def normal_array(self, shape, scale: float = 1.0) -> np.ndarray:
        return self.np.normal(0.0, scale, size=shape).astype(np.float32)

    def uniform_array(
        self, shape, low: float = 0.0, high: float = 1.0
    ) -> np.ndarray:
        return self.np.uniform(low, high, size=shape).astype(np.float32)

    def image(self, height: int, width: int, channels: int = 3) -> np.ndarray:
        """A synthetic input image in [0, 255], shaped (H, W, C)."""
        return self.np.uniform(0.0, 255.0, size=(height, width, channels)).astype(
            np.float32
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRng(seed={self.seed}, name={self.name!r})"


def make_rng(seed: Optional[int] = None, name: str = "root") -> SeededRng:
    """Factory used across the code base; defaults to the canonical seed 0."""
    return SeededRng(0 if seed is None else seed, name)
