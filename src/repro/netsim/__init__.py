"""Network simulation substrate.

The paper connects an Odroid-XU4 client to an x86 edge server over Ethernet
shaped to 30 Mbps with ``netem`` to emulate Wi-Fi.  This package reproduces
that substrate on the virtual clock: point-to-point :class:`~repro.netsim.link.Link`
objects with bandwidth, propagation latency, jitter and loss
(:class:`~repro.netsim.link.NetemProfile`), FIFO serialization so concurrent
transfers queue behind each other, bidirectional
:class:`~repro.netsim.channel.Channel` endpoints used by the offloading
protocol agents, and a :class:`~repro.netsim.topology.Topology` of client and
edge-server hosts supporting handover between service areas.
"""

from repro.netsim.link import Link, LinkDown, NetemProfile
from repro.netsim.message import Message, payload_size
from repro.netsim.channel import Channel, ChannelEnd, ReceiveTimeout
from repro.netsim.topology import EdgeDown, Host, Topology

__all__ = [
    "Channel",
    "ChannelEnd",
    "EdgeDown",
    "Host",
    "Link",
    "LinkDown",
    "Message",
    "NetemProfile",
    "ReceiveTimeout",
    "Topology",
    "payload_size",
]
