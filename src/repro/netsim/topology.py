"""Hosts and topologies: clients among several edge service areas.

The paper's mobility story — "when a mobile client moves to a different
service area, snapshot-based offloading can readily work on a new edge
server" — needs a notion of *which* edge server the client is currently
attached to.  :class:`Topology` models a client that can attach to exactly
one edge host at a time and hand over to another, tearing down the old
channel and creating a fresh one (the new server shares no state with the
old one, which is exactly the property the paper exploits).

Fleet scenarios (:mod:`repro.fleet`) extend that single-client picture:
:meth:`Topology.connect` gives any number of named clients their own
channel to any edge host simultaneously, and :meth:`Topology.fail_edge`
models an edge node dying — every channel to it goes down (in-flight
messages are lost) and is discarded, so a later :meth:`connect` after
:meth:`restore_edge` builds a fresh connection, exactly like TCP sessions
dying with a crashed server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim import Simulator
from repro.netsim.channel import Channel, ChannelEnd
from repro.netsim.link import NetemProfile


class EdgeDown(RuntimeError):
    """Raised when connecting to an edge host that is currently down."""


@dataclass
class Host:
    """A named machine in the topology."""

    name: str
    role: str = "edge"  # "client" | "edge" | "cloud"
    tags: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.role not in ("client", "edge", "cloud"):
            raise ValueError(f"unknown host role {self.role!r}")


class Topology:
    """A client host plus a set of edge hosts, with single attachment."""

    def __init__(self, sim: Simulator, client_name: str = "client"):
        self.sim = sim
        self.client = Host(client_name, role="client")
        self.edges: Dict[str, Host] = {}
        self.profiles: Dict[str, NetemProfile] = {}
        self._channel: Optional[Channel] = None
        self._attached_to: Optional[str] = None
        self.handover_log: List[Tuple[float, str]] = []
        #: fleet extension: named clients with concurrent per-edge channels
        self.clients: Dict[str, Host] = {self.client.name: self.client}
        self._links: Dict[Tuple[str, str], Channel] = {}
        self._edge_up: Dict[str, bool] = {}
        #: (virtual time, edge name, "fail" | "restore")
        self.outage_log: List[Tuple[float, str, str]] = []

    # -- construction --------------------------------------------------------
    def add_edge_host(
        self, name: str, profile: Optional[NetemProfile] = None, **tags: str
    ) -> Host:
        if name in self.edges:
            raise ValueError(f"edge host {name!r} already exists")
        host = Host(name, role="edge", tags=dict(tags))
        self.edges[name] = host
        self.profiles[name] = profile or NetemProfile.wifi_30mbps()
        self._edge_up[name] = True
        return host

    def add_client_host(self, name: str, **tags: str) -> Host:
        """Register an extra client host for fleet scenarios."""
        if name in self.clients or name in self.edges:
            raise ValueError(f"host {name!r} already exists")
        host = Host(name, role="client", tags=dict(tags))
        self.clients[name] = host
        return host

    # -- attachment ----------------------------------------------------------
    @property
    def attached_to(self) -> Optional[str]:
        return self._attached_to

    @property
    def channel(self) -> Optional[Channel]:
        return self._channel

    def attach(self, edge_name: str) -> Tuple[ChannelEnd, ChannelEnd]:
        """Attach the client to an edge host; returns (client_end, edge_end).

        Any previous attachment is torn down first (its channel goes down, so
        in-flight messages to the old server are lost — matching a real
        departure from the old service area).
        """
        if edge_name not in self.edges:
            raise KeyError(f"no edge host named {edge_name!r}")
        if self._channel is not None:
            self._channel.go_down()
        self._channel = Channel(
            self.sim,
            self.client.name,
            edge_name,
            self.profiles[edge_name],
        )
        self._attached_to = edge_name
        self.handover_log.append((self.sim.now, edge_name))
        return self._channel.end_a, self._channel.end_b

    def handover(self, new_edge_name: str) -> Tuple[ChannelEnd, ChannelEnd]:
        """Move to a different service area."""
        if new_edge_name == self._attached_to:
            raise ValueError(f"client already attached to {new_edge_name!r}")
        return self.attach(new_edge_name)

    def detach(self) -> None:
        if self._channel is not None:
            self._channel.go_down()
        self._channel = None
        self._attached_to = None

    # -- network status probe --------------------------------------------------
    def current_profile(self) -> NetemProfile:
        """The shaping profile of the current attachment.

        This is the "runtime network status" input to the partition-point
        optimizer (paper §III.B.2).
        """
        if self._attached_to is None:
            raise RuntimeError("client is not attached to any edge server")
        return self.profiles[self._attached_to]

    def set_profile(self, edge_name: str, profile: NetemProfile) -> None:
        """Reshape the path to an edge host (affects current channel too)."""
        if edge_name not in self.edges:
            raise KeyError(f"no edge host named {edge_name!r}")
        self.profiles[edge_name] = profile
        if self._attached_to == edge_name and self._channel is not None:
            self._channel.set_profile(profile)
        for (_client, edge), channel in self._links.items():
            if edge == edge_name:
                channel.set_profile(profile)

    # -- fleet attachment (many clients, many concurrent channels) -----------
    def connect(
        self, client_name: str, edge_name: str
    ) -> Tuple[ChannelEnd, ChannelEnd]:
        """Connect a named client to an edge host; returns (client_end, edge_end).

        Unlike :meth:`attach`, connections are concurrent: one client may
        hold channels to several edges, and many clients to one edge.
        Reconnecting an existing pair returns the same channel ends, so the
        caller can detect (by identity) whether a fresh connection — and
        therefore a fresh handshake — happened.  Connecting to a failed
        edge raises :class:`EdgeDown`.
        """
        if edge_name not in self.edges:
            raise KeyError(f"no edge host named {edge_name!r}")
        if not self._edge_up.get(edge_name, True):
            raise EdgeDown(f"edge host {edge_name!r} is down")
        if client_name not in self.clients:
            self.add_client_host(client_name)
        key = (client_name, edge_name)
        channel = self._links.get(key)
        if channel is None:
            channel = Channel(
                self.sim, client_name, edge_name, self.profiles[edge_name]
            )
            self._links[key] = channel
        return channel.end_a, channel.end_b

    def disconnect(self, client_name: str, edge_name: str) -> None:
        """Tear down one client's channel to an edge (in-flight loss)."""
        channel = self._links.pop((client_name, edge_name), None)
        if channel is not None:
            channel.go_down()

    def connection(self, client_name: str, edge_name: str) -> Optional[Channel]:
        return self._links.get((client_name, edge_name))

    def edge_is_up(self, edge_name: str) -> bool:
        if edge_name not in self.edges:
            raise KeyError(f"no edge host named {edge_name!r}")
        return self._edge_up.get(edge_name, True)

    def fail_edge(self, edge_name: str) -> int:
        """An edge node dies: every channel to it goes down and is dropped.

        In-flight messages on those channels are lost (the link refuses
        delivery once down), and the dead :class:`Channel` objects are
        discarded so a post-:meth:`restore_edge` ``connect`` builds a fresh
        one.  Returns the number of connections torn down.
        """
        if edge_name not in self.edges:
            raise KeyError(f"no edge host named {edge_name!r}")
        self._edge_up[edge_name] = False
        torn_down = 0
        for key in [k for k in self._links if k[1] == edge_name]:
            self._links.pop(key).go_down()
            torn_down += 1
        if self._attached_to == edge_name and self._channel is not None:
            self._channel.go_down()
            torn_down += 1
        self.outage_log.append((self.sim.now, edge_name, "fail"))
        return torn_down

    def restore_edge(self, edge_name: str) -> None:
        """Bring a failed edge back; clients must reconnect explicitly."""
        if edge_name not in self.edges:
            raise KeyError(f"no edge host named {edge_name!r}")
        self._edge_up[edge_name] = True
        self.outage_log.append((self.sim.now, edge_name, "restore"))
