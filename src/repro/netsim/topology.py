"""Hosts and topologies: one client among several edge service areas.

The paper's mobility story — "when a mobile client moves to a different
service area, snapshot-based offloading can readily work on a new edge
server" — needs a notion of *which* edge server the client is currently
attached to.  :class:`Topology` models a client that can attach to exactly
one edge host at a time and hand over to another, tearing down the old
channel and creating a fresh one (the new server shares no state with the
old one, which is exactly the property the paper exploits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim import Simulator
from repro.netsim.channel import Channel, ChannelEnd
from repro.netsim.link import NetemProfile


@dataclass
class Host:
    """A named machine in the topology."""

    name: str
    role: str = "edge"  # "client" | "edge" | "cloud"
    tags: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.role not in ("client", "edge", "cloud"):
            raise ValueError(f"unknown host role {self.role!r}")


class Topology:
    """A client host plus a set of edge hosts, with single attachment."""

    def __init__(self, sim: Simulator, client_name: str = "client"):
        self.sim = sim
        self.client = Host(client_name, role="client")
        self.edges: Dict[str, Host] = {}
        self.profiles: Dict[str, NetemProfile] = {}
        self._channel: Optional[Channel] = None
        self._attached_to: Optional[str] = None
        self.handover_log: List[Tuple[float, str]] = []

    # -- construction --------------------------------------------------------
    def add_edge_host(
        self, name: str, profile: Optional[NetemProfile] = None, **tags: str
    ) -> Host:
        if name in self.edges:
            raise ValueError(f"edge host {name!r} already exists")
        host = Host(name, role="edge", tags=dict(tags))
        self.edges[name] = host
        self.profiles[name] = profile or NetemProfile.wifi_30mbps()
        return host

    # -- attachment ----------------------------------------------------------
    @property
    def attached_to(self) -> Optional[str]:
        return self._attached_to

    @property
    def channel(self) -> Optional[Channel]:
        return self._channel

    def attach(self, edge_name: str) -> Tuple[ChannelEnd, ChannelEnd]:
        """Attach the client to an edge host; returns (client_end, edge_end).

        Any previous attachment is torn down first (its channel goes down, so
        in-flight messages to the old server are lost — matching a real
        departure from the old service area).
        """
        if edge_name not in self.edges:
            raise KeyError(f"no edge host named {edge_name!r}")
        if self._channel is not None:
            self._channel.go_down()
        self._channel = Channel(
            self.sim,
            self.client.name,
            edge_name,
            self.profiles[edge_name],
        )
        self._attached_to = edge_name
        self.handover_log.append((self.sim.now, edge_name))
        return self._channel.end_a, self._channel.end_b

    def handover(self, new_edge_name: str) -> Tuple[ChannelEnd, ChannelEnd]:
        """Move to a different service area."""
        if new_edge_name == self._attached_to:
            raise ValueError(f"client already attached to {new_edge_name!r}")
        return self.attach(new_edge_name)

    def detach(self) -> None:
        if self._channel is not None:
            self._channel.go_down()
        self._channel = None
        self._attached_to = None

    # -- network status probe --------------------------------------------------
    def current_profile(self) -> NetemProfile:
        """The shaping profile of the current attachment.

        This is the "runtime network status" input to the partition-point
        optimizer (paper §III.B.2).
        """
        if self._attached_to is None:
            raise RuntimeError("client is not attached to any edge server")
        return self.profiles[self._attached_to]

    def set_profile(self, edge_name: str, profile: NetemProfile) -> None:
        """Reshape the path to an edge host (affects current channel too)."""
        if edge_name not in self.edges:
            raise KeyError(f"no edge host named {edge_name!r}")
        self.profiles[edge_name] = profile
        if self._attached_to == edge_name and self._channel is not None:
            self._channel.set_profile(profile)
