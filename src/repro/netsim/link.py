"""Point-to-point simulated links with netem-style shaping.

A :class:`Link` is unidirectional.  Transmissions serialize FIFO: a message
must wait for the tail of the previous transmission before its own bits go on
the wire, exactly as a token-bucket-shaped interface behaves.  Delivery time
is therefore::

    start    = max(now, busy_until)
    tx_time  = (size_bytes * 8) / bandwidth_bps
    deliver  = start + tx_time + latency (+ jitter)

The paper shapes its Ethernet to 30 Mbps with ``netem`` to emulate Wi-Fi;
:class:`NetemProfile` captures that configuration (rate, delay, jitter,
loss) and can be changed at runtime to model varying network status — the
signal the partition optimizer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.sim import SeededRng, SimEvent, Simulator
from repro.netsim.message import Message


class LinkDown(RuntimeError):
    """Raised (as an event failure) when sending over a downed link."""


@dataclass(frozen=True)
class NetemProfile:
    """Shaping parameters, mirroring a ``tc netem`` + rate-limit setup."""

    bandwidth_bps: float = 30e6  # paper: capped under 30 Mbps
    latency_s: float = 0.001  # one-way propagation delay
    jitter_s: float = 0.0
    loss: float = 0.0  # probability a message is silently dropped

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0 or self.jitter_s < 0:
            raise ValueError("latency and jitter must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be in [0, 1)")

    def with_bandwidth(self, bandwidth_bps: float) -> "NetemProfile":
        return replace(self, bandwidth_bps=bandwidth_bps)

    def transfer_seconds(self, size_bytes: int) -> float:
        """Pure serialization + propagation time for one message."""
        return (size_bytes * 8.0) / self.bandwidth_bps + self.latency_s

    @classmethod
    def wifi_30mbps(cls) -> "NetemProfile":
        """The paper's emulated Wi-Fi: 30 Mbps, ~1 ms one-way delay."""
        return cls(bandwidth_bps=30e6, latency_s=0.001)

    @classmethod
    def lan_1gbps(cls) -> "NetemProfile":
        return cls(bandwidth_bps=1e9, latency_s=0.0002)

    @classmethod
    def cellular_lte(cls) -> "NetemProfile":
        """A plausible LTE uplink for ablations: 10 Mbps, 25 ms delay."""
        return cls(bandwidth_bps=10e6, latency_s=0.025, jitter_s=0.005)


class Link:
    """A unidirectional FIFO link on the virtual clock."""

    def __init__(
        self,
        sim: Simulator,
        profile: NetemProfile,
        name: str = "link",
        rng: Optional[SeededRng] = None,
    ):
        self.sim = sim
        self.profile = profile
        self.name = name
        self.rng = rng or SeededRng(0, f"link/{name}")
        self.up = True
        self._busy_until = 0.0
        self.delivered_count = 0
        self.dropped_count = 0
        self.bytes_sent = 0
        self._delivery_log: List[Tuple[float, Message]] = []
        metrics = sim.metrics
        self._bytes_counter = metrics.counter(
            "net_bytes_sent_total", help="payload bytes put on the wire",
            link=name,
        )
        self._delivered_counter = metrics.counter(
            "net_messages_delivered_total", help="messages delivered", link=name
        )
        self._dropped_counter = metrics.counter(
            "net_messages_dropped_total",
            help="messages lost to loss or link-down",
            link=name,
        )

    # -- dynamic reconfiguration ------------------------------------------
    def set_profile(self, profile: NetemProfile) -> None:
        """Apply a new shaping profile to future transmissions."""
        self.profile = profile

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        self.profile = self.profile.with_bandwidth(bandwidth_bps)

    def go_down(self) -> None:
        self.up = False

    def go_up(self) -> None:
        self.up = True

    # -- state ---------------------------------------------------------------
    @property
    def busy_until(self) -> float:
        return self._busy_until

    def queueing_delay(self) -> float:
        """How long a new message would wait before its bits hit the wire."""
        return max(0.0, self._busy_until - self.sim.now)

    def estimated_transfer_seconds(self, size_bytes: int) -> float:
        """Queueing + serialization + propagation estimate for planning."""
        return self.queueing_delay() + self.profile.transfer_seconds(size_bytes)

    # -- transmission -----------------------------------------------------------
    def transmit(
        self,
        message: Message,
        on_deliver: Callable[[Message], None],
    ) -> SimEvent:
        """Send a message; ``on_deliver`` runs at delivery time.

        Returns a :class:`SimEvent` that succeeds with the message at the
        moment of delivery, fails with :class:`LinkDown` if the link is down,
        and (for lossy profiles) fails with :class:`LinkDown` when the
        message is dropped, so senders can model retransmission.
        """
        done = self.sim.event(label=f"tx:{self.name}:{message.kind}")
        if not self.up:
            done.fail(LinkDown(f"link {self.name} is down"))
            return done
        if self.profile.loss and self.rng.chance(self.profile.loss):
            self.dropped_count += 1
            self._dropped_counter.inc()
            # Bits still occupy the wire before being lost downstream.
            self._occupy(message.size_bytes)
            done.fail(LinkDown(f"message {message.msg_id} lost on {self.name}"))
            return done

        message.sent_at = self.sim.now
        arrival = self._occupy(message.size_bytes) + self.profile.latency_s
        if self.profile.jitter_s:
            arrival += self.rng.uniform(0.0, self.profile.jitter_s)
        self.bytes_sent += message.size_bytes
        self._bytes_counter.inc(message.size_bytes)

        def deliver() -> None:
            if not self.up:
                self.dropped_count += 1
                self._dropped_counter.inc()
                done.fail(LinkDown(f"link {self.name} went down in flight"))
                return
            message.delivered_at = self.sim.now
            self.delivered_count += 1
            self._delivered_counter.inc()
            self._delivery_log.append((self.sim.now, message))
            on_deliver(message)
            done.succeed(message)

        self.sim.schedule_at(arrival, deliver, label=f"deliver:{message.kind}")
        return done

    def _occupy(self, size_bytes: int) -> float:
        """Reserve wire time for ``size_bytes``; returns serialization end."""
        start = max(self.sim.now, self._busy_until)
        tx_time = (size_bytes * 8.0) / self.profile.bandwidth_bps
        self._busy_until = start + tx_time
        return self._busy_until

    @property
    def delivery_log(self) -> List[Tuple[float, Message]]:
        return list(self._delivery_log)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return (
            f"Link({self.name}, {self.profile.bandwidth_bps / 1e6:.1f} Mbps, "
            f"{state})"
        )
